//! # AlvisP2P (reproduction)
//!
//! A from-scratch Rust reproduction of **"AlvisP2P: Scalable Peer-to-Peer Text
//! Retrieval in a Structured P2P Network"** (Luu et al., VLDB 2008).
//!
//! This crate is a thin facade over the workspace:
//!
//! * [`netsim`] (`alvisp2p-netsim`) — deterministic discrete-event transport simulator
//!   (layer 1);
//! * [`dht`] (`alvisp2p-dht`) — structured overlay with skew-tolerant hop-space
//!   routing, storage and congestion control (layer 2);
//! * [`textindex`] (`alvisp2p-textindex`) — the local search-engine substrate:
//!   analysis pipeline, positional inverted index, BM25, corpora, query logs
//!   (layer 5);
//! * [`core`] (`alvisp2p-core`) — the paper's contribution: HDK and Query-Driven
//!   distributed indexing, query-lattice retrieval and distributed ranking
//!   (layers 3–4).
//!
//! The public API is session-oriented and strategy-pluggable: assemble a network
//! with [`prelude::AlvisNetworkBuilder`], pick any [`prelude::Strategy`]
//! implementation (the paper's [`prelude::SingleTermFull`], [`prelude::Hdk`] and
//! [`prelude::Qdi`] are built in), and run [`prelude::QueryRequest`]s — singly via
//! `execute` or in batches via `query_batch`. Every fallible call returns the
//! unified [`prelude::AlvisError`].
//!
//! The [`prelude`] re-exports the handful of types most applications need.
//!
//! ```
//! use alvisp2p::prelude::*;
//!
//! let mut net = AlvisNetwork::builder()
//!     .peers(4)
//!     .strategy(Hdk::new(HdkConfig { df_max: 2, ..Default::default() }))
//!     .documents(demo_corpus())
//!     .build_indexed()
//!     .unwrap();
//! let hits = net
//!     .execute(&QueryRequest::new("peer to peer retrieval").top_k(5))
//!     .unwrap();
//! assert!(!hits.results.is_empty());
//! ```
//!
//! ## Plan / execute / stream
//!
//! Query execution is an explicit two-phase pipeline underneath `execute`:
//! a [`prelude::Planner`] first turns the request into a [`prelude::QueryPlan`]
//! — an ordered, cost-annotated probe schedule over the query's term lattice,
//! using per-key document-frequency estimates and traffic-free DHT hop
//! estimates — and the network then runs the plan, yielding results
//! incrementally.
//!
//! * [`prelude::BestEffort`] (the default) reproduces the fixed-order,
//!   budget-cutoff semantics of the classic `execute` path.
//! * [`prelude::GreedyCost`] plans against the request's byte/hop budgets:
//!   provably useless probes are dropped, the rest are prioritised by
//!   benefit/cost, and probes are only sent while their worst-case cost still
//!   fits — the spend never exceeds the budget.
//!
//! Results stream: [`prelude::AlvisNetwork::stream`] pulls one
//! [`prelude::ProbeEvent`] per probe (key, outcome, bytes, running top-k), and
//! [`prelude::AlvisNetwork::run_observed`] pushes the same events into an
//! [`prelude::ExecutionObserver`] which may stop early — e.g. the built-in
//! [`prelude::StableTopK`] once the top-k stops changing.
//!
//! ```
//! use alvisp2p::prelude::*;
//!
//! let mut net = AlvisNetwork::builder()
//!     .peers(4)
//!     .strategy(Hdk::new(HdkConfig { df_max: 2, ..Default::default() }))
//!     .planner(GreedyCost::default())
//!     .documents(demo_corpus())
//!     .build_indexed()
//!     .unwrap();
//!
//! // Plan: a cost-annotated schedule, free of network traffic.
//! let request = QueryRequest::new("truncated posting lists").byte_budget(50_000);
//! let plan = net.plan(&request).unwrap();
//! assert!(plan.scheduled_probes() > 0 && plan.est_total_bytes > 0);
//!
//! // Execute: stream per-probe events, then finish into the response.
//! let mut stream = net.stream(plan.clone(), request.clone()).unwrap();
//! let mut probes_seen = 0;
//! while let Some(event) = stream.next_event() {
//!     let event = event.unwrap();
//!     probes_seen += 1;
//!     assert!(event.spent_bytes <= 50_000); // GreedyCost never exceeds the budget
//! }
//! let response = stream.finish().unwrap();
//! assert_eq!(probes_seen, response.trace.probes);
//! assert!(response.bytes <= 50_000);
//!
//! // Or run to completion with early termination once the top-k stabilises.
//! let mut observer = StableTopK::new(2);
//! let observed = net.run_observed(&plan, &request, &mut observer).unwrap();
//! assert!(!observed.results.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use alvisp2p_core as core;
pub use alvisp2p_dht as dht;
pub use alvisp2p_netsim as netsim;
pub use alvisp2p_textindex as textindex;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    // The network and its fluent assembly.
    pub use alvisp2p_core::network::{
        AlvisNetwork, AlvisNetworkBuilder, IndexBuildReport, NetworkConfig, RefinedResult,
    };
    // The session-oriented query API.
    pub use alvisp2p_core::request::{QueryRequest, QueryResponse, ThresholdMode};
    // The plan → execute pipeline: planners, plans and streaming execution.
    pub use alvisp2p_core::exec::{
        ExecutionControl, ExecutionObserver, ProbeEvent, QueryExecutor, QueryStream, StableTopK,
    };
    pub use alvisp2p_core::plan::{
        BestEffort, BudgetPolicy, GreedyCost, PlanCtx, PlanDecision, PlanHints, PlanNode, Planner,
        QueryPlan, ReplicaAware, SketchAware,
    };
    // Per-key provenance sketches and the document digest.
    pub use alvisp2p_core::sketch::{
        DocumentDigest, KeySketch, SketchBuildReport, SketchCache, SketchKinds, SketchPolicy,
    };
    // Fault injection and the policy that survives it.
    pub use alvisp2p_core::fault::{
        Completeness, FailureCause, FaultConfig, FaultPlane, ProbeOutcome, RetryPolicy,
    };
    // The unified error hierarchy.
    pub use alvisp2p_core::error::AlvisError;
    // The pluggable indexing strategies and their configurations.
    pub use alvisp2p_core::hdk::HdkConfig;
    pub use alvisp2p_core::lattice::LatticeConfig;
    pub use alvisp2p_core::qdi::QdiConfig;
    pub use alvisp2p_core::strategy::{Hdk, IndexerCtx, Qdi, QueryCtx, SingleTermFull, Strategy};
    // Core data types.
    pub use alvisp2p_core::{
        CentralizedEngine, FetchOutcome, ScoredRef, TermKey, TruncatedPostingList,
    };
    // Overlay and simulation.
    pub use alvisp2p_dht::{
        Dht, DhtConfig, DhtError, HotKeyReplication, IdDistribution, NoReplication,
        ReplicationPolicy, RingId, RoutingStrategy,
    };
    pub use alvisp2p_netsim::{SimRng, TrafficCategory};
    // Text substrate.
    pub use alvisp2p_textindex::{
        demo_corpus, Analyzer, CorpusConfig, CorpusGenerator, Credentials, DocId, QueryLogConfig,
        QueryLogGenerator,
    };
}
