//! # AlvisP2P (reproduction)
//!
//! A from-scratch Rust reproduction of **"AlvisP2P: Scalable Peer-to-Peer Text
//! Retrieval in a Structured P2P Network"** (Luu et al., VLDB 2008).
//!
//! This crate is a thin facade over the workspace:
//!
//! * [`netsim`] (`alvisp2p-netsim`) — deterministic discrete-event transport simulator
//!   (layer 1);
//! * [`dht`] (`alvisp2p-dht`) — structured overlay with skew-tolerant hop-space
//!   routing, storage and congestion control (layer 2);
//! * [`textindex`] (`alvisp2p-textindex`) — the local search-engine substrate:
//!   analysis pipeline, positional inverted index, BM25, corpora, query logs
//!   (layer 5);
//! * [`core`] (`alvisp2p-core`) — the paper's contribution: HDK and Query-Driven
//!   distributed indexing, query-lattice retrieval and distributed ranking
//!   (layers 3–4).
//!
//! The [`prelude`] re-exports the handful of types most applications need.
//!
//! ```
//! use alvisp2p::prelude::*;
//!
//! let mut net = AlvisNetwork::new(NetworkConfig {
//!     peers: 4,
//!     strategy: IndexingStrategy::Hdk(HdkConfig { df_max: 2, ..Default::default() }),
//!     ..Default::default()
//! });
//! net.distribute_documents(demo_corpus());
//! net.build_index();
//! let hits = net.query(0, "peer to peer retrieval", 5).unwrap();
//! assert!(!hits.results.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use alvisp2p_core as core;
pub use alvisp2p_dht as dht;
pub use alvisp2p_netsim as netsim;
pub use alvisp2p_textindex as textindex;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use alvisp2p_core::hdk::HdkConfig;
    pub use alvisp2p_core::lattice::LatticeConfig;
    pub use alvisp2p_core::network::{
        AlvisNetwork, IndexBuildReport, IndexingStrategy, NetworkConfig, QueryOutcome,
    };
    pub use alvisp2p_core::qdi::QdiConfig;
    pub use alvisp2p_core::{CentralizedEngine, TermKey, TruncatedPostingList};
    pub use alvisp2p_dht::{Dht, DhtConfig, IdDistribution, RingId, RoutingStrategy};
    pub use alvisp2p_netsim::{SimRng, TrafficCategory};
    pub use alvisp2p_textindex::{
        demo_corpus, Analyzer, CorpusConfig, CorpusGenerator, Credentials, DocId,
        QueryLogConfig, QueryLogGenerator,
    };
}
