//! End-to-end integration tests: corpus → distributed index → multi-keyword queries,
//! compared against the centralized reference, for all three indexing strategies.

use alvisp2p::core::stats::{overlap_at_k, precision_at_k, reference_relevant};
use alvisp2p::prelude::*;
use alvisp2p_netsim::TrafficCategory;

fn corpus_and_queries(
    docs: usize,
    seed: u64,
) -> (alvisp2p::textindex::SyntheticCorpus, Vec<String>) {
    let corpus = CorpusGenerator::new(
        CorpusConfig {
            num_docs: docs,
            vocab_size: 800,
            num_topics: 8,
            topic_vocab: 40,
            doc_len_mean: 60,
            doc_len_spread: 30,
            ..Default::default()
        },
        seed,
    )
    .generate();
    let log = QueryLogGenerator::new(
        QueryLogConfig {
            num_queries: 40,
            distinct_queries: 25,
            ..Default::default()
        },
        seed,
    )
    .generate(&corpus);
    let queries = log.queries.iter().map(|q| q.text.clone()).collect();
    (corpus, queries)
}

fn build(
    strategy: impl Strategy + 'static,
    corpus: &alvisp2p::textindex::SyntheticCorpus,
    peers: usize,
) -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(peers)
        .strategy(strategy)
        .seed(99)
        .corpus(corpus)
        .build_indexed()
        .expect("valid configuration")
}

#[test]
fn hdk_retrieval_quality_is_comparable_to_centralized() {
    let (corpus, queries) = corpus_and_queries(300, 11);
    let mut net = build(
        Hdk::new(HdkConfig {
            df_max: 50,
            truncation_k: 50,
            ..Default::default()
        }),
        &corpus,
        12,
    );
    let mut total_precision = 0.0;
    let mut evaluated = 0usize;
    for (i, q) in queries.iter().enumerate() {
        let outcome = net
            .execute(&QueryRequest::new(q.clone()).from_peer(i % 12))
            .expect("query succeeds");
        let reference = net.reference_search(q, 10);
        if reference.is_empty() {
            continue;
        }
        let relevant = reference_relevant(&reference, 10);
        total_precision += precision_at_k(&outcome.results, &relevant, 10);
        evaluated += 1;
    }
    assert!(evaluated >= 20, "too few evaluable queries: {evaluated}");
    let mean_precision = total_precision / evaluated as f64;
    assert!(
        mean_precision > 0.75,
        "HDK precision@10 vs centralized reference too low: {mean_precision:.3}"
    );
}

#[test]
fn single_term_baseline_transfers_more_than_hdk_and_grows_faster() {
    // The paper's premise is queries made of *frequent* terms — those are the posting
    // lists the single-term baseline has to ship in full.
    let (small_corpus, _) = corpus_and_queries(150, 21);
    let (large_corpus, _) = corpus_and_queries(450, 21);
    let frequent_queries = |corpus: &alvisp2p::textindex::SyntheticCorpus| -> Vec<String> {
        (5..20)
            .map(|i| format!("{} {}", corpus.vocabulary[i], corpus.vocabulary[i + 1]))
            .collect()
    };

    let mean_bytes = |strategy: std::sync::Arc<dyn Strategy>,
                      corpus: &alvisp2p::textindex::SyntheticCorpus| {
        let queries = frequent_queries(corpus);
        let mut net = AlvisNetwork::builder()
            .peers(8)
            .strategy_arc(strategy)
            .seed(99)
            .corpus(corpus)
            .build_indexed()
            .expect("valid configuration");
        net.reset_traffic();
        let batch: Vec<QueryRequest> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| QueryRequest::new(q.clone()).from_peer(i % 8))
            .collect();
        let responses = net.query_batch(&batch).unwrap();
        let total: u64 = responses.iter().map(|r| r.bytes).sum();
        total as f64 / queries.len() as f64
    };

    let hdk = || -> std::sync::Arc<dyn Strategy> {
        std::sync::Arc::new(Hdk::new(HdkConfig {
            df_max: 20,
            truncation_k: 20,
            ..Default::default()
        }))
    };

    let base_small = mean_bytes(std::sync::Arc::new(SingleTermFull), &small_corpus);
    let base_large = mean_bytes(std::sync::Arc::new(SingleTermFull), &large_corpus);
    let hdk_small = mean_bytes(hdk(), &small_corpus);
    let hdk_large = mean_bytes(hdk(), &large_corpus);

    // At the larger collection the untruncated baseline ships more bytes per query.
    assert!(
        base_large > hdk_large,
        "large: baseline {base_large} vs hdk {hdk_large}"
    );
    // And the baseline's traffic grows faster with the collection size (the paper's
    // unscalability argument), while HDK stays bounded by its truncation constant.
    let base_growth = base_large / base_small;
    let hdk_growth = hdk_large / hdk_small;
    assert!(
        base_growth > hdk_growth,
        "baseline growth {base_growth:.2}x vs hdk growth {hdk_growth:.2}x"
    );
    assert!(
        hdk_growth < 2.0,
        "HDK per-query traffic should stay roughly flat, grew {hdk_growth:.2}x"
    );
}

#[test]
fn untruncated_single_term_baseline_reproduces_the_reference_ranking() {
    let (corpus, queries) = corpus_and_queries(200, 31);
    let mut net = build(SingleTermFull, &corpus, 8);
    for (i, q) in queries.iter().take(15).enumerate() {
        let outcome = net
            .execute(&QueryRequest::new(q.clone()).from_peer(i % 8))
            .unwrap();
        let reference = net.reference_search(q, 10);
        let overlap = overlap_at_k(&outcome.results, &reference, 10);
        assert!(
            overlap > 0.99,
            "query {q:?}: overlap {overlap} should be ~1 for the untruncated baseline"
        );
    }
}

#[test]
fn traffic_is_accounted_per_category_across_the_whole_pipeline() {
    let (corpus, queries) = corpus_and_queries(200, 41);
    let mut net = build(
        Hdk::new(HdkConfig {
            df_max: 30,
            truncation_k: 30,
            ..Default::default()
        }),
        &corpus,
        8,
    );
    // Indexing and ranking traffic happened during build.
    let t = net.traffic_snapshot();
    assert!(t.category(TrafficCategory::Indexing).bytes > 0);
    assert!(t.category(TrafficCategory::Ranking).bytes > 0);
    assert_eq!(t.category(TrafficCategory::Retrieval).bytes, 0);
    // Retrieval traffic only appears once queries run.
    for (i, q) in queries.iter().take(10).enumerate() {
        net.execute(&QueryRequest::new(q.clone()).from_peer(i % 8))
            .unwrap();
    }
    let t2 = net.traffic_snapshot();
    assert!(t2.category(TrafficCategory::Retrieval).bytes > 0);
    assert_eq!(
        t2.category(TrafficCategory::Indexing).bytes,
        t.category(TrafficCategory::Indexing).bytes,
        "HDK must not index anything new at query time"
    );
}

#[test]
fn query_outcome_traces_are_consistent_with_the_lattice() {
    let (corpus, queries) = corpus_and_queries(200, 51);
    let mut net = build(
        Hdk::new(HdkConfig {
            df_max: 30,
            truncation_k: 30,
            ..Default::default()
        }),
        &corpus,
        8,
    );
    for (i, q) in queries.iter().take(10).enumerate() {
        let outcome = net
            .execute(&QueryRequest::new(q.clone()).from_peer(i % 8))
            .unwrap();
        let terms = Analyzer::default().analyze_query(q);
        let lattice_size = (1usize << terms.len()) - 1;
        assert!(outcome.trace.nodes.len() <= lattice_size);
        assert!(outcome.trace.probes <= lattice_size);
        assert!(outcome.trace.probes >= 1);
        // Every found key contributed to the retrieved set, and every result document
        // appears in at least one retrieved posting list.
        let found = outcome.trace.found_keys().len();
        assert!(found <= outcome.trace.probes);
    }
}

#[test]
fn results_point_back_to_hosting_peers_and_documents_are_fetchable() {
    let (corpus, queries) = corpus_and_queries(150, 61);
    let mut net = build(
        Hdk::new(HdkConfig {
            df_max: 30,
            truncation_k: 30,
            ..Default::default()
        }),
        &corpus,
        6,
    );
    let mut fetched = 0;
    for (i, q) in queries.iter().take(10).enumerate() {
        let outcome = net
            .execute(&QueryRequest::new(q.clone()).from_peer(i % 6).top_k(5))
            .unwrap();
        for r in &outcome.results {
            assert!((r.doc.peer as usize) < net.peer_count());
            if let alvisp2p::core::FetchOutcome::Full(doc) =
                net.fetch_document(r.doc, &Credentials::anonymous())
            {
                assert!(!doc.body.is_empty());
                fetched += 1;
            }
        }
    }
    assert!(
        fetched > 0,
        "no documents could be fetched from their owners"
    );
}
