//! Integration tests for overlay-level behaviour underneath the IR layers:
//! churn resilience of the distributed index and congestion control under hot-spot
//! retrieval load.

use alvisp2p::dht::congestion::{run_hotspot, CongestionConfig, HotspotScenario};
use alvisp2p::netsim::SimDuration;
use alvisp2p::prelude::*;

fn indexed_network(peers: usize, seed: u64) -> (AlvisNetwork, Vec<String>) {
    let corpus = CorpusGenerator::new(
        CorpusConfig {
            num_docs: 200,
            vocab_size: 600,
            num_topics: 6,
            topic_vocab: 40,
            doc_len_mean: 50,
            doc_len_spread: 25,
            ..Default::default()
        },
        seed,
    )
    .generate();
    let log = QueryLogGenerator::new(
        QueryLogConfig {
            num_queries: 30,
            distinct_queries: 20,
            ..Default::default()
        },
        seed,
    )
    .generate(&corpus);
    let net = AlvisNetwork::builder()
        .peers(peers)
        .strategy(Hdk::new(HdkConfig {
            df_max: 30,
            truncation_k: 30,
            ..Default::default()
        }))
        .seed(seed)
        .corpus(&corpus)
        .build_indexed()
        .expect("valid configuration");
    let queries = log.queries.iter().map(|q| q.text.clone()).collect();
    (net, queries)
}

#[test]
fn graceful_churn_preserves_the_whole_global_index() {
    let (mut net, queries) = indexed_network(20, 7);
    let keys_before = net.global_index().activated_keys();
    let postings_before = net.global_index().total_postings();

    {
        let dht = net.global_index_mut().dht_mut();
        // Two graceful departures and two joins.
        dht.leave(2).unwrap();
        dht.leave(9).unwrap();
        assert!(dht.join(RingId::hash_u64(0x1111)).is_some());
        assert!(dht.join(RingId::hash_u64(0x2222)).is_some());
    }

    assert_eq!(net.global_index().activated_keys(), keys_before);
    assert_eq!(net.global_index().total_postings(), postings_before);

    // Queries from surviving peers keep working (origins 2 and 9 are gone).
    let mut answered = 0;
    for (i, q) in queries.iter().take(10).enumerate() {
        let origin = [0usize, 1, 3, 4, 5][i % 5];
        let outcome = net
            .execute(&QueryRequest::new(q.clone()).from_peer(origin))
            .unwrap();
        if !outcome.results.is_empty() {
            answered += 1;
        }
    }
    assert!(
        answered >= 5,
        "only {answered}/10 queries returned results after churn"
    );
}

#[test]
fn abrupt_failure_loses_only_the_failed_peers_slice() {
    let (mut net, queries) = indexed_network(20, 17);
    let keys_before = net.global_index().activated_keys();

    let lost = {
        let dht = net.global_index_mut().dht_mut();
        dht.fail(5).unwrap()
    };
    let keys_after = net.global_index().activated_keys();
    assert_eq!(keys_before - keys_after, lost);
    assert!(
        (lost as f64) < keys_before as f64 * 0.25,
        "a single failure lost {lost} of {keys_before} keys"
    );

    // The network still answers queries from live peers.
    let mut answered = 0;
    for (i, q) in queries.iter().take(10).enumerate() {
        let origin = [0usize, 1, 2, 3, 4][i % 5];
        if !net
            .execute(&QueryRequest::new(q.clone()).from_peer(origin))
            .unwrap()
            .results
            .is_empty()
        {
            answered += 1;
        }
    }
    assert!(
        answered >= 4,
        "only {answered}/10 queries answered after a failure"
    );
}

#[test]
fn querying_from_a_departed_peer_is_rejected_cleanly() {
    let (mut net, queries) = indexed_network(12, 27);
    net.global_index_mut().dht_mut().leave(3).unwrap();
    let err = net.execute(&QueryRequest::new(queries[0].clone()).from_peer(3));
    assert!(
        matches!(err, Err(AlvisError::Overlay(_))),
        "a departed peer must not be able to originate lookups: {err:?}"
    );
}

#[test]
fn congestion_control_keeps_goodput_under_hotspot_overload() {
    // Server capacity: 4 servers × (1 / 2ms) = 2000 req/s. Offer 3x that.
    let base = HotspotScenario {
        clients: 24,
        servers: 4,
        offered_load: 6_000.0,
        duration: SimDuration::from_secs(3),
        hotspot_skew: 1.2,
        ..Default::default()
    };
    let with_cc = run_hotspot(
        &HotspotScenario {
            congestion: CongestionConfig::default(),
            ..base.clone()
        },
        3,
    );
    let without_cc = run_hotspot(
        &HotspotScenario {
            congestion: CongestionConfig::disabled(),
            ..base
        },
        3,
    );
    assert!(with_cc.generated > 0 && without_cc.generated > 0);
    assert!(
        with_cc.completion_rate > without_cc.completion_rate + 0.1,
        "with cc {:.3} vs without {:.3}",
        with_cc.completion_rate,
        without_cc.completion_rate
    );
    assert!(without_cc.drops > with_cc.drops);
}

#[test]
fn light_load_is_served_fully_with_and_without_congestion_control() {
    let base = HotspotScenario {
        clients: 8,
        servers: 4,
        offered_load: 200.0,
        duration: SimDuration::from_secs(2),
        ..Default::default()
    };
    for congestion in [CongestionConfig::default(), CongestionConfig::disabled()] {
        let out = run_hotspot(
            &HotspotScenario {
                congestion,
                ..base.clone()
            },
            9,
        );
        assert!(
            out.completion_rate > 0.95,
            "light load should complete, got {out:?}"
        );
    }
}
