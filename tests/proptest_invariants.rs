//! Property-based tests over the public API of every crate in the workspace.
//!
//! These cover the invariants the system's correctness rests on: ring arithmetic and
//! responsibility, lookup termination, truncated-posting-list bounds and
//! order-insensitivity, key-lattice algebra, lattice-exploration pruning soundness,
//! analyzer/stemmer behaviour and digest round-trips.

use alvisp2p::core::lattice::{explore_lattice, LatticeConfig, NodeOutcome};
use alvisp2p::core::{DocumentDigest, ProbeResult, ScoredRef, TermKey, TruncatedPostingList};
use alvisp2p::dht::{lookup, Dht, DhtConfig, IdDistribution, Peer, Ring, RingId, RoutingStrategy};
use alvisp2p::netsim::{SimRng, TrafficCategory, WireSize, Zipf};
use alvisp2p::textindex::{stem, tokenize, Analyzer, DocId, DocumentStore, InvertedIndex};
use proptest::prelude::*;
use std::collections::HashSet;

// ---------------------------------------------------------------------------
// Ring identifiers and responsibility
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn ring_distance_is_zero_iff_equal(a: u64, b: u64) {
        let (ia, ib) = (RingId(a), RingId(b));
        prop_assert_eq!(ia.distance_to(ib) == 0, a == b);
    }

    #[test]
    fn ring_distances_sum_to_ring_size(a: u64, b: u64) {
        prop_assume!(a != b);
        let (ia, ib) = (RingId(a), RingId(b));
        // d(a,b) + d(b,a) == 2^64 (wrapping to 0).
        prop_assert_eq!(ia.distance_to(ib).wrapping_add(ib.distance_to(ia)), 0);
    }

    #[test]
    fn interval_membership_matches_distance_definition(x: u64, from: u64, to: u64) {
        let (ix, ifrom, ito) = (RingId(x), RingId(from), RingId(to));
        let expected = if from == to {
            true
        } else {
            ifrom.distance_to(ix) <= ifrom.distance_to(ito) && x != from
        };
        prop_assert_eq!(ix.in_interval_open_closed(ifrom, ito), expected);
    }

    #[test]
    fn exactly_one_peer_is_responsible_for_any_key(
        ids in proptest::collection::hash_set(any::<u64>(), 1..40),
        key: u64,
    ) {
        let ring = Ring::from_members(ids.iter().enumerate().map(|(i, id)| (RingId(*id), i)));
        let key = RingId(key);
        let responsible: Vec<_> = ring
            .members()
            .iter()
            .filter(|(id, _)| ring.is_responsible(*id, key))
            .collect();
        prop_assert_eq!(responsible.len(), 1);
        prop_assert_eq!(responsible[0].0, ring.successor_of_key(key).unwrap().0);
    }
}

// ---------------------------------------------------------------------------
// DHT lookups
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lookup_always_terminates_at_the_responsible_peer(
        n in 1usize..200,
        strategy_finger: bool,
        seed: u64,
        key: u64,
        origin_raw: usize,
    ) {
        let strategy = if strategy_finger { RoutingStrategy::Finger } else { RoutingStrategy::HopSpace };
        let config = DhtConfig { strategy, ..Default::default() };
        let dht: Dht<Vec<u8>> = Dht::with_peers(config, seed, n);
        let origin = origin_raw % n;
        let key = RingId(key);
        let hops = dht.probe_hops(origin, key).expect("lookup completes");
        // Never more hops than peers, and logarithmic for hop-space routing.
        prop_assert!(hops < n.max(2));
        if !strategy_finger {
            let bound = (n as f64).log2().ceil() as usize + 2;
            prop_assert!(hops <= bound, "hops {} exceeds {} for n={}", hops, bound, n);
        }
        // The peer found is the ground-truth responsible peer.
        let peers: Vec<Peer<Vec<u8>>> = (0..n).map(|i| dht.peer(i).clone()).collect();
        let result = lookup(&peers, dht.ring(), origin, key, 4 * n + 64).unwrap();
        prop_assert_eq!(result.responsible, dht.responsible_for(key).unwrap());
    }

    #[test]
    fn put_get_round_trip_from_any_origin(
        n in 2usize..64,
        seed: u64,
        key in "[a-z]{1,12}",
        value in proptest::collection::vec(any::<u8>(), 0..64),
        from_raw: usize,
        to_raw: usize,
    ) {
        let mut dht: Dht<Vec<u8>> = Dht::with_peers(
            DhtConfig { id_distribution: IdDistribution::Uniform, ..Default::default() },
            seed,
            n,
        );
        let ring_key = RingId::hash_str(&key);
        dht.put(from_raw % n, ring_key, value.clone(), TrafficCategory::Indexing).unwrap();
        let (_, got) = dht.get(to_raw % n, ring_key, TrafficCategory::Retrieval).unwrap();
        prop_assert_eq!(got, Some(value));
    }
}

// ---------------------------------------------------------------------------
// Truncated posting lists
// ---------------------------------------------------------------------------

fn scored_refs(max: usize) -> impl Strategy<Value = Vec<ScoredRef>> {
    proptest::collection::vec(
        (0u32..200, 0u32..2000, 0u32..10_000).prop_map(|(peer, local, s)| ScoredRef {
            doc: DocId::new(peer, local),
            score: f64::from(s) / 100.0,
        }),
        0..max,
    )
}

proptest! {
    #[test]
    fn truncated_list_is_bounded_sorted_and_counts_df(
        refs in scored_refs(300),
        capacity in 1usize..50,
    ) {
        let list = TruncatedPostingList::from_refs(refs.clone(), capacity);
        prop_assert!(list.len() <= capacity);
        // Sorted by descending score.
        for w in list.refs().windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        // full_df counts distinct matching documents. A document republished after it
        // was already truncated away cannot be recognised as a duplicate (the list
        // deliberately keeps no memory of dropped references), so with duplicate
        // inputs full_df may overcount — but never undercount, and never exceed the
        // number of references seen.
        let distinct: HashSet<_> = refs.iter().map(|r| r.doc).collect();
        prop_assert!(list.full_df() >= distinct.len() as u64);
        prop_assert!(list.full_df() <= refs.len() as u64);
        if distinct.len() == refs.len() {
            prop_assert_eq!(list.full_df(), distinct.len() as u64);
            prop_assert_eq!(list.is_truncated(), distinct.len() > list.len());
        }
        // The stored refs are the top-scored distinct documents: every stored score is
        // >= the best score of any dropped document.
        if let Some(worst) = list.worst_score() {
            let stored: HashSet<_> = list.refs().iter().map(|r| r.doc).collect();
            let mut best_dropped: f64 = f64::NEG_INFINITY;
            for d in &distinct {
                if !stored.contains(d) {
                    let best = refs
                        .iter()
                        .filter(|r| r.doc == *d)
                        .map(|r| r.score)
                        .fold(f64::NEG_INFINITY, f64::max);
                    best_dropped = best_dropped.max(best);
                }
            }
            if best_dropped.is_finite() {
                prop_assert!(worst >= best_dropped);
            }
        }
    }

    #[test]
    fn truncated_list_insertion_is_order_insensitive(
        refs in scored_refs(120),
        capacity in 1usize..40,
        seed: u64,
    ) {
        let forward = TruncatedPostingList::from_refs(refs.clone(), capacity);
        let mut shuffled = refs;
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut shuffled);
        let reordered = TruncatedPostingList::from_refs(shuffled, capacity);
        prop_assert_eq!(forward.refs(), reordered.refs());
        prop_assert_eq!(forward.full_df(), reordered.full_df());
    }

    #[test]
    fn merge_never_loses_the_best_documents(
        a in scored_refs(80),
        b in scored_refs(80),
        capacity in 1usize..30,
    ) {
        let la = TruncatedPostingList::from_refs(a.clone(), capacity);
        let lb = TruncatedPostingList::from_refs(b.clone(), capacity);
        let mut merged = la.clone();
        merged.merge(&lb);
        prop_assert!(merged.len() <= capacity);
        // The overall best stored score survives the merge.
        let best_either = la
            .best_score()
            .into_iter()
            .chain(lb.best_score())
            .fold(f64::NEG_INFINITY, f64::max);
        if best_either.is_finite() {
            prop_assert_eq!(merged.best_score().unwrap(), best_either);
        }
        // Wire size is the exact codec frame length, bounded by the codec's
        // worst case for a list of this capacity.
        prop_assert!(merged.wire_size() <= alvisp2p::core::codec::max_encoded_list_len(capacity));
    }
}

// ---------------------------------------------------------------------------
// Term keys and the query lattice
// ---------------------------------------------------------------------------

fn term() -> impl Strategy<Value = String> {
    "[a-e]{1,3}"
}

proptest! {
    #[test]
    fn key_canonical_form_is_order_insensitive(
        terms in proptest::collection::vec(term(), 1..5),
        seed: u64,
    ) {
        let key = TermKey::new(terms.clone());
        let mut shuffled = terms;
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut shuffled);
        let key2 = TermKey::new(shuffled);
        prop_assert_eq!(&key, &key2);
        prop_assert_eq!(key.ring_id(), key2.ring_id());
    }

    #[test]
    fn subset_lattice_is_complete_and_ordered(
        terms in proptest::collection::hash_set(term(), 1..5),
    ) {
        let key = TermKey::new(terms);
        let subsets = key.all_subsets_desc();
        prop_assert_eq!(subsets.len(), (1usize << key.len()) - 1);
        for w in subsets.windows(2) {
            prop_assert!(w[0].len() >= w[1].len());
        }
        // Every subset is dominated by (or equal to) the query key.
        for s in &subsets {
            prop_assert!(s == &key || key.dominates(s));
        }
    }

    #[test]
    fn lattice_exploration_never_probes_a_dominated_node_after_a_complete_result(
        query_terms in proptest::collection::hash_set(term(), 2..5),
        indexed in proptest::collection::vec(
            proptest::collection::hash_set(term(), 1..4),
            0..6
        ),
        complete_flags in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let query = TermKey::new(query_terms);
        // Build a fake index: some keys present, some complete, some truncated.
        let mut table: Vec<(TermKey, bool)> = Vec::new();
        for (i, terms) in indexed.into_iter().enumerate() {
            let complete = complete_flags.get(i).copied().unwrap_or(false);
            table.push((TermKey::new(terms), complete));
        }
        let make_list = |complete: bool| {
            let mut list = TruncatedPostingList::new(2);
            list.insert(ScoredRef { doc: DocId::new(0, 0), score: 1.0 });
            if !complete {
                list.insert(ScoredRef { doc: DocId::new(0, 1), score: 0.9 });
                list.insert(ScoredRef { doc: DocId::new(0, 2), score: 0.8 });
            }
            list
        };
        let mut probed: Vec<TermKey> = Vec::new();
        let result = explore_lattice(
            &query,
            &LatticeConfig { max_probe_len: 0, max_probes: 1024, prune_below_truncated: true },
            |k| {
                probed.push(k.clone());
                let entry = table.iter().find(|(tk, _)| tk == k);
                Ok::<ProbeResult, ()>(ProbeResult {
                    key: k.clone(),
                    postings: entry.map(|(_, complete)| make_list(*complete)),
                    hops: 1,
                    responsible: 0,
                    served_by: 0,
                    replica_set: Vec::new(),
                    skipped: false,
                    skipped_blocks: 0,
                    elided_bytes: 0,
                })
            },
        )
        .unwrap();

        // Soundness of pruning: no probed node is a strict subset of a previously
        // *found* node (found nodes always prune their sub-lattice here).
        for (i, node) in probed.iter().enumerate() {
            for earlier in &probed[..i] {
                let found_earlier = result
                    .trace
                    .outcome_of(earlier)
                    .map(|o| matches!(o, NodeOutcome::Found { .. }))
                    .unwrap_or(false);
                if found_earlier {
                    prop_assert!(
                        !earlier.dominates(node),
                        "probed {node:?} although {earlier:?} was already found"
                    );
                }
            }
        }
        // Every lattice node appears exactly once in the trace.
        prop_assert_eq!(result.trace.nodes.len(), (1usize << query.len()) - 1);
    }
}

// ---------------------------------------------------------------------------
// Query planning and budget-aware execution
// ---------------------------------------------------------------------------

/// Words that appear in the demo corpus (plus one that does not), so generated
/// queries exercise found, truncated and missing lattice nodes.
const QUERY_POOL: &[&str] = &[
    "peer",
    "retrieval",
    "index",
    "overlay",
    "network",
    "congestion",
    "posting",
    "truncated",
    "access",
    "rights",
    "quality",
    "library",
    "zebra", // not in the corpus: df 0
];

fn pool_query(picks: &[usize]) -> String {
    picks
        .iter()
        .map(|i| QUERY_POOL[i % QUERY_POOL.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

fn demo_net(strategy_pick: u8, seed: u64) -> alvisp2p::core::AlvisNetwork {
    use alvisp2p::prelude::*;
    let builder = AlvisNetwork::builder()
        .peers(4)
        .seed(seed)
        .documents(demo_corpus());
    let builder = match strategy_pick % 3 {
        0 => builder.strategy(SingleTermFull),
        1 => builder.strategy(Hdk::new(alvisp2p::core::HdkConfig {
            df_max: 2,
            truncation_k: 4,
            ..Default::default()
        })),
        _ => builder.strategy(Qdi::new(alvisp2p::core::QdiConfig {
            activation_threshold: 2,
            truncation_k: 3,
            ..Default::default()
        })),
    };
    builder.build_indexed().expect("valid configuration")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) A GreedyCost-planned execution never exceeds the request's byte/hop
    /// budgets — the Reserve admission policy is a hard bound, not best-effort.
    #[test]
    fn planned_execution_never_exceeds_budgets(
        strategy_pick: u8,
        picks in proptest::collection::vec(0usize..QUERY_POOL.len(), 1..5),
        byte_budget in 0u64..6_000,
        hop_budget in 0usize..24,
        origin in 0usize..4,
    ) {
        use alvisp2p::prelude::*;
        let mut net = demo_net(strategy_pick, 11);
        let request = QueryRequest::new(pool_query(&picks))
            .from_peer(origin)
            .byte_budget(byte_budget)
            .hop_budget(hop_budget);
        let plan = net.plan_with(&GreedyCost::default(), &request).unwrap();
        let response = net.run(&plan, &request).unwrap();
        prop_assert!(
            response.bytes <= byte_budget,
            "spent {} bytes with budget {}",
            response.bytes,
            byte_budget
        );
        prop_assert!(
            response.hops <= hop_budget,
            "spent {} hops with budget {}",
            response.hops,
            hop_budget
        );
    }

    /// (b) Every plan's probes are a subset of the query's full lattice, cover
    /// it exactly once, and contain no duplicates — for both built-in planners.
    #[test]
    fn plans_cover_the_lattice_without_duplicates(
        strategy_pick: u8,
        picks in proptest::collection::hash_set(0usize..QUERY_POOL.len(), 1..5),
        greedy: bool,
    ) {
        use alvisp2p::prelude::*;
        let net = demo_net(strategy_pick, 7);
        let picks: Vec<usize> = picks.into_iter().collect();
        let request = QueryRequest::new(pool_query(&picks));
        let plan = if greedy {
            net.plan_with(&GreedyCost::default(), &request).unwrap()
        } else {
            net.plan_with(&BestEffort, &request).unwrap()
        };
        let Some(query_key) = plan.query_key.clone() else {
            prop_assert!(plan.nodes.is_empty());
            return;
        };
        let lattice: HashSet<TermKey> = query_key.all_subsets_desc().into_iter().collect();
        // The plan enumerates the full lattice exactly once…
        prop_assert_eq!(plan.nodes.len(), lattice.len());
        let mut seen: HashSet<TermKey> = HashSet::new();
        for node in &plan.nodes {
            prop_assert!(lattice.contains(&node.key), "{} not in lattice", node.key);
            prop_assert!(seen.insert(node.key.clone()), "duplicate node {}", node.key);
        }
        // …and the scheduled probes are a (dedup-free) subset of it.
        prop_assert!(plan.scheduled_probes() <= lattice.len());
    }

    /// (c) The BestEffort planner reproduces the pre-planner (PR 1) execution
    /// trace key-for-key on budget-free queries: same nodes, same outcomes,
    /// same order, same traffic.
    #[test]
    fn best_effort_reproduces_pre_planner_traces(
        strategy_pick: u8,
        picks in proptest::collection::vec(0usize..QUERY_POOL.len(), 1..5),
        origin in 0usize..4,
    ) {
        use alvisp2p::prelude::*;
        let text = pool_query(&picks);

        // New path: plan with BestEffort, run the plan.
        let mut planned_net = demo_net(strategy_pick, 23);
        let request = QueryRequest::new(text.clone()).from_peer(origin);
        let plan = planned_net.plan_with(&BestEffort, &request).unwrap();
        let response = planned_net.run(&plan, &request).unwrap();

        // Reference: the PR 1 `execute` loop, replicated verbatim over an
        // identically-built network via `explore_lattice`.
        let mut reference_net = demo_net(strategy_pick, 23);
        let analyzer = Analyzer::default();
        // The query path analyzes lookup-only (never-published terms are
        // dropped and never intern — see `textindex::intern::try_term_id`),
        // so the reference must build its query key the same way.
        let terms = analyzer.analyze_query_ids(&text);
        if terms.is_empty() {
            prop_assert!(response.trace.nodes.is_empty());
            return;
        }
        let query_key = TermKey::from_term_ids(terms);
        let strategy = reference_net.strategy().clone();
        let lattice_config = strategy.lattice_config(&reference_net.config().lattice);
        let single_term_only = lattice_config.max_probe_len == 1;
        let capacity = strategy.truncation_k();
        let before = reference_net.traffic_snapshot();
        let reference = {
            let gi = reference_net.global_index_mut();
            explore_lattice(&query_key, &lattice_config, |key| {
                if single_term_only && key.len() > 1 {
                    return Ok(ProbeResult::skipped(key.clone()));
                }
                gi.probe(origin, key, 1, capacity, None)
            })
            .unwrap()
        };
        let reference_bytes = reference_net
            .traffic_snapshot()
            .since(&before)
            .category(TrafficCategory::Retrieval)
            .bytes;

        prop_assert_eq!(&response.trace.nodes, &reference.trace.nodes);
        prop_assert_eq!(response.trace.probes, reference.trace.probes);
        prop_assert_eq!(response.hops, reference.trace.hops);
        prop_assert_eq!(response.bytes, reference_bytes);
    }
}

// ---------------------------------------------------------------------------
// Fault plane defaults
// ---------------------------------------------------------------------------

/// `demo_net` with an explicit fault configuration. With `phantom_active` the
/// plane is *active* (a nonexistent peer is crashed, so every probe runs
/// through the retry loop) but no fault can ever fire.
fn demo_net_with_faults(
    strategy_pick: u8,
    seed: u64,
    phantom_active: bool,
) -> alvisp2p::core::AlvisNetwork {
    use alvisp2p::prelude::*;
    let faults = if phantom_active {
        let mut f = FaultPlane::seeded(seed);
        f.crash(9_999);
        f
    } else {
        FaultPlane::NoFaults
    };
    let builder = AlvisNetwork::builder()
        .peers(4)
        .seed(seed)
        .faults(faults)
        .retry_policy(RetryPolicy::default())
        .documents(demo_corpus());
    let builder = match strategy_pick % 3 {
        0 => builder.strategy(SingleTermFull),
        1 => builder.strategy(Hdk::new(alvisp2p::core::HdkConfig {
            df_max: 2,
            truncation_k: 4,
            ..Default::default()
        })),
        _ => builder.strategy(Qdi::new(alvisp2p::core::QdiConfig {
            activation_threshold: 2,
            truncation_k: 3,
            ..Default::default()
        })),
    };
    builder.build_indexed().expect("valid configuration")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `NoFaults` plus the default `RetryPolicy` is byte-identical to a
    /// network built without any fault configuration — same documents and
    /// score bits, same trace, same bytes and hops — and so is an *active*
    /// plane whose faults never fire (pinning the retry loop's per-attempt
    /// accounting). Robustness counters stay at zero either way.
    #[test]
    fn fault_plane_defaults_are_byte_identical(
        strategy_pick: u8,
        picks in proptest::collection::vec(0usize..QUERY_POOL.len(), 1..5),
        origin in 0usize..4,
        seed in 1u64..64,
        phantom_active: bool,
    ) {
        use alvisp2p::prelude::*;
        let text = pool_query(&picks);
        let mut plain = demo_net(strategy_pick, seed);
        let mut observed = demo_net_with_faults(strategy_pick, seed, phantom_active);
        let request = QueryRequest::new(text).from_peer(origin).top_k(10);
        let a = plain.execute(&request).unwrap();
        let b = observed.execute(&request).unwrap();
        let docs = |r: &QueryResponse| {
            r.results
                .iter()
                .map(|d| (d.doc, d.score.to_bits()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(docs(&a), docs(&b));
        prop_assert_eq!(&a.trace.nodes, &b.trace.nodes);
        prop_assert_eq!(a.hops, b.hops);
        prop_assert_eq!(a.bytes, b.bytes);
        prop_assert_eq!(a.messages, b.messages);
        for r in [&a, &b] {
            prop_assert_eq!(r.retries, 0);
            prop_assert_eq!(r.failed_probes, 0);
            prop_assert_eq!(r.hedged, 0);
            prop_assert_eq!(r.completeness.fraction(), 1.0);
            prop_assert!(!r.completeness.is_degraded());
        }
    }
}

// ---------------------------------------------------------------------------
// Text analysis, index and digest
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn stemming_shrinks_terminates_and_preserves_the_alphabet(word in "[a-z]{1,15}") {
        // Porter stemming is not idempotent for arbitrary letter strings (e.g. a stem
        // ending in "-se" loses the "e" first and the "s" on a second pass), but it is
        // a contraction: every application either leaves the word alone or produces a
        // word that is no longer, and repeated application reaches a fixed point.
        let once = stem(&word);
        prop_assert!(!once.is_empty());
        prop_assert!(once.len() <= word.len());
        prop_assert!(once.bytes().all(|b| b.is_ascii_lowercase()));
        let mut current = once;
        for _ in 0..word.len() + 1 {
            let next = stem(&current);
            prop_assert!(next.len() <= current.len());
            if next == current {
                break;
            }
            current = next;
        }
        prop_assert_eq!(stem(&current), current.clone(), "stemming never reached a fixed point");
        // Short words are never touched.
        if word.len() <= 2 {
            prop_assert_eq!(stem(&word), word);
        }
    }

    #[test]
    fn tokenizer_positions_are_strictly_increasing(text in ".{0,300}") {
        let tokens = tokenize(&text);
        for w in tokens.windows(2) {
            prop_assert!(w[0].position < w[1].position);
        }
        for t in &tokens {
            prop_assert!(!t.text.is_empty());
            prop_assert!(t.text.chars().all(|c| c.is_alphanumeric()));
        }
    }

    #[test]
    fn index_df_matches_document_membership(
        docs in proptest::collection::vec("[a-d ]{0,60}", 1..12),
    ) {
        let analyzer = Analyzer::plain();
        let mut index = InvertedIndex::new(analyzer.clone());
        for (i, d) in docs.iter().enumerate() {
            index.index_text(DocId::new(0, i as u32), d);
        }
        // For every indexed term, df equals the number of documents whose analyzed
        // term set contains it.
        for term in index.vocabulary().map(str::to_string).collect::<Vec<_>>() {
            let expected = docs
                .iter()
                .filter(|d| analyzer.analyze_distinct(d).contains(&term))
                .count();
            prop_assert_eq!(index.df(&term), expected);
        }
        prop_assert_eq!(index.doc_count(), docs.len());
    }

    #[test]
    fn digest_round_trip_preserves_the_index(
        docs in proptest::collection::vec("[a-f]{1,8}( [a-f]{1,8}){0,20}", 1..8),
    ) {
        let analyzer = Analyzer::default();
        let mut store = DocumentStore::new(3);
        for (i, body) in docs.iter().enumerate() {
            store.publish(format!("doc {i}"), body.clone());
        }
        let digest = DocumentDigest::from_collection(&store, &analyzer);
        let json = digest.to_json().unwrap();
        let parsed = DocumentDigest::from_json(&json).unwrap();
        prop_assert_eq!(&parsed, &digest);

        let mut direct = InvertedIndex::default();
        for (i, doc) in store.iter().enumerate() {
            direct.index_text(DocId::new(9, i as u32), &format!("{} {}", doc.title, doc.body));
        }
        let mut imported = InvertedIndex::default();
        parsed.import_into(&mut imported, 9, 0);
        prop_assert_eq!(imported.doc_count(), direct.doc_count());
        for term in direct.vocabulary().map(str::to_string).collect::<Vec<_>>() {
            prop_assert_eq!(imported.df(&term), direct.df(&term));
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_monotone(n in 1usize..300, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for r in 1..n {
            prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }
}
