//! Tests of the public API surface: the fluent builder, user-defined
//! [`Strategy`] implementations, request batching and the unified error
//! hierarchy. This file is the contract of the session-oriented API — if it
//! stops compiling, the public surface broke.

use alvisp2p::core::hdk::HdkLevelReport;
use alvisp2p::core::lattice::LatticeResult;
use alvisp2p::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

#[test]
fn builder_assembles_a_ready_network() {
    let mut net = AlvisNetwork::builder()
        .peers(6)
        .strategy(Hdk::new(HdkConfig {
            df_max: 2,
            truncation_k: 5,
            ..Default::default()
        }))
        .seed(11)
        .documents(demo_corpus())
        .build_indexed()
        .expect("valid configuration");
    assert_eq!(net.peer_count(), 6);
    assert_eq!(net.total_documents(), 12);
    assert!(net.index_built());
    assert_eq!(net.strategy().label(), "hdk");

    let response = net
        .execute(&QueryRequest::new("peer to peer retrieval").top_k(5))
        .unwrap();
    assert!(!response.is_empty());
    assert!(response.results.len() <= 5);
}

#[test]
fn builder_accepts_all_configuration_axes() {
    let net = AlvisNetwork::builder()
        .peers(4)
        .strategy(SingleTermFull)
        .dht(DhtConfig::default())
        .bm25(Default::default())
        .lattice(LatticeConfig::default())
        .seed(3)
        .documents(demo_corpus())
        .build()
        .expect("valid configuration");
    assert!(!net.index_built(), "build() must not build the index");
    assert_eq!(net.strategy().label(), "single-term");
}

#[test]
fn builder_rejects_zero_peers_with_invalid_config() {
    match AlvisNetwork::builder().peers(0).build() {
        Err(AlvisError::InvalidConfig(msg)) => assert!(msg.contains("peer")),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Custom user-defined strategy
// ---------------------------------------------------------------------------

/// A user-defined strategy: single-term index over a bounded capacity, which
/// counts how often the network consulted it after queries. Exercises every
/// trait hook a third-party policy would implement.
#[derive(Debug, Default)]
struct CountingStrategy {
    truncation_k: usize,
    post_query_calls: AtomicUsize,
}

impl Strategy for CountingStrategy {
    fn label(&self) -> &str {
        "counting"
    }

    fn truncation_k(&self) -> usize {
        self.truncation_k
    }

    fn build_index(&self, ctx: &mut IndexerCtx<'_>) -> Vec<HdkLevelReport> {
        vec![ctx.publish_single_term_level(self.truncation_k, self.df_max())]
    }

    fn lattice_config(&self, base: &LatticeConfig) -> LatticeConfig {
        LatticeConfig {
            max_probes: base.max_probes.min(64),
            ..base.clone()
        }
    }

    fn post_query(&self, _ctx: &mut QueryCtx<'_>, _query_key: &TermKey, result: &LatticeResult) {
        assert!(result.trace.probes > 0);
        self.post_query_calls.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn custom_strategies_plug_into_the_network() {
    let strategy = Arc::new(CountingStrategy {
        truncation_k: 8,
        post_query_calls: AtomicUsize::new(0),
    });
    let mut net = AlvisNetwork::builder()
        .peers(4)
        .strategy_arc(strategy.clone())
        .documents(demo_corpus())
        .build_indexed()
        .expect("valid configuration");

    let report = net.last_build_report().expect("index was built").clone();
    assert_eq!(report.strategy, "counting");
    assert!(report.activated_keys > 0);
    assert_eq!(report.levels.len(), 1);

    let response = net
        .execute(&QueryRequest::new("distributed retrieval"))
        .unwrap();
    assert!(!response.results.is_empty());
    assert_eq!(strategy.post_query_calls.load(Ordering::Relaxed), 1);

    // Posting lists respect the custom truncation bound.
    for entry in net.global_index().entries() {
        assert!(entry.postings.len() <= 8);
    }
}

// ---------------------------------------------------------------------------
// Requests, batching and budgets
// ---------------------------------------------------------------------------

#[test]
fn query_batch_preserves_order_and_matches_singles() {
    let mut net = AlvisNetwork::builder()
        .peers(4)
        .strategy(Hdk::new(HdkConfig {
            df_max: 2,
            truncation_k: 5,
            ..Default::default()
        }))
        .documents(demo_corpus())
        .build_indexed()
        .unwrap();

    let texts = [
        "peer to peer retrieval",
        "congestion control overlay",
        "the of and", // analyzes to nothing → empty response, not an error
    ];
    let batch: Vec<QueryRequest> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| QueryRequest::new(*t).from_peer(i % 4).top_k(5))
        .collect();
    let responses = net.query_batch(&batch).unwrap();
    assert_eq!(responses.len(), 3);
    assert!(!responses[0].is_empty());
    assert!(!responses[1].is_empty());
    assert!(responses[2].is_empty());

    // The same requests executed singly return the same document sets.
    let mut net2 = AlvisNetwork::builder()
        .peers(4)
        .strategy(Hdk::new(HdkConfig {
            df_max: 2,
            truncation_k: 5,
            ..Default::default()
        }))
        .documents(demo_corpus())
        .build_indexed()
        .unwrap();
    for (request, batched) in batch.iter().zip(&responses) {
        let single = net2.execute(request).unwrap();
        let batched_docs: Vec<_> = batched.results.iter().map(|r| r.doc).collect();
        let single_docs: Vec<_> = single.results.iter().map(|r| r.doc).collect();
        assert_eq!(batched_docs, single_docs);
    }
}

#[test]
fn batch_stops_at_the_first_error() {
    let mut net = AlvisNetwork::builder()
        .peers(2)
        .strategy(SingleTermFull)
        .documents(demo_corpus())
        .build_indexed()
        .unwrap();
    let batch = vec![
        QueryRequest::new("peer"),
        QueryRequest::new("peer").from_peer(77),
    ];
    match net.query_batch(&batch) {
        Err(AlvisError::NoSuchPeer {
            origin: 77,
            peers: 2,
        }) => {}
        other => panic!("expected NoSuchPeer, got {other:?}"),
    }
}

#[test]
fn refinement_rides_on_the_request() {
    let mut net = AlvisNetwork::builder()
        .peers(3)
        .strategy(Hdk::default())
        .documents(demo_corpus())
        .build_indexed()
        .unwrap();
    let plain = net
        .execute(&QueryRequest::new("truncated posting lists"))
        .unwrap();
    assert!(plain.refined.is_empty());
    let refined = net
        .execute(&QueryRequest::new("truncated posting lists").with_refinement())
        .unwrap();
    assert_eq!(refined.refined.len(), refined.results.len().min(10));
    assert!(refined.refined[0].global_score > 0.0);
}

#[test]
fn byte_budget_truncates_exploration_but_never_errors() {
    let mut net = AlvisNetwork::builder()
        .peers(4)
        .strategy(Hdk::default())
        .documents(demo_corpus())
        .build_indexed()
        .unwrap();
    let tight = net
        .execute(&QueryRequest::new("peer to peer retrieval overlay").byte_budget(1))
        .unwrap();
    assert!(tight.budget_exhausted);
    let loose = net
        .execute(&QueryRequest::new("peer to peer retrieval overlay").byte_budget(10_000_000))
        .unwrap();
    assert!(!loose.budget_exhausted);
    assert!(loose.bytes >= tight.bytes);
}

// ---------------------------------------------------------------------------
// The plan → execute pipeline
// ---------------------------------------------------------------------------

#[test]
fn plan_run_and_stream_are_part_of_the_public_surface() {
    let mut net = AlvisNetwork::builder()
        .peers(4)
        .strategy(Hdk::new(HdkConfig {
            df_max: 2,
            truncation_k: 5,
            ..Default::default()
        }))
        .planner(GreedyCost::default())
        .documents(demo_corpus())
        .build_indexed()
        .unwrap();
    assert_eq!(net.planner().label(), "greedy-cost");

    let request = QueryRequest::new("peer to peer retrieval").top_k(5);
    let plan = net.plan(&request).unwrap();
    assert_eq!(plan.planner, "greedy-cost");
    assert_eq!(plan.budget_policy, BudgetPolicy::Reserve);
    assert!(plan.scheduled_probes() > 0);
    // Cost annotations are populated for every scheduled probe.
    for node in plan.probes() {
        assert_eq!(node.decision, PlanDecision::Probe);
        assert!(node.est_bytes > 0);
    }

    // run() executes a plan; an explicit executor handle does the same.
    let response = net.run(&plan, &request).unwrap();
    assert!(!response.results.is_empty());
    let response2 = net.executor().run(&plan, &request).unwrap();
    assert_eq!(response.results.len(), response2.results.len());

    // Streams yield one event per probe and finish into the response.
    let mut stream = net.stream(plan.clone(), request.clone()).unwrap();
    let mut seen = 0usize;
    for event in stream.by_ref() {
        assert!(event.top_k.len() <= 5);
        seen += 1;
    }
    let streamed = stream.finish().unwrap();
    assert_eq!(seen, streamed.trace.probes);

    // Side-by-side planner comparison over the same network state.
    let best_effort = net.plan_with(&BestEffort, &request).unwrap();
    assert_eq!(best_effort.budget_policy, BudgetPolicy::Cutoff);
    assert_eq!(best_effort.nodes.len(), plan.nodes.len());
}

/// A user-defined planner: schedules only the single-term probes, cheapest
/// first. Exercises the `Planner` seam a third-party policy would implement.
#[derive(Debug)]
struct SinglesFirst;

impl Planner for SinglesFirst {
    fn label(&self) -> &str {
        "singles-first"
    }

    fn plan(&self, ctx: &PlanCtx<'_>) -> QueryPlan {
        let mut plan = BestEffort.plan(ctx);
        plan.planner = self.label().to_string();
        for node in &mut plan.nodes {
            if node.key.len() > 1 {
                node.decision = PlanDecision::Skip;
            }
        }
        plan.nodes.sort_by_key(|n| n.est_bytes);
        plan
    }
}

#[test]
fn custom_planners_plug_into_the_network() {
    let mut net = AlvisNetwork::builder()
        .peers(4)
        .strategy(Hdk::default())
        .planner(SinglesFirst)
        .documents(demo_corpus())
        .build_indexed()
        .unwrap();
    let response = net
        .execute(&QueryRequest::new("peer to peer retrieval"))
        .unwrap();
    assert!(!response.results.is_empty());
    // Only single-term keys were probed.
    for key in response.trace.probed_keys() {
        assert_eq!(key.len(), 1);
    }
}

#[test]
fn observers_receive_probe_events_and_can_stop() {
    struct CountAndStop(usize);
    impl ExecutionObserver for CountAndStop {
        fn on_probe(&mut self, event: &ProbeEvent) -> ExecutionControl {
            assert!(event.bytes > 0);
            self.0 += 1;
            ExecutionControl::Stop
        }
    }
    let mut net = AlvisNetwork::builder()
        .peers(4)
        .strategy(Hdk::default())
        .documents(demo_corpus())
        .build_indexed()
        .unwrap();
    let request = QueryRequest::new("peer to peer retrieval");
    let plan = net.plan(&request).unwrap();
    let mut observer = CountAndStop(0);
    let response = net.run_observed(&plan, &request, &mut observer).unwrap();
    assert_eq!(observer.0, 1);
    assert_eq!(response.trace.probes, 1);
}

// ---------------------------------------------------------------------------
// Error hierarchy
// ---------------------------------------------------------------------------

#[test]
fn alvis_error_unifies_every_failure_mode() {
    let mut net = AlvisNetwork::builder()
        .peers(2)
        .strategy(SingleTermFull)
        .documents(demo_corpus())
        .build_indexed()
        .unwrap();

    // Request-level validation.
    assert!(matches!(
        net.execute(&QueryRequest::new("peer").top_k(0)),
        Err(AlvisError::InvalidRequest(_))
    ));
    // Unknown origin peer.
    assert!(matches!(
        net.execute(&QueryRequest::new("peer").from_peer(5)),
        Err(AlvisError::NoSuchPeer {
            origin: 5,
            peers: 2
        })
    ));
    // Overlay failures wrap DhtError and keep it inspectable via source().
    net.global_index_mut().dht_mut().leave(1).unwrap();
    let err = net
        .execute(&QueryRequest::new("peer").from_peer(1))
        .unwrap_err();
    match &err {
        AlvisError::Overlay(dht_err) => {
            assert_eq!(*dht_err, DhtError::BadOrigin);
        }
        other => panic!("expected Overlay, got {other:?}"),
    }
    let source = std::error::Error::source(&err).expect("overlay errors carry a source");
    assert!(source.to_string().contains("overlay") || !source.to_string().is_empty());
    // Errors are comparable and printable.
    assert_eq!(err.clone(), AlvisError::Overlay(DhtError::BadOrigin));
    assert!(!format!("{err}").is_empty());
}
