//! Integration tests for the heterogeneity and document-access features of §4 of the
//! paper: document digests from external engines, per-document access rights, and the
//! two-step refinement against the owners' local engines.

use alvisp2p::core::FetchOutcome;
use alvisp2p::prelude::*;
use alvisp2p::textindex::{AccessRights, DocId as TDocId, Document};

fn base_network(peers: usize) -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(peers)
        .strategy(Hdk::new(HdkConfig {
            df_max: 3,
            truncation_k: 10,
            ..Default::default()
        }))
        .seed(3)
        .documents(demo_corpus())
        .build()
        .expect("valid configuration")
}

#[test]
fn imported_digest_collections_are_globally_searchable() {
    let mut net = base_network(5);

    // An external engine (a digital library) with its own collection.
    let mut library = alvisp2p::core::AlvisPeer::new(500);
    library.publish(
        "Herbarium specimens catalogue",
        "digitised herbarium specimens with botanical annotations and collection dates",
    );
    library.publish(
        "Expedition field notebooks",
        "scanned field notebooks from nineteenth century botanical expeditions",
    );
    let digest = library.export_digest();
    let json = digest.to_json().unwrap();
    let digest_back = alvisp2p::core::DocumentDigest::from_json(&json).unwrap();
    assert_eq!(digest, digest_back);

    // Peer 2 imports the digest, then the distributed index is (re)built.
    let imported = net.peer_mut(2).import_digest(&digest_back);
    assert_eq!(imported.len(), 2);
    net.build_index();

    // Any other peer now finds the library's documents.
    let outcome = net
        .execute(&QueryRequest::new("herbarium specimens botanical").from_peer(4))
        .unwrap();
    assert!(!outcome.results.is_empty());
    assert!(
        outcome.results.iter().any(|r| r.doc.peer == 2),
        "library documents should surface via the importing peer"
    );
}

#[test]
fn access_rights_are_enforced_when_fetching_results() {
    let mut net = base_network(4);
    // Peer 1 publishes a restricted and a private document.
    let restricted = net.peer_mut(1).publish_document(
        Document::new(
            TDocId::new(1, 500),
            "Quarterly earnings draft",
            "confidential quarterly earnings projections draft",
        )
        .with_access(AccessRights::Restricted {
            username: "cfo".into(),
            password: "numbers".into(),
        }),
    );
    let private = net.peer_mut(1).publish_document(
        Document::new(
            TDocId::new(1, 501),
            "Internal memo",
            "internal memo about unannounced partnerships",
        )
        .with_access(AccessRights::Private),
    );
    net.build_index();

    // Both documents are searchable.
    let outcome = net
        .execute(&QueryRequest::new("confidential quarterly earnings").from_peer(3))
        .unwrap();
    assert!(outcome.results.iter().any(|r| r.doc == restricted));

    // Fetching enforces the rights at the owning peer.
    assert!(matches!(
        net.fetch_document(restricted, &Credentials::anonymous()),
        FetchOutcome::Denied
    ));
    assert!(matches!(
        net.fetch_document(restricted, &Credentials::basic("cfo", "wrong")),
        FetchOutcome::Denied
    ));
    assert!(matches!(
        net.fetch_document(restricted, &Credentials::basic("cfo", "numbers")),
        FetchOutcome::Full(_)
    ));
    assert!(matches!(
        net.fetch_document(private, &Credentials::basic("cfo", "numbers")),
        FetchOutcome::Metadata { .. }
    ));
}

#[test]
fn two_step_refinement_reports_owner_scores_and_snippets() {
    let mut net = base_network(4);
    net.build_index();
    let query = "truncated posting lists bandwidth";
    let outcome = net
        .execute(&QueryRequest::new(query).top_k(5).with_refinement())
        .unwrap();
    assert!(!outcome.results.is_empty());
    let refined = &outcome.refined;
    assert_eq!(refined.len(), outcome.results.len().min(5));
    for r in refined {
        assert!(r.global_score > 0.0);
        assert!(!r.url.is_empty());
        assert!(!r.snippet.is_empty());
    }
    // At least the top result's owner also matches the query locally.
    assert!(refined[0].local_score.is_some());
    // Refinement generated retrieval traffic (query forwarding).
    assert!(net.traffic().category(TrafficCategory::Retrieval).messages > 0);
}

#[test]
fn unpublishing_documents_removes_them_from_local_search() {
    let mut net = base_network(3);
    let extra = net
        .peer_mut(0)
        .publish("Ephemeral note", "very temporary searchable content");
    assert!(!net
        .peer(0)
        .local_search("ephemeral temporary", 5)
        .is_empty());
    assert!(net.peer_mut(0).unpublish(extra));
    assert!(net
        .peer(0)
        .local_search("ephemeral temporary", 5)
        .is_empty());
}

#[test]
fn peers_with_different_analyzers_can_coexist() {
    // The heterogeneity story: a peer may run its own analysis pipeline locally; the
    // digest it exports is built with that pipeline.
    let plain = alvisp2p::textindex::Analyzer::plain();
    let mut peer = alvisp2p::core::AlvisPeer::with_analyzer(7, plain);
    peer.publish("Stop words preserved", "the and of are kept by this engine");
    let digest = peer.export_digest();
    assert!(digest.documents[0].terms.iter().any(|t| t.term == "the"));

    // A default peer would have removed them.
    let mut standard = alvisp2p::core::AlvisPeer::new(8);
    standard.publish(
        "Stop words removed",
        "the and of are dropped by this engine",
    );
    let digest2 = standard.export_digest();
    assert!(digest2.documents[0].terms.iter().all(|t| t.term != "the"));
}
