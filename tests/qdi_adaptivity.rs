//! Integration tests for Query-Driven Indexing: popularity-driven activation,
//! bandwidth reduction after warm-up, and eviction under popularity drift.

use alvisp2p::prelude::*;

fn workload(
    seed: u64,
    queries: usize,
    drift: bool,
) -> (alvisp2p::textindex::SyntheticCorpus, Vec<String>) {
    let corpus = CorpusGenerator::new(
        CorpusConfig {
            num_docs: 250,
            vocab_size: 700,
            num_topics: 8,
            topic_vocab: 40,
            doc_len_mean: 60,
            doc_len_spread: 30,
            ..Default::default()
        },
        seed,
    )
    .generate();
    let log = QueryLogGenerator::new(
        QueryLogConfig {
            num_queries: queries,
            distinct_queries: 20,
            popularity_drift: drift,
            ..Default::default()
        },
        seed,
    )
    .generate(&corpus);
    let texts = log.queries.iter().map(|q| q.text.clone()).collect();
    (corpus, texts)
}

fn qdi_network(corpus: &alvisp2p::textindex::SyntheticCorpus, config: QdiConfig) -> AlvisNetwork {
    AlvisNetwork::builder()
        .peers(8)
        .strategy(Qdi::new(config))
        .seed(5)
        .corpus(corpus)
        .build_indexed()
        .expect("valid configuration")
}

#[test]
fn repeated_popular_queries_trigger_on_demand_activation() {
    let (corpus, queries) = workload(71, 120, false);
    let mut net = qdi_network(
        &corpus,
        QdiConfig {
            activation_threshold: 3,
            truncation_k: 15,
            ..Default::default()
        },
    );
    assert_eq!(net.qdi_report().activations, 0);
    let batch: Vec<QueryRequest> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| QueryRequest::new(q.clone()).from_peer(i % 8))
        .collect();
    net.query_batch(&batch).unwrap();
    let report = net.qdi_report();
    assert!(report.activations > 0, "no key was activated: {report:?}");
    assert!(report.acquisition_bytes > 0);
    // The activated keys are multi-term combinations.
    let multi = net
        .global_index()
        .activated_key_list()
        .iter()
        .filter(|k| k.len() > 1)
        .count();
    assert!(multi > 0);
    assert!(
        report.multi_term_hits > 0,
        "activated keys were never hit: {report:?}"
    );
}

#[test]
fn warmed_qdi_uses_fewer_probes_for_popular_queries() {
    let (corpus, queries) = workload(81, 100, false);
    // Activation regardless of redundancy: the most popular query can pair a
    // rare term (whose complete single-term list would make the combination
    // redundant) with a common one, and this test is about the warm-up effect,
    // not the redundancy filter.
    let mut net = qdi_network(
        &corpus,
        QdiConfig {
            activation_threshold: 2,
            truncation_k: 15,
            require_nonredundant: false,
            ..Default::default()
        },
    );
    // The most popular query is the most frequent text in the log.
    let mut counts = std::collections::HashMap::new();
    for q in &queries {
        *counts.entry(q.clone()).or_insert(0usize) += 1;
    }
    let popular = counts
        .iter()
        .max_by_key(|(_, c)| **c)
        .map(|(q, _)| q.clone())
        .unwrap();

    let cold = net.execute(&QueryRequest::new(popular.clone())).unwrap();
    // Warm up on the whole stream.
    for (i, q) in queries.iter().enumerate() {
        net.execute(&QueryRequest::new(q.clone()).from_peer(i % 8))
            .unwrap();
    }
    let warm = net
        .execute(&QueryRequest::new(popular.clone()).from_peer(1))
        .unwrap();
    // After warm-up the popular combination is indexed: the query needs at most as
    // many probes (typically fewer, because the full-query key now prunes the
    // lattice) and still returns results.
    assert!(warm.trace.probes <= cold.trace.probes);
    assert!(!warm.results.is_empty());
    let multi_found = warm.trace.found_keys().iter().any(|k| k.len() > 1);
    assert!(
        multi_found,
        "popular multi-term key still not indexed after warm-up"
    );
}

#[test]
fn popularity_drift_causes_evictions_and_new_activations() {
    let (corpus, queries) = workload(91, 300, true);
    let mut net = qdi_network(
        &corpus,
        QdiConfig {
            activation_threshold: 2,
            truncation_k: 15,
            obsolescence_window: 60,
            eviction_period: 20,
            ..Default::default()
        },
    );
    let mut activations_at_half = 0;
    for (i, q) in queries.iter().enumerate() {
        net.execute(&QueryRequest::new(q.clone()).from_peer(i % 8))
            .unwrap();
        if i == queries.len() / 2 {
            activations_at_half = net.qdi_report().activations;
        }
    }
    let report = net.qdi_report();
    assert!(
        activations_at_half > 0,
        "nothing activated before the drift"
    );
    assert!(
        report.activations > activations_at_half,
        "no new activations after the drift: {report:?}"
    );
    assert!(
        report.evictions > 0,
        "no obsolete key was evicted: {report:?}"
    );
}

#[test]
fn hdk_network_never_activates_keys_at_query_time() {
    let (corpus, queries) = workload(99, 60, false);
    let mut net = AlvisNetwork::builder()
        .peers(8)
        .strategy(Hdk::new(HdkConfig {
            df_max: 30,
            truncation_k: 30,
            ..Default::default()
        }))
        .seed(5)
        .corpus(&corpus)
        .build_indexed()
        .expect("valid configuration");
    let keys_before = net.global_index().activated_keys();
    for (i, q) in queries.iter().enumerate() {
        net.execute(&QueryRequest::new(q.clone()).from_peer(i % 8))
            .unwrap();
    }
    assert_eq!(net.qdi_report().activations, 0);
    assert_eq!(net.global_index().activated_keys(), keys_before);
}
