//! Routing-table construction.
//!
//! Two strategies are implemented:
//!
//! * [`RoutingStrategy::HopSpace`] — the skew-tolerant scheme of Klemm et al.
//!   ("On Routing in Distributed Hash Tables", P2P 2007) used by AlvisP2P: a peer's
//!   i-th routing entry points to the peer **half-way around the remaining peer
//!   population** (rank + n/2, rank + n/4, …), not half-way around the identifier
//!   space. Because entries are defined on ranks ("hop space"), every hop halves the
//!   number of remaining peers and lookups take O(log n) hops *regardless of how
//!   skewed the peer identifiers are*.
//!
//! * [`RoutingStrategy::Finger`] — the **identifier-space partitioning** baseline:
//!   a table of the same size (⌈log₂ n⌉ entries) whose i-th entry points at
//!   `successor(own_id + ring/2^(i+1))`, i.e. the ring is halved in *identifier space*
//!   rather than in peer population (this is the Chord-style construction compared
//!   against in Klemm et al.). Under a uniform identifier distribution the two schemes
//!   coincide and both give O(log n) hops; under skew the identifier-space entries
//!   collapse onto few distinct peers, the finest entry still skips past many peers in
//!   dense regions, and lookups degenerate towards successor walking. It is kept as
//!   the baseline for experiment E5.
//!
//! In the deployed system routing entries are discovered by sampling and exchange
//! during stabilisation; the simulator constructs the converged tables directly from
//! the membership view, which is the state those protocols converge to.

use crate::id::RingId;
use crate::ring::Ring;
use serde::{Deserialize, Serialize};

/// Which routing-table construction to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RoutingStrategy {
    /// Skew-tolerant hop-space routing (AlvisP2P's choice).
    HopSpace,
    /// Chord-style finger tables (baseline).
    Finger,
}

impl RoutingStrategy {
    /// A short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingStrategy::HopSpace => "hop-space",
            RoutingStrategy::Finger => "finger",
        }
    }
}

/// A single routing entry: the identifier and peer index of a known remote peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RoutingEntry {
    /// Ring identifier of the remote peer.
    pub id: RingId,
    /// Index of the remote peer in the DHT's peer table.
    pub peer_index: usize,
}

/// A peer's routing state: long-range entries plus a short successor list.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RoutingTable {
    /// Long-range entries (O(log n) of them).
    pub entries: Vec<RoutingEntry>,
    /// The next few peers clockwise; guarantees progress and fault tolerance.
    pub successors: Vec<RoutingEntry>,
}

impl RoutingTable {
    /// Total number of distinct remote peers this table references.
    pub fn size(&self) -> usize {
        let mut all: Vec<usize> = self
            .entries
            .iter()
            .chain(self.successors.iter())
            .map(|e| e.peer_index)
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }

    /// All candidate next hops (entries followed by successors).
    pub fn candidates(&self) -> impl Iterator<Item = &RoutingEntry> {
        self.entries.iter().chain(self.successors.iter())
    }
}

/// Default number of successors every peer keeps (fault tolerance and guaranteed
/// progress). Configurable per overlay via
/// [`crate::network::DhtConfig::successor_list_len`], e.g. to co-tune it with the
/// replication factor of [`crate::replica::HotKeyReplication`].
pub const SUCCESSOR_LIST_LEN: usize = 4;

/// Builds the routing table for the peer with identifier `own_id` according to
/// `strategy`, given the current ring membership, with the default successor-list
/// length of [`SUCCESSOR_LIST_LEN`].
///
/// Returns an empty table if the peer is not a ring member or is the only member.
pub fn build_routing_table(own_id: RingId, ring: &Ring, strategy: RoutingStrategy) -> RoutingTable {
    build_routing_table_with(own_id, ring, strategy, SUCCESSOR_LIST_LEN)
}

/// Like [`build_routing_table`] but with an explicit successor-list length.
pub fn build_routing_table_with(
    own_id: RingId,
    ring: &Ring,
    strategy: RoutingStrategy,
    successor_list_len: usize,
) -> RoutingTable {
    let Some(rank) = ring.rank_of(own_id) else {
        return RoutingTable::default();
    };
    let n = ring.len();
    if n <= 1 {
        return RoutingTable::default();
    }

    let mut successors = Vec::new();
    for step in 1..=successor_list_len.min(n - 1) {
        let (id, peer_index) = ring.at_rank(rank + step);
        successors.push(RoutingEntry { id, peer_index });
    }

    let entries = match strategy {
        RoutingStrategy::HopSpace => build_hopspace_entries(rank, ring),
        RoutingStrategy::Finger => build_finger_entries(own_id, ring),
    };

    RoutingTable {
        entries,
        successors,
    }
}

/// Hop-space entries: peers at ranks `rank + n/2`, `rank + n/4`, … `rank + 1`.
fn build_hopspace_entries(rank: usize, ring: &Ring) -> Vec<RoutingEntry> {
    let n = ring.len();
    let mut entries = Vec::new();
    let mut span = n / 2;
    while span >= 1 {
        let (id, peer_index) = ring.at_rank(rank + span);
        if peer_index != ring.at_rank(rank).1 {
            entries.push(RoutingEntry { id, peer_index });
        }
        if span == 1 {
            break;
        }
        span /= 2;
    }
    dedup_entries(entries)
}

/// Identifier-space entries: `successor(own_id + ring/2^(i+1))` for
/// `i = 0..⌈log₂ n⌉`, i.e. a table of the same size as the hop-space table but whose
/// targets halve the *identifier space* instead of the peer population.
fn build_finger_entries(own_id: RingId, ring: &Ring) -> Vec<RoutingEntry> {
    let n = ring.len();
    let levels = (usize::BITS - (n - 1).leading_zeros()).max(1); // ceil(log2 n)
    let mut entries = Vec::new();
    let mut span = u64::MAX / 2;
    for _ in 0..levels {
        let target = RingId(own_id.0.wrapping_add(span).wrapping_add(1));
        if let Some((id, peer_index)) = ring.successor_of_key(target) {
            if id != own_id {
                entries.push(RoutingEntry { id, peer_index });
            }
        }
        span /= 2;
        if span == 0 {
            break;
        }
    }
    dedup_entries(entries)
}

fn dedup_entries(mut entries: Vec<RoutingEntry>) -> Vec<RoutingEntry> {
    entries.sort_by_key(|e| e.id);
    entries.dedup_by_key(|e| e.peer_index);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_ring(n: usize) -> Ring {
        // Peers evenly spaced around the ring.
        Ring::from_members((0..n).map(|i| {
            let id = RingId(((i as u128 * u64::MAX as u128) / n as u128) as u64);
            (id, i)
        }))
    }

    fn skewed_ring(n: usize) -> Ring {
        // All peers crowded into the first 1/1024th of the identifier space.
        Ring::from_members((0..n).map(|i| {
            let id = RingId((i as u64) * (u64::MAX / 1024 / n as u64).max(1));
            (id, i)
        }))
    }

    #[test]
    fn table_is_logarithmic_for_hopspace() {
        for n in [16usize, 64, 256, 1024] {
            let ring = uniform_ring(n);
            let (own, _) = ring.at_rank(0);
            let t = build_routing_table(own, &ring, RoutingStrategy::HopSpace);
            let log2n = (n as f64).log2();
            assert!(
                t.entries.len() as f64 <= log2n + 1.0,
                "n={n}: {} entries",
                t.entries.len()
            );
            assert!(t.entries.len() as f64 >= log2n - 1.0);
        }
    }

    #[test]
    fn hopspace_entries_halve_the_population() {
        let n = 64;
        let ring = uniform_ring(n);
        let (own, _) = ring.at_rank(10);
        let t = build_routing_table(own, &ring, RoutingStrategy::HopSpace);
        let ranks: Vec<usize> = t
            .entries
            .iter()
            .map(|e| ring.rank_of(e.id).unwrap())
            .collect();
        // Expect ranks 10+32, 10+16, ..., 10+1 (mod 64), i.e. 42, 26, 18, 14, 12, 11.
        let expected: Vec<usize> = vec![42, 26, 18, 14, 12, 11];
        let mut sorted_ranks = ranks.clone();
        sorted_ranks.sort_unstable();
        let mut sorted_expected = expected.clone();
        sorted_expected.sort_unstable();
        assert_eq!(sorted_ranks, sorted_expected);
    }

    #[test]
    fn hopspace_table_size_independent_of_skew() {
        let n = 512;
        let uni = uniform_ring(n);
        let skew = skewed_ring(n);
        let t_uni = build_routing_table(uni.at_rank(3).0, &uni, RoutingStrategy::HopSpace);
        let t_skew = build_routing_table(skew.at_rank(3).0, &skew, RoutingStrategy::HopSpace);
        assert_eq!(t_uni.entries.len(), t_skew.entries.len());
    }

    #[test]
    fn finger_table_collapses_under_skew() {
        let n = 512;
        let uni = uniform_ring(n);
        let skew = skewed_ring(n);
        let t_uni = build_routing_table(uni.at_rank(3).0, &uni, RoutingStrategy::Finger);
        let t_skew = build_routing_table(skew.at_rank(3).0, &skew, RoutingStrategy::Finger);
        // Under skew most fingers point past the crowded region and collapse onto few
        // distinct peers; the healthy table has noticeably more distinct entries.
        assert!(
            t_skew.entries.len() < t_uni.entries.len(),
            "skewed {} vs uniform {}",
            t_skew.entries.len(),
            t_uni.entries.len()
        );
    }

    #[test]
    fn successor_list_has_expected_length_and_order() {
        let ring = uniform_ring(32);
        let (own, _) = ring.at_rank(31);
        let t = build_routing_table(own, &ring, RoutingStrategy::HopSpace);
        assert_eq!(t.successors.len(), SUCCESSOR_LIST_LEN);
        // First successor is the next peer clockwise (rank 0, wrapping).
        assert_eq!(t.successors[0].id, ring.at_rank(0).0);
    }

    #[test]
    fn successor_list_length_is_configurable() {
        let ring = uniform_ring(32);
        let (own, _) = ring.at_rank(5);
        for len in [1usize, 2, 6, 31, 100] {
            let t = build_routing_table_with(own, &ring, RoutingStrategy::HopSpace, len);
            assert_eq!(t.successors.len(), len.min(31), "requested {len}");
            // Successors stay in clockwise rank order regardless of length.
            for (step, e) in t.successors.iter().enumerate() {
                assert_eq!(e.id, ring.at_rank(5 + step + 1).0);
            }
        }
    }

    #[test]
    fn tiny_rings_produce_small_tables() {
        let ring = uniform_ring(1);
        let t = build_routing_table(ring.at_rank(0).0, &ring, RoutingStrategy::HopSpace);
        assert!(t.entries.is_empty());
        assert!(t.successors.is_empty());

        let ring2 = uniform_ring(2);
        let t2 = build_routing_table(ring2.at_rank(0).0, &ring2, RoutingStrategy::Finger);
        assert_eq!(t2.successors.len(), 1);
        assert!(t2.size() >= 1);
    }

    #[test]
    fn non_member_gets_empty_table() {
        let ring = uniform_ring(8);
        let t = build_routing_table(RingId(12345), &ring, RoutingStrategy::HopSpace);
        assert!(t.entries.is_empty() && t.successors.is_empty());
    }

    #[test]
    fn entries_never_point_at_self() {
        for strategy in [RoutingStrategy::HopSpace, RoutingStrategy::Finger] {
            let ring = uniform_ring(64);
            for rank in [0usize, 7, 63] {
                let (own, own_idx) = ring.at_rank(rank);
                let t = build_routing_table(own, &ring, strategy);
                assert!(
                    t.candidates().all(|e| e.peer_index != own_idx),
                    "{strategy:?} rank {rank} points at itself"
                );
            }
        }
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(RoutingStrategy::HopSpace.label(), "hop-space");
        assert_eq!(RoutingStrategy::Finger.label(), "finger");
    }
}
