//! Ring membership: the sorted view of all live peers.
//!
//! The [`Ring`] maps ring identifiers to peer indices and answers the structural
//! questions the overlay needs: *who is responsible for this key*, *who succeeds /
//! precedes this peer*, *what is a peer's rank*. In the real system this knowledge is
//! distributed and maintained by stabilisation; the simulator keeps it in one place
//! but all routing decisions still only use the O(log n) entries a peer would know.

use crate::id::RingId;

/// A sorted view of live peer identifiers.
///
/// `Ring` stores `(identifier, peer_index)` pairs sorted by identifier. The
/// `peer_index` values refer to the owning [`crate::Dht`]'s peer vector.
#[derive(Clone, Debug, Default)]
pub struct Ring {
    /// Sorted by `RingId`.
    members: Vec<(RingId, usize)>,
}

impl Ring {
    /// Creates an empty ring.
    pub fn new() -> Self {
        Ring {
            members: Vec::new(),
        }
    }

    /// Builds a ring from an iterator of `(identifier, peer_index)` pairs.
    pub fn from_members(members: impl IntoIterator<Item = (RingId, usize)>) -> Self {
        let mut members: Vec<(RingId, usize)> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup_by_key(|(id, _)| *id);
        Ring { members }
    }

    /// Number of live peers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The sorted member list.
    pub fn members(&self) -> &[(RingId, usize)] {
        &self.members
    }

    /// Inserts a peer. Returns `false` if the identifier was already present.
    pub fn insert(&mut self, id: RingId, peer_index: usize) -> bool {
        match self.members.binary_search_by_key(&id, |(i, _)| *i) {
            Ok(_) => false,
            Err(pos) => {
                self.members.insert(pos, (id, peer_index));
                true
            }
        }
    }

    /// Removes the peer with the given identifier. Returns `true` if it was present.
    pub fn remove(&mut self, id: RingId) -> bool {
        match self.members.binary_search_by_key(&id, |(i, _)| *i) {
            Ok(pos) => {
                self.members.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The rank (0-based position in identifier order) of the peer with identifier
    /// `id`, or `None` if not a member.
    pub fn rank_of(&self, id: RingId) -> Option<usize> {
        self.members.binary_search_by_key(&id, |(i, _)| *i).ok()
    }

    /// The member at the given rank (wrapping around the ring).
    pub fn at_rank(&self, rank: usize) -> (RingId, usize) {
        assert!(!self.members.is_empty(), "ring is empty");
        self.members[rank % self.members.len()]
    }

    /// The peer responsible for `key`: the first peer whose identifier is `>= key`
    /// (wrapping to the smallest identifier).
    pub fn successor_of_key(&self, key: RingId) -> Option<(RingId, usize)> {
        if self.members.is_empty() {
            return None;
        }
        let pos = match self.members.binary_search_by_key(&key, |(i, _)| *i) {
            Ok(pos) => pos,
            Err(pos) => pos % self.members.len(),
        };
        Some(self.members[pos % self.members.len()])
    }

    /// The peer immediately following the peer with identifier `id` on the ring.
    pub fn successor_of_peer(&self, id: RingId) -> Option<(RingId, usize)> {
        let rank = self.rank_of(id)?;
        Some(self.at_rank(rank + 1))
    }

    /// The peer immediately preceding the peer with identifier `id` on the ring.
    pub fn predecessor_of_peer(&self, id: RingId) -> Option<(RingId, usize)> {
        let rank = self.rank_of(id)?;
        Some(self.at_rank(rank + self.members.len() - 1))
    }

    /// Whether the peer with identifier `peer` is responsible for `key`, i.e. `key`
    /// lies in `(predecessor(peer), peer]`.
    pub fn is_responsible(&self, peer: RingId, key: RingId) -> bool {
        match self.predecessor_of_peer(peer) {
            Some((pred, _)) => {
                if self.members.len() == 1 {
                    true
                } else {
                    key.in_interval_open_closed(pred, peer)
                }
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(ids: &[u64]) -> Ring {
        Ring::from_members(ids.iter().enumerate().map(|(i, id)| (RingId(*id), i)))
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let r = Ring::from_members(vec![(RingId(30), 0), (RingId(10), 1), (RingId(30), 2)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.members()[0].0, RingId(10));
        assert_eq!(r.members()[1].0, RingId(30));
    }

    #[test]
    fn insert_and_remove() {
        let mut r = Ring::new();
        assert!(r.is_empty());
        assert!(r.insert(RingId(5), 0));
        assert!(!r.insert(RingId(5), 1));
        assert!(r.insert(RingId(1), 1));
        assert_eq!(r.len(), 2);
        assert!(r.remove(RingId(5)));
        assert!(!r.remove(RingId(5)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn successor_of_key_wraps() {
        let r = ring_of(&[100, 200, 300]);
        assert_eq!(r.successor_of_key(RingId(150)).unwrap().0, RingId(200));
        assert_eq!(r.successor_of_key(RingId(200)).unwrap().0, RingId(200));
        assert_eq!(r.successor_of_key(RingId(301)).unwrap().0, RingId(100));
        assert_eq!(r.successor_of_key(RingId(50)).unwrap().0, RingId(100));
        assert!(Ring::new().successor_of_key(RingId(1)).is_none());
    }

    #[test]
    fn peer_successor_and_predecessor() {
        let r = ring_of(&[100, 200, 300]);
        assert_eq!(r.successor_of_peer(RingId(100)).unwrap().0, RingId(200));
        assert_eq!(r.successor_of_peer(RingId(300)).unwrap().0, RingId(100));
        assert_eq!(r.predecessor_of_peer(RingId(100)).unwrap().0, RingId(300));
        assert_eq!(r.predecessor_of_peer(RingId(200)).unwrap().0, RingId(100));
        assert!(r.successor_of_peer(RingId(999)).is_none());
    }

    #[test]
    fn responsibility_covers_ring_exactly_once() {
        let r = ring_of(&[100, 200, 300]);
        for key in [0u64, 50, 100, 150, 200, 250, 300, 350, u64::MAX] {
            let key = RingId(key);
            let responsible: Vec<RingId> = r
                .members()
                .iter()
                .map(|(id, _)| *id)
                .filter(|peer| r.is_responsible(*peer, key))
                .collect();
            assert_eq!(
                responsible.len(),
                1,
                "key {key:?} responsible: {responsible:?}"
            );
            // And it matches successor_of_key.
            assert_eq!(responsible[0], r.successor_of_key(key).unwrap().0);
        }
    }

    #[test]
    fn single_peer_owns_everything() {
        let r = ring_of(&[42]);
        assert!(r.is_responsible(RingId(42), RingId(0)));
        assert!(r.is_responsible(RingId(42), RingId(u64::MAX)));
        assert!(r.is_responsible(RingId(42), RingId(42)));
    }

    #[test]
    fn rank_and_at_rank() {
        let r = ring_of(&[100, 200, 300]);
        assert_eq!(r.rank_of(RingId(200)), Some(1));
        assert_eq!(r.rank_of(RingId(150)), None);
        assert_eq!(r.at_rank(0).0, RingId(100));
        assert_eq!(r.at_rank(4).0, RingId(200)); // wraps
    }

    #[test]
    #[should_panic(expected = "ring is empty")]
    fn at_rank_empty_panics() {
        Ring::new().at_rank(0);
    }
}
