//! Per-peer overlay state.

use crate::id::RingId;
use crate::routing::RoutingTable;
use crate::storage::LocalStore;

/// The overlay-level state of a single peer: its position on the ring, its routing
/// table and the slice of the distributed index it is responsible for.
#[derive(Clone, Debug)]
pub struct Peer<V> {
    /// The peer's ring identifier.
    pub id: RingId,
    /// Whether the peer is currently part of the overlay.
    pub alive: bool,
    /// Long-range routing entries plus successor list.
    pub table: RoutingTable,
    /// The peer's slice of the global distributed index.
    pub store: LocalStore<V>,
    /// Replica copies of hot keys this peer holds for other peers' slices
    /// (managed by [`crate::replica`]; kept strictly separate from `store`, so
    /// the "primary value lives at the responsible peer" invariant is
    /// unaffected by replication).
    pub replica_store: LocalStore<V>,
    /// Number of lookup requests this peer has forwarded (load indicator).
    pub forwarded_lookups: u64,
    /// Number of storage requests (get/put/update) served by this peer.
    pub served_requests: u64,
}

impl<V> Peer<V> {
    /// Creates a live peer with the given identifier and an empty store.
    pub fn new(id: RingId) -> Self {
        Peer {
            id,
            alive: true,
            table: RoutingTable::default(),
            store: LocalStore::new(),
            replica_store: LocalStore::new(),
            forwarded_lookups: 0,
            served_requests: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_peer_is_alive_and_empty() {
        let p: Peer<u32> = Peer::new(RingId(42));
        assert!(p.alive);
        assert_eq!(p.id, RingId(42));
        assert!(p.store.is_empty());
        assert!(p.replica_store.is_empty());
        assert_eq!(p.forwarded_lookups, 0);
        assert_eq!(p.served_requests, 0);
        assert!(p.table.entries.is_empty());
    }
}
