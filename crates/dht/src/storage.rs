//! Per-peer local key/value store.
//!
//! Each peer stores the fraction of the global distributed index associated with the
//! ring identifiers it is responsible for. The store is typed (`V` is defined by the
//! layer above — in AlvisP2P it holds truncated posting lists, key statistics and
//! global ranking statistics) and reports its approximate in-memory footprint for the
//! storage-scalability experiment (E3).

use crate::id::RingId;
use alvisp2p_netsim::WireSize;
use std::collections::BTreeMap;

/// A peer's local slice of the distributed index.
#[derive(Clone, Debug)]
pub struct LocalStore<V> {
    entries: BTreeMap<RingId, V>,
}

impl<V> Default for LocalStore<V> {
    fn default() -> Self {
        LocalStore {
            entries: BTreeMap::new(),
        }
    }
}

impl<V> LocalStore<V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces the value stored under `key`, returning the old value.
    pub fn insert(&mut self, key: RingId, value: V) -> Option<V> {
        self.entries.insert(key, value)
    }

    /// Returns a reference to the value stored under `key`.
    pub fn get(&self, key: &RingId) -> Option<&V> {
        self.entries.get(key)
    }

    /// Returns a mutable reference to the value stored under `key`.
    pub fn get_mut(&mut self, key: &RingId) -> Option<&mut V> {
        self.entries.get_mut(key)
    }

    /// Applies `f` to the (possibly absent) entry under `key`; if `f` leaves `None`
    /// the entry is removed, otherwise it is (re-)inserted.
    pub fn upsert_with(&mut self, key: RingId, f: impl FnOnce(&mut Option<V>)) {
        let mut slot = self.entries.remove(&key);
        f(&mut slot);
        if let Some(v) = slot {
            self.entries.insert(key, v);
        }
    }

    /// Removes and returns the value stored under `key`.
    pub fn remove(&mut self, key: &RingId) -> Option<V> {
        self.entries.remove(key)
    }

    /// Whether the store holds a value for `key`.
    pub fn contains(&self, key: &RingId) -> bool {
        self.entries.contains_key(key)
    }

    /// Iterates over all `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&RingId, &V)> {
        self.entries.iter()
    }

    /// Removes and returns all entries whose key falls in the clockwise interval
    /// `(from, to]` — used when a joining peer takes over part of its successor's
    /// key range.
    pub fn split_off_interval(&mut self, from: RingId, to: RingId) -> Vec<(RingId, V)> {
        let keys: Vec<RingId> = self
            .entries
            .keys()
            .filter(|k| k.in_interval_open_closed(from, to))
            .copied()
            .collect();
        keys.into_iter()
            .map(|k| {
                let v = self.entries.remove(&k).expect("key listed above");
                (k, v)
            })
            .collect()
    }

    /// Drains the whole store (used when a peer leaves and hands its keys over).
    pub fn drain_all(&mut self) -> Vec<(RingId, V)> {
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

impl<V: WireSize> LocalStore<V> {
    /// Approximate storage footprint in bytes (keys + serialized values).
    pub fn storage_bytes(&self) -> usize {
        self.entries.values().map(|v| 8 + v.wire_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s: LocalStore<String> = LocalStore::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(RingId(1), "a".into()), None);
        assert_eq!(s.insert(RingId(1), "b".into()), Some("a".into()));
        assert_eq!(s.get(&RingId(1)).map(String::as_str), Some("b"));
        assert!(s.contains(&RingId(1)));
        assert_eq!(s.remove(&RingId(1)), Some("b".into()));
        assert!(!s.contains(&RingId(1)));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn upsert_with_creates_modifies_and_deletes() {
        let mut s: LocalStore<u64> = LocalStore::new();
        s.upsert_with(RingId(9), |slot| *slot = Some(1));
        assert_eq!(s.get(&RingId(9)), Some(&1));
        s.upsert_with(RingId(9), |slot| {
            *slot = slot.map(|v| v + 10);
        });
        assert_eq!(s.get(&RingId(9)), Some(&11));
        s.upsert_with(RingId(9), |slot| *slot = None);
        assert!(!s.contains(&RingId(9)));
    }

    #[test]
    fn split_off_interval_moves_only_that_range() {
        let mut s: LocalStore<u32> = LocalStore::new();
        for k in [10u64, 20, 30, 40, 50] {
            s.insert(RingId(k), k as u32);
        }
        let moved = s.split_off_interval(RingId(15), RingId(40));
        let moved_keys: Vec<u64> = moved.iter().map(|(k, _)| k.0).collect();
        assert_eq!(moved_keys, vec![20, 30, 40]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&RingId(10)) && s.contains(&RingId(50)));
    }

    #[test]
    fn split_off_wrapping_interval() {
        let mut s: LocalStore<u32> = LocalStore::new();
        for k in [5u64, 100, u64::MAX - 5] {
            s.insert(RingId(k), 0);
        }
        let moved = s.split_off_interval(RingId(u64::MAX - 10), RingId(10));
        let moved_keys: Vec<u64> = moved.iter().map(|(k, _)| k.0).collect();
        assert_eq!(moved_keys.len(), 2);
        assert!(moved_keys.contains(&5) && moved_keys.contains(&(u64::MAX - 5)));
    }

    #[test]
    fn drain_all_empties_the_store() {
        let mut s: LocalStore<u8> = LocalStore::new();
        s.insert(RingId(1), 1);
        s.insert(RingId(2), 2);
        let all = s.drain_all();
        assert_eq!(all.len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn storage_bytes_accounts_key_and_value() {
        let mut s: LocalStore<Vec<u32>> = LocalStore::new();
        s.insert(RingId(1), vec![1, 2, 3]);
        // key 8 + (vec header 4 + 3*4)
        assert_eq!(s.storage_bytes(), 8 + 16);
    }

    #[test]
    fn iteration_is_in_key_order() {
        let mut s: LocalStore<u8> = LocalStore::new();
        s.insert(RingId(30), 3);
        s.insert(RingId(10), 1);
        s.insert(RingId(20), 2);
        let keys: Vec<u64> = s.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![10, 20, 30]);
    }
}
