//! Congestion control for the DHT (Klemm, Le Boudec, Aberer — NCA 2006).
//!
//! The information-retrieval workload generates bursts of requests that concentrate on
//! the peers responsible for popular keys. Without flow control those peers' queues
//! overflow, requests are dropped, requesters retransmit, and the extra retransmissions
//! push the system into **congestion collapse**: offered load keeps rising while
//! delivered goodput falls. AlvisP2P integrates an end-to-end, per-destination
//! congestion controller into its DHT to prevent this.
//!
//! This module provides:
//!
//! * [`AimdController`] — the per-destination window (additive increase /
//!   multiplicative decrease) that limits outstanding requests;
//! * [`HotspotScenario`] — an event-driven workload (built on
//!   [`alvisp2p_netsim::Simulator`]) in which many client peers direct requests at a
//!   small set of hot-spot server peers, used by experiment **E6** to reproduce the
//!   goodput-vs-offered-load curves with and without congestion control.

use alvisp2p_netsim::{
    Context, LatencyModel, Node, NodeId, SimConfig, SimDuration, SimRng, SimTime, Simulator,
    TrafficCategory, WireSize, Zipf,
};
use std::collections::{HashMap, VecDeque};

/// Parameters of the per-destination AIMD window.
#[derive(Clone, Copy, Debug)]
pub struct CongestionConfig {
    /// Whether congestion control is active. When disabled the window is unbounded
    /// (the baseline that collapses under overload).
    pub enabled: bool,
    /// Initial window size in outstanding requests.
    pub initial_window: f64,
    /// Lower bound of the window.
    pub min_window: f64,
    /// Upper bound of the window.
    pub max_window: f64,
    /// Retransmission timeout.
    pub timeout: SimDuration,
    /// How many times a request is retransmitted before being given up on.
    pub max_retries: u32,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            enabled: true,
            initial_window: 4.0,
            min_window: 1.0,
            max_window: 256.0,
            timeout: SimDuration::from_millis(500),
            max_retries: 5,
        }
    }
}

impl CongestionConfig {
    /// The baseline configuration without congestion control.
    pub fn disabled() -> Self {
        CongestionConfig {
            enabled: false,
            ..Default::default()
        }
    }
}

/// Per-destination additive-increase / multiplicative-decrease window.
#[derive(Clone, Debug)]
pub struct AimdController {
    config: CongestionConfig,
    window: f64,
    in_flight: usize,
    acks: u64,
    losses: u64,
}

impl AimdController {
    /// Creates a controller with the given configuration.
    pub fn new(config: CongestionConfig) -> Self {
        AimdController {
            window: config.initial_window.max(config.min_window),
            config,
            in_flight: 0,
            acks: 0,
            losses: 0,
        }
    }

    /// Current window size (outstanding-request budget).
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Requests currently outstanding towards this destination.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Acknowledgements received.
    pub fn acks(&self) -> u64 {
        self.acks
    }

    /// Losses (timeouts) observed.
    pub fn losses(&self) -> u64 {
        self.losses
    }

    /// Whether a new request may be sent to this destination right now.
    pub fn can_send(&self) -> bool {
        if !self.config.enabled {
            return true;
        }
        (self.in_flight as f64) < self.window.floor().max(self.config.min_window)
    }

    /// Records that a request was sent.
    pub fn on_send(&mut self) {
        self.in_flight += 1;
    }

    /// Records a successful response: additive increase (one packet per round trip).
    pub fn on_ack(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.acks += 1;
        if self.config.enabled {
            self.window = (self.window + 1.0 / self.window.max(1.0)).min(self.config.max_window);
        }
    }

    /// Records a loss (timeout): multiplicative decrease.
    pub fn on_timeout(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.losses += 1;
        if self.config.enabled {
            self.window = (self.window / 2.0).max(self.config.min_window);
        }
    }
}

// ---------------------------------------------------------------------------
// Hot-spot workload (experiment E6)
// ---------------------------------------------------------------------------

/// Message exchanged in the hot-spot workload.
#[derive(Clone, Debug)]
pub enum CongestionMsg {
    /// A key request directed at a (hot-spot) server peer.
    Request {
        /// Unique request identifier (per client).
        id: u64,
    },
    /// The server's answer, carrying a posting-list-sized payload.
    Response {
        /// Identifier of the request being answered.
        id: u64,
        /// Size of the simulated payload in bytes.
        payload: u32,
    },
}

impl WireSize for CongestionMsg {
    fn wire_size(&self) -> usize {
        match self {
            CongestionMsg::Request { .. } => 48,
            CongestionMsg::Response { payload, .. } => 16 + *payload as usize,
        }
    }
}

const TIMER_GENERATE: u64 = 1;
const TIMER_CHECK_TIMEOUTS: u64 = 2;

/// Statistics produced by a client node.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Requests generated by the application.
    pub generated: u64,
    /// Requests completed (response received).
    pub completed: u64,
    /// Requests abandoned after exhausting retries.
    pub failed: u64,
    /// Retransmissions performed.
    pub retransmissions: u64,
}

struct Outstanding {
    dest: NodeId,
    sent_at: SimTime,
    retries: u32,
}

/// Node behaviour for the hot-spot workload: either a request-generating client or a
/// responding server.
pub enum CongestionNode {
    /// A client peer issuing requests to hot-spot servers.
    Client(Box<ClientState>),
    /// A server peer responsible for a popular key.
    Server {
        /// Number of requests served.
        served: u64,
        /// Response payload size in bytes.
        payload: u32,
    },
}

/// Internal state of a client node.
pub struct ClientState {
    config: CongestionConfig,
    servers: Vec<NodeId>,
    server_popularity: Zipf,
    /// New requests generated per generation tick.
    batch_per_tick: u64,
    tick: SimDuration,
    generate_until: SimTime,
    next_id: u64,
    pending: HashMap<NodeId, VecDeque<u64>>,
    outstanding: HashMap<u64, Outstanding>,
    controllers: HashMap<NodeId, AimdController>,
    stats: ClientStats,
}

impl ClientState {
    fn controller(&mut self, dest: NodeId) -> &mut AimdController {
        let config = self.config;
        self.controllers
            .entry(dest)
            .or_insert_with(|| AimdController::new(config))
    }

    fn try_send(&mut self, ctx: &mut Context<'_, CongestionMsg>) {
        let dests: Vec<NodeId> = self
            .pending
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(d, _)| *d)
            .collect();
        for dest in dests {
            loop {
                if !self.controller(dest).can_send() {
                    break;
                }
                let Some(id) = self.pending.get_mut(&dest).and_then(VecDeque::pop_front) else {
                    break;
                };
                self.controller(dest).on_send();
                self.outstanding.insert(
                    id,
                    Outstanding {
                        dest,
                        sent_at: ctx.now(),
                        retries: self.outstanding.get(&id).map(|o| o.retries).unwrap_or(0),
                    },
                );
                ctx.send_categorized(
                    dest,
                    CongestionMsg::Request { id },
                    TrafficCategory::Retrieval,
                );
            }
        }
    }

    fn generate(&mut self, rng: &mut SimRng, now: SimTime) {
        if now > self.generate_until {
            return;
        }
        for _ in 0..self.batch_per_tick {
            let rank = self.server_popularity.sample(rng);
            let dest = self.servers[rank % self.servers.len()];
            let id = self.next_id;
            self.next_id += 1;
            self.stats.generated += 1;
            self.pending.entry(dest).or_default().push_back(id);
        }
    }

    fn check_timeouts(&mut self, now: SimTime) {
        let timeout = self.config.timeout;
        let expired: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| now.saturating_since(o.sent_at) >= timeout)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            let Some(out) = self.outstanding.remove(&id) else {
                continue;
            };
            self.controller(out.dest).on_timeout();
            if out.retries < self.config.max_retries {
                self.stats.retransmissions += 1;
                // Requeue at the front with an incremented retry count; the retry count
                // is carried by re-inserting a placeholder into `outstanding` on send.
                self.pending.entry(out.dest).or_default().push_front(id);
                // Remember the retry count for when it is resent.
                self.outstanding.insert(
                    id,
                    Outstanding {
                        dest: out.dest,
                        sent_at: SimTime::MAX, // not actually in flight; replaced on send
                        retries: out.retries + 1,
                    },
                );
            } else {
                self.stats.failed += 1;
            }
        }
    }

    /// The client's statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }
}

impl Node for CongestionNode {
    type Msg = CongestionMsg;

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, CongestionMsg>,
        from: NodeId,
        msg: CongestionMsg,
    ) {
        match self {
            CongestionNode::Server { served, payload } => {
                if let CongestionMsg::Request { id } = msg {
                    *served += 1;
                    ctx.send_categorized(
                        from,
                        CongestionMsg::Response {
                            id,
                            payload: *payload,
                        },
                        TrafficCategory::Retrieval,
                    );
                }
            }
            CongestionNode::Client(state) => {
                if let CongestionMsg::Response { id, .. } = msg {
                    if let Some(out) = state.outstanding.remove(&id) {
                        if out.sent_at != SimTime::MAX {
                            state.controller(out.dest).on_ack();
                        }
                        state.stats.completed += 1;
                    }
                    state.try_send(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, CongestionMsg>, timer: u64) {
        if let CongestionNode::Client(state) = self {
            match timer {
                TIMER_GENERATE => {
                    let now = ctx.now();
                    state.generate(ctx.rng(), now);
                    state.try_send(ctx);
                    if ctx.now() <= state.generate_until {
                        let tick = state.tick;
                        ctx.schedule(tick, TIMER_GENERATE);
                    }
                }
                TIMER_CHECK_TIMEOUTS => {
                    state.check_timeouts(ctx.now());
                    state.try_send(ctx);
                    let tick = state.config.timeout;
                    // Keep checking for as long as requests may still be in flight.
                    if ctx.now() <= state.generate_until.saturating_add(tick.saturating_mul(4)) {
                        ctx.schedule(tick, TIMER_CHECK_TIMEOUTS);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Parameters of the hot-spot experiment.
#[derive(Clone, Debug)]
pub struct HotspotScenario {
    /// Number of client peers generating requests.
    pub clients: usize,
    /// Number of hot-spot server peers.
    pub servers: usize,
    /// Total offered load in requests per second (spread over all clients).
    pub offered_load: f64,
    /// How long clients keep generating load.
    pub duration: SimDuration,
    /// Zipf exponent of server popularity (how concentrated the hot spot is).
    pub hotspot_skew: f64,
    /// Congestion-control configuration used by the clients.
    pub congestion: CongestionConfig,
    /// Server processing time per request (bounds server throughput).
    pub service_time: SimDuration,
    /// Server inbound queue capacity.
    pub inbox_capacity: usize,
    /// Response payload size in bytes (a truncated posting list).
    pub response_payload: u32,
}

impl Default for HotspotScenario {
    fn default() -> Self {
        HotspotScenario {
            clients: 32,
            servers: 4,
            offered_load: 500.0,
            duration: SimDuration::from_secs(10),
            hotspot_skew: 1.0,
            congestion: CongestionConfig::default(),
            service_time: SimDuration::from_millis(2),
            inbox_capacity: 64,
            response_payload: 2_000,
        }
    }
}

/// Aggregate outcome of a hot-spot run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CongestionOutcome {
    /// Offered load in requests per second.
    pub offered_load: f64,
    /// Requests generated.
    pub generated: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests abandoned.
    pub failed: u64,
    /// Retransmissions sent.
    pub retransmissions: u64,
    /// Messages dropped by overloaded queues or the network.
    pub drops: u64,
    /// Completed requests per second of load-generation time.
    pub goodput: f64,
    /// Fraction of generated requests that completed.
    pub completion_rate: f64,
}

/// Runs the hot-spot workload and reports aggregate goodput statistics.
pub fn run_hotspot(scenario: &HotspotScenario, seed: u64) -> CongestionOutcome {
    let sim_config = SimConfig {
        latency: LatencyModel::Constant(SimDuration::from_millis(5)),
        inbox_capacity: scenario.inbox_capacity,
        service_time: scenario.service_time,
        ..SimConfig::default()
    };
    let mut sim: Simulator<CongestionNode> = Simulator::new(sim_config, seed);

    let mut servers = Vec::new();
    for _ in 0..scenario.servers {
        servers.push(sim.add_node(CongestionNode::Server {
            served: 0,
            payload: scenario.response_payload,
        }));
    }

    // Spread the offered load over clients; each client generates a batch every 100ms.
    let tick = SimDuration::from_millis(100);
    let per_client_per_sec = scenario.offered_load / scenario.clients.max(1) as f64;
    let batch = (per_client_per_sec * tick.as_secs_f64()).round().max(1.0) as u64;

    let mut clients = Vec::new();
    for _ in 0..scenario.clients {
        let state = ClientState {
            config: scenario.congestion,
            servers: servers.clone(),
            server_popularity: Zipf::new(scenario.servers.max(1), scenario.hotspot_skew),
            batch_per_tick: batch,
            tick,
            generate_until: SimTime::ZERO + scenario.duration,
            next_id: 0,
            pending: HashMap::new(),
            outstanding: HashMap::new(),
            controllers: HashMap::new(),
            stats: ClientStats::default(),
        };
        clients.push(sim.add_node(CongestionNode::Client(Box::new(state))));
    }

    for (i, c) in clients.iter().enumerate() {
        // Stagger generation starts to avoid perfectly synchronised bursts.
        sim.post_timer(*c, TIMER_GENERATE, SimTime::from_millis(i as u64 % 100));
        sim.post_timer(
            *c,
            TIMER_CHECK_TIMEOUTS,
            SimTime::from_millis(100 + i as u64 % 100),
        );
    }

    // Run for the generation period plus drain time.
    let horizon = SimTime::ZERO
        + scenario.duration
        + scenario
            .congestion
            .timeout
            .saturating_mul(scenario.congestion.max_retries as u64 + 2)
        + SimDuration::from_secs(2);
    sim.run_until(horizon);

    let mut outcome = CongestionOutcome {
        offered_load: scenario.offered_load,
        drops: sim.stats().dropped_messages(),
        ..Default::default()
    };
    for c in &clients {
        if let CongestionNode::Client(state) = sim.node(*c) {
            outcome.generated += state.stats.generated;
            outcome.completed += state.stats.completed;
            outcome.failed += state.stats.failed;
            outcome.retransmissions += state.stats.retransmissions;
        }
    }
    let secs = scenario.duration.as_secs_f64().max(1e-9);
    outcome.goodput = outcome.completed as f64 / secs;
    outcome.completion_rate = if outcome.generated > 0 {
        outcome.completed as f64 / outcome.generated as f64
    } else {
        0.0
    };
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aimd_window_grows_on_acks_and_halves_on_loss() {
        let mut c = AimdController::new(CongestionConfig::default());
        let w0 = c.window();
        for _ in 0..50 {
            c.on_send();
            c.on_ack();
        }
        assert!(c.window() > w0);
        let grown = c.window();
        c.on_send();
        c.on_timeout();
        assert!((c.window() - grown / 2.0).abs() < 1e-9);
        assert_eq!(c.acks(), 50);
        assert_eq!(c.losses(), 1);
    }

    #[test]
    fn aimd_window_respects_bounds() {
        let config = CongestionConfig {
            initial_window: 2.0,
            min_window: 1.0,
            max_window: 8.0,
            ..Default::default()
        };
        let mut c = AimdController::new(config);
        for _ in 0..10_000 {
            c.on_send();
            c.on_ack();
        }
        assert!(c.window() <= 8.0);
        for _ in 0..100 {
            c.on_send();
            c.on_timeout();
        }
        assert!(c.window() >= 1.0);
    }

    #[test]
    fn window_limits_in_flight_requests() {
        let config = CongestionConfig {
            initial_window: 3.0,
            ..Default::default()
        };
        let mut c = AimdController::new(config);
        let mut sent = 0;
        while c.can_send() {
            c.on_send();
            sent += 1;
            assert!(sent < 100, "window never closed");
        }
        assert_eq!(sent, 3);
        c.on_ack();
        assert!(c.can_send());
    }

    #[test]
    fn disabled_controller_never_blocks() {
        let mut c = AimdController::new(CongestionConfig::disabled());
        for _ in 0..1_000 {
            assert!(c.can_send());
            c.on_send();
        }
        let w = c.window();
        c.on_timeout();
        assert_eq!(c.window(), w, "disabled controller does not adapt");
    }

    #[test]
    fn hotspot_light_load_high_completion() {
        let scenario = HotspotScenario {
            clients: 8,
            servers: 4,
            offered_load: 100.0,
            duration: SimDuration::from_secs(5),
            ..Default::default()
        };
        let out = run_hotspot(&scenario, 1);
        assert!(out.generated > 0);
        assert!(
            out.completion_rate > 0.95,
            "light load should complete: {out:?}"
        );
    }

    #[test]
    fn congestion_control_beats_baseline_under_overload() {
        // Server capacity: 4 servers * 500 req/s = 2000 req/s. Offer 4x that.
        let base = HotspotScenario {
            clients: 32,
            servers: 4,
            offered_load: 8_000.0,
            duration: SimDuration::from_secs(3),
            hotspot_skew: 1.2,
            service_time: SimDuration::from_millis(2),
            inbox_capacity: 32,
            ..Default::default()
        };
        let with_cc = run_hotspot(
            &HotspotScenario {
                congestion: CongestionConfig::default(),
                ..base.clone()
            },
            7,
        );
        let without_cc = run_hotspot(
            &HotspotScenario {
                congestion: CongestionConfig::disabled(),
                ..base
            },
            7,
        );
        assert!(
            with_cc.completion_rate > without_cc.completion_rate,
            "with cc {:?} vs without {:?}",
            with_cc,
            without_cc
        );
        assert!(without_cc.drops > with_cc.drops);
    }
}
