//! # alvisp2p-dht
//!
//! The structured P2P overlay (**layer 2**) of the AlvisP2P reproduction:
//!
//! * a 64-bit identifier **ring** with successor-based key responsibility ([`ring`]);
//! * **skew-tolerant hop-space routing tables** (Klemm et al., P2P 2007) and a
//!   Chord-style finger-table baseline ([`routing`]);
//! * greedy O(log n) **lookup** ([`mod@lookup`]);
//! * routed, traffic-accounted **storage operations** over the overlay ([`network`]);
//! * peer **churn**: joins, graceful departures, abrupt failures ([`churn`]);
//! * the **congestion controller** that protects hot-spot peers from collapse
//!   ([`congestion`], Klemm et al., NCA 2006);
//! * **skew-aware replication** of hot keys onto ring successor sets, with
//!   load-tracked probe routing to the least-loaded replica ([`replica`]).
//!
//! The distributed IR layers (crate `alvisp2p-core`) sit directly on [`Dht`].
//!
//! ```
//! use alvisp2p_dht::{Dht, DhtConfig, RingId};
//! use alvisp2p_netsim::TrafficCategory;
//!
//! // A 64-peer overlay storing posting-list-like values.
//! let mut dht: Dht<Vec<u64>> = Dht::with_peers(DhtConfig::default(), 7, 64);
//! let key = RingId::hash_str("peer-to-peer retrieval");
//! dht.put(0, key, vec![1, 2, 3], TrafficCategory::Indexing).unwrap();
//! let (info, value) = dht.get(42, key, TrafficCategory::Retrieval).unwrap();
//! assert_eq!(value, Some(vec![1, 2, 3]));
//! assert!(info.hops <= 10); // O(log n) routing
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod congestion;
pub mod id;
pub mod lookup;
pub mod network;
pub mod node;
pub mod replica;
pub mod ring;
pub mod routing;
pub mod storage;

pub use congestion::{AimdController, CongestionConfig, CongestionOutcome, HotspotScenario};
pub use id::{RingHasher, RingId};
pub use lookup::{lookup, LookupResult};
pub use network::{Dht, DhtConfig, DhtError, IdDistribution, RouteInfo};
pub use node::Peer;
pub use replica::{
    CopyDigest, HotKeyReplication, LoadTracker, NoReplication, ReconvergeReport, RepairReport,
    ReplicaManager, ReplicaStats, ReplicationPolicy,
};
pub use ring::Ring;
pub use routing::{
    build_routing_table, build_routing_table_with, RoutingEntry, RoutingStrategy, RoutingTable,
    SUCCESSOR_LIST_LEN,
};
pub use storage::LocalStore;
