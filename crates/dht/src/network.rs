//! The simulated DHT: peer population, routed storage operations, traffic accounting.
//!
//! [`Dht`] is the synchronous facade the information-retrieval layers (L3/L4) are
//! built on. Every operation that would cross the network in the deployed system
//! (lookups, posting-list transfers, statistics queries) is routed hop-by-hop over the
//! peers' routing tables and accounted into a [`TrafficStats`] so the experiment
//! harness can report exactly how many messages and bytes each mechanism costs.

use crate::id::RingId;
use crate::lookup::{lookup, LookupResult};
use crate::node::Peer;
use crate::replica::{NoReplication, ReplicaManager, ReplicationPolicy};
use crate::ring::Ring;
use crate::routing::{build_routing_table_with, RoutingStrategy, SUCCESSOR_LIST_LEN};
use alvisp2p_netsim::wire::ENVELOPE_OVERHEAD;
use alvisp2p_netsim::{PowerLaw, SimRng, TrafficCategory, TrafficStats, WireSize};
use std::sync::Arc;

/// How peer identifiers are assigned when populating a network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IdDistribution {
    /// Identifiers drawn uniformly at random (hashed addresses).
    Uniform,
    /// Identifiers concentrated near one region of the ring; `alpha >= 1` controls the
    /// skew (1 = uniform, larger = more skewed). Models load-imbalanced / partitioned
    /// identifier assignment the hop-space routing is designed to tolerate.
    Skewed(f64),
    /// Identifiers evenly spaced around the ring (idealised balanced placement).
    Evenly,
}

/// Configuration of the simulated DHT.
#[derive(Clone, Debug)]
pub struct DhtConfig {
    /// Routing-table construction strategy.
    pub strategy: RoutingStrategy,
    /// Maximum hops a lookup may take before being declared failed.
    pub max_hops: usize,
    /// Size in bytes of a lookup/forward request message (key + originator address).
    pub lookup_request_bytes: usize,
    /// How peer identifiers are assigned.
    pub id_distribution: IdDistribution,
    /// Number of ring successors every peer keeps in its routing table
    /// (defaults to [`SUCCESSOR_LIST_LEN`]). Co-tune with the replication
    /// factor of the `replication` policy: replicas are placed on the
    /// primary's first successors, so a factor no larger than this length
    /// keeps every replica inside the routing tables' successor lists.
    pub successor_list_len: usize,
    /// Policy replicating hot stored keys onto their ring successor sets
    /// (defaults to [`NoReplication`], i.e. the pre-replication semantics).
    pub replication: Arc<dyn ReplicationPolicy>,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            strategy: RoutingStrategy::HopSpace,
            max_hops: 128,
            lookup_request_bytes: 48,
            id_distribution: IdDistribution::Uniform,
            successor_list_len: SUCCESSOR_LIST_LEN,
            replication: Arc::new(NoReplication),
        }
    }
}

/// Result of a routed operation: which peer is responsible and how many overlay hops
/// the request took.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteInfo {
    /// Index of the responsible peer.
    pub responsible: usize,
    /// Number of overlay hops taken by the request.
    pub hops: usize,
}

/// Error type for DHT operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DhtError {
    /// The originating peer does not exist or has left the overlay.
    BadOrigin,
    /// The lookup did not complete within the hop budget (stale routing state).
    LookupFailed,
    /// The overlay has no live peers.
    EmptyNetwork,
}

impl std::fmt::Display for DhtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhtError::BadOrigin => write!(f, "originating peer is not part of the overlay"),
            DhtError::LookupFailed => write!(f, "lookup exceeded the hop budget"),
            DhtError::EmptyNetwork => write!(f, "the overlay has no live peers"),
        }
    }
}

impl std::error::Error for DhtError {}

/// A simulated structured P2P overlay storing values of type `V`.
pub struct Dht<V> {
    peers: Vec<Peer<V>>,
    ring: Ring,
    config: DhtConfig,
    stats: TrafficStats,
    rng: SimRng,
    replicas: ReplicaManager,
}

impl<V: Clone + WireSize> Dht<V> {
    /// Creates an empty overlay.
    pub fn new(config: DhtConfig, seed: u64) -> Self {
        let replicas = ReplicaManager::new(Arc::clone(&config.replication));
        Dht {
            peers: Vec::new(),
            ring: Ring::new(),
            config,
            stats: TrafficStats::new(),
            rng: SimRng::new(seed).derive(0xD47),
            replicas,
        }
    }

    /// Creates an overlay populated with `n` peers whose identifiers follow the
    /// configured [`IdDistribution`], with routing tables already built.
    pub fn with_peers(config: DhtConfig, seed: u64, n: usize) -> Self {
        let mut dht = Self::new(config, seed);
        dht.populate(n);
        dht.rebuild_routing_tables();
        dht
    }

    /// Adds `n` peers according to the configured identifier distribution
    /// (routing tables must be rebuilt afterwards).
    pub fn populate(&mut self, n: usize) {
        for _ in 0..n {
            let id = self.draw_id(self.peers.len(), n);
            self.add_peer_with_id(id);
        }
    }

    fn draw_id(&mut self, index: usize, total: usize) -> RingId {
        match self.config.id_distribution {
            IdDistribution::Uniform => RingId(self.rng.gen_u64()),
            IdDistribution::Skewed(alpha) => {
                let p = PowerLaw::new(alpha.max(1.0));
                RingId::from_fraction(p.sample(&mut self.rng))
            }
            IdDistribution::Evenly => {
                let total = total.max(1);
                RingId(((index as u128 * u64::MAX as u128) / total as u128) as u64)
            }
        }
    }

    /// Adds a peer with an explicit identifier; returns its index, or `None` if the
    /// identifier is already taken.
    pub fn add_peer_with_id(&mut self, id: RingId) -> Option<usize> {
        if self.ring.rank_of(id).is_some() {
            return None;
        }
        let index = self.peers.len();
        self.peers.push(Peer::new(id));
        self.ring.insert(id, index);
        Some(index)
    }

    /// Rebuilds every live peer's routing table from the current membership
    /// (the converged state of the stabilisation protocol).
    pub fn rebuild_routing_tables(&mut self) {
        for i in 0..self.peers.len() {
            if self.peers[i].alive {
                self.peers[i].table = build_routing_table_with(
                    self.peers[i].id,
                    &self.ring,
                    self.config.strategy,
                    self.config.successor_list_len,
                );
            }
        }
    }

    /// Number of live peers.
    pub fn live_peers(&self) -> usize {
        self.peers.iter().filter(|p| p.alive).count()
    }

    /// Total number of peer slots ever allocated (including departed peers).
    pub fn peer_slots(&self) -> usize {
        self.peers.len()
    }

    /// Indices of all live peers.
    pub fn live_peer_indices(&self) -> Vec<usize> {
        (0..self.peers.len())
            .filter(|i| self.peers[*i].alive)
            .collect()
    }

    /// Immutable access to a peer.
    pub fn peer(&self, index: usize) -> &Peer<V> {
        &self.peers[index]
    }

    /// Mutable access to a peer (used by the IR layer to manage co-located state).
    pub fn peer_mut(&mut self, index: usize) -> &mut Peer<V> {
        &mut self.peers[index]
    }

    /// The current ring membership view.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The configuration this overlay was built with.
    pub fn config(&self) -> &DhtConfig {
        &self.config
    }

    /// The replication subsystem's bookkeeping: active policy, load tracker
    /// and replica directory (see [`crate::replica`]).
    pub fn replication(&self) -> &ReplicaManager {
        &self.replicas
    }

    pub(crate) fn replicas_mut(&mut self) -> &mut ReplicaManager {
        &mut self.replicas
    }

    /// Traffic statistics accumulated by routed operations.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets the traffic statistics (e.g. between the indexing and retrieval phases
    /// of an experiment).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Takes a snapshot of the statistics for later differencing.
    pub fn stats_snapshot(&self) -> TrafficStats {
        self.stats.clone()
    }

    /// A deterministic RNG derived from the overlay's seed.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Routes a request for `key` from peer `from`, charging one lookup-request
    /// message per hop to `category`.
    pub fn route(
        &mut self,
        from: usize,
        key: RingId,
        category: TrafficCategory,
    ) -> Result<RouteInfo, DhtError> {
        let result = self.raw_lookup(from, key)?;
        let hops = result.hops();
        for window in result.path.windows(2) {
            self.peers[window[0]].forwarded_lookups += 1;
            let _ = window;
        }
        let msg = self.config.lookup_request_bytes + ENVELOPE_OVERHEAD;
        for _ in 0..hops {
            self.stats.record(category, msg);
        }
        Ok(RouteInfo {
            responsible: result.responsible,
            hops,
        })
    }

    /// Like [`Dht::route`] but without recording any traffic — used by experiments
    /// that only measure hop counts (E5).
    pub fn probe_hops(&self, from: usize, key: RingId) -> Result<usize, DhtError> {
        self.raw_lookup(from, key).map(|r| r.hops())
    }

    /// Estimates the overlay hops a request for `key` from peer `from` would take,
    /// **without sending or charging anything**: the simulator replays the exact
    /// greedy lookup a routed request would perform (walking every en-route peer's
    /// routing table), so the estimate matches the subsequent request exactly as
    /// long as membership and routing state do not change in between. In a real
    /// deployment this would be an analytic `O(log n)` estimate computed at the
    /// querying peer. Query planners use it to cost-annotate probe schedules
    /// before spending any bandwidth.
    pub fn estimate_hops(&self, from: usize, key: RingId) -> Result<usize, DhtError> {
        self.probe_hops(from, key)
    }

    /// The peer currently responsible for `key` (no routing, no traffic) — the ground
    /// truth used in tests and for co-located state management.
    pub fn responsible_for(&self, key: RingId) -> Result<usize, DhtError> {
        self.ring
            .successor_of_key(key)
            .map(|(_, idx)| idx)
            .ok_or(DhtError::EmptyNetwork)
    }

    fn raw_lookup(&self, from: usize, key: RingId) -> Result<LookupResult, DhtError> {
        if self.ring.is_empty() {
            return Err(DhtError::EmptyNetwork);
        }
        if from >= self.peers.len() || !self.peers[from].alive {
            return Err(DhtError::BadOrigin);
        }
        lookup(&self.peers, &self.ring, from, key, self.config.max_hops)
            .ok_or(DhtError::LookupFailed)
    }

    // ------------------------------------------------------------------
    // Routed storage operations
    // ------------------------------------------------------------------

    /// Stores `value` under `key`, replacing any previous value. The transferred
    /// payload (the value itself) plus the routing messages are charged to `category`.
    pub fn put(
        &mut self,
        from: usize,
        key: RingId,
        value: V,
        category: TrafficCategory,
    ) -> Result<RouteInfo, DhtError> {
        let info = self.route(from, key, category)?;
        let payload = value.wire_size() + ENVELOPE_OVERHEAD;
        self.stats.record(category, payload);
        let peer = &mut self.peers[info.responsible];
        peer.served_requests += 1;
        peer.store.insert(key, value);
        Ok(info)
    }

    /// Fetches the value stored under `key`. The request is routed (charged per hop);
    /// the response carries the value (or a small not-found notice) directly back to
    /// the requester and is charged to `category` as well.
    pub fn get(
        &mut self,
        from: usize,
        key: RingId,
        category: TrafficCategory,
    ) -> Result<(RouteInfo, Option<V>), DhtError> {
        let info = self.route(from, key, category)?;
        let peer = &mut self.peers[info.responsible];
        peer.served_requests += 1;
        let value = peer.store.get(&key).cloned();
        let response_bytes = value.as_ref().map(|v| v.wire_size()).unwrap_or(1) + ENVELOPE_OVERHEAD;
        self.stats.record(category, response_bytes);
        Ok((info, value))
    }

    /// Applies an arbitrary modification to the entry stored under `key` at the
    /// responsible peer. `request_bytes` is the size of the update payload the
    /// requester ships (e.g. a delta posting list); it is charged to `category` on top
    /// of the routing messages.
    pub fn update(
        &mut self,
        from: usize,
        key: RingId,
        request_bytes: usize,
        category: TrafficCategory,
        f: impl FnOnce(&mut Option<V>),
    ) -> Result<RouteInfo, DhtError> {
        let info = self.route(from, key, category)?;
        self.stats
            .record(category, request_bytes + ENVELOPE_OVERHEAD);
        let peer = &mut self.peers[info.responsible];
        peer.served_requests += 1;
        peer.store.upsert_with(key, f);
        Ok(info)
    }

    /// Removes the value stored under `key`. Routing messages and a small removal
    /// request are charged to `category`.
    pub fn remove(
        &mut self,
        from: usize,
        key: RingId,
        category: TrafficCategory,
    ) -> Result<(RouteInfo, Option<V>), DhtError> {
        let info = self.route(from, key, category)?;
        self.stats.record(category, 16 + ENVELOPE_OVERHEAD);
        let peer = &mut self.peers[info.responsible];
        peer.served_requests += 1;
        Ok((info.clone(), peer.store.remove(&key)))
    }

    /// Reads a value without routing or traffic accounting (ground-truth inspection
    /// for tests and experiment verification).
    pub fn peek(&self, key: RingId) -> Option<&V> {
        let idx = self.responsible_for(key).ok()?;
        self.peers[idx].store.get(&key)
    }

    /// Records one externally-modelled message of `bytes` bytes in `category`.
    ///
    /// Higher layers use this for exchanges whose routing is already accounted (e.g.
    /// a posting-list response that travels directly back to the requester) or that
    /// are modelled analytically (e.g. the on-demand acquisition of a posting list).
    pub fn charge_external(&mut self, category: TrafficCategory, bytes: usize) {
        self.stats.record(category, bytes + ENVELOPE_OVERHEAD);
    }

    // ------------------------------------------------------------------
    // Crate-internal helpers (used by the churn module)
    // ------------------------------------------------------------------

    pub(crate) fn stats_record(&mut self, category: TrafficCategory, bytes: usize) {
        self.stats.record(category, bytes);
    }

    pub(crate) fn remove_from_ring(&mut self, id: RingId) {
        self.ring.remove(id);
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Per-live-peer storage load: `(keys stored, approximate bytes)`.
    pub fn storage_distribution(&self) -> Vec<(usize, usize)> {
        self.peers
            .iter()
            .filter(|p| p.alive)
            .map(|p| (p.store.len(), p.store.storage_bytes()))
            .collect()
    }

    /// Total number of keys stored across all live peers.
    pub fn total_keys(&self) -> usize {
        self.peers
            .iter()
            .filter(|p| p.alive)
            .map(|p| p.store.len())
            .sum()
    }

    /// Total approximate storage bytes across all live peers.
    pub fn total_storage_bytes(&self) -> usize {
        self.peers
            .iter()
            .filter(|p| p.alive)
            .map(|p| p.store.storage_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dht(n: usize) -> Dht<Vec<u32>> {
        Dht::with_peers(DhtConfig::default(), 42, n)
    }

    #[test]
    fn with_peers_builds_live_network() {
        let d = dht(32);
        assert_eq!(d.live_peers(), 32);
        assert_eq!(d.ring().len(), 32);
        assert!(d.peer(0).table.size() > 0);
    }

    #[test]
    fn put_then_get_round_trips() {
        let mut d = dht(16);
        let key = RingId::hash_str("database retrieval");
        d.put(0, key, vec![1, 2, 3], TrafficCategory::Indexing)
            .unwrap();
        let (_, value) = d.get(5, key, TrafficCategory::Retrieval).unwrap();
        assert_eq!(value, Some(vec![1, 2, 3]));
        // The value lives at the responsible peer.
        assert_eq!(d.peek(key), Some(&vec![1, 2, 3]));
        let responsible = d.responsible_for(key).unwrap();
        assert!(d.peer(responsible).store.contains(&key));
    }

    #[test]
    fn get_missing_returns_none_but_charges_traffic() {
        let mut d = dht(8);
        let before = d.stats().bytes_sent();
        let (_, v) = d
            .get(
                0,
                RingId::hash_str("nothing here"),
                TrafficCategory::Retrieval,
            )
            .unwrap();
        assert!(v.is_none());
        assert!(d.stats().bytes_sent() > before);
    }

    #[test]
    fn update_creates_and_modifies() {
        let mut d = dht(8);
        let key = RingId::hash_str("peer to peer");
        d.update(1, key, 12, TrafficCategory::Indexing, |slot| {
            slot.get_or_insert_with(Vec::new).push(7);
        })
        .unwrap();
        d.update(2, key, 12, TrafficCategory::Indexing, |slot| {
            slot.get_or_insert_with(Vec::new).push(9);
        })
        .unwrap();
        assert_eq!(d.peek(key), Some(&vec![7, 9]));
        // Deleting through update.
        d.update(3, key, 4, TrafficCategory::Indexing, |slot| *slot = None)
            .unwrap();
        assert!(d.peek(key).is_none());
    }

    #[test]
    fn remove_returns_previous_value() {
        let mut d = dht(8);
        let key = RingId::hash_str("x");
        d.put(0, key, vec![5], TrafficCategory::Indexing).unwrap();
        let (_, removed) = d.remove(4, key, TrafficCategory::Indexing).unwrap();
        assert_eq!(removed, Some(vec![5]));
        assert_eq!(d.total_keys(), 0);
    }

    #[test]
    fn traffic_is_attributed_to_categories() {
        let mut d = dht(32);
        let key = RingId::hash_str("category test");
        d.put(0, key, vec![0; 100], TrafficCategory::Indexing)
            .unwrap();
        d.get(1, key, TrafficCategory::Retrieval).unwrap();
        assert!(d.stats().category(TrafficCategory::Indexing).bytes > 0);
        assert!(d.stats().category(TrafficCategory::Retrieval).bytes >= 100);
        assert_eq!(d.stats().category(TrafficCategory::Overlay).messages, 0);
    }

    #[test]
    fn probe_hops_does_not_generate_traffic() {
        let d = dht(64);
        let hops = d.probe_hops(0, RingId::hash_str("probe")).unwrap();
        assert!(hops <= 10);
        assert_eq!(d.stats().messages_sent(), 0);
    }

    #[test]
    fn estimate_hops_is_free_and_matches_the_routed_request() {
        let mut d = dht(64);
        let keys: Vec<RingId> = (0..20)
            .map(|i| RingId::hash_str(&format!("estimate{i}")))
            .collect();
        let estimates: Vec<usize> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| d.estimate_hops(i % 64, *key).unwrap())
            .collect();
        assert_eq!(d.stats().messages_sent(), 0, "estimation must be free");
        for (i, (key, estimated)) in keys.iter().zip(&estimates).enumerate() {
            let info = d.route(i % 64, *key, TrafficCategory::Routing).unwrap();
            assert_eq!(*estimated, info.hops);
        }
        assert_eq!(
            d.estimate_hops(999, RingId(1)).unwrap_err(),
            DhtError::BadOrigin
        );
    }

    #[test]
    fn route_hops_are_logarithmic() {
        let mut d = dht(256);
        let mut max_hops = 0;
        for i in 0..100 {
            let key = RingId::hash_str(&format!("key{i}"));
            let info = d.route(i % 256, key, TrafficCategory::Routing).unwrap();
            max_hops = max_hops.max(info.hops);
        }
        assert!(max_hops <= 10, "max hops {max_hops}");
    }

    #[test]
    fn errors_for_bad_origin_and_empty_network() {
        let mut empty: Dht<Vec<u32>> = Dht::new(DhtConfig::default(), 1);
        assert_eq!(
            empty.route(0, RingId(1), TrafficCategory::Routing),
            Err(DhtError::EmptyNetwork)
        );
        let mut d = dht(4);
        assert_eq!(
            d.route(99, RingId(1), TrafficCategory::Routing),
            Err(DhtError::BadOrigin)
        );
    }

    #[test]
    fn skewed_and_even_distributions_build_valid_networks() {
        let skewed_cfg = DhtConfig {
            id_distribution: IdDistribution::Skewed(8.0),
            ..DhtConfig::default()
        };
        let mut d: Dht<Vec<u32>> = Dht::with_peers(skewed_cfg, 7, 64);
        let key = RingId::hash_str("skewed");
        d.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        assert_eq!(d.peek(key), Some(&vec![1]));

        let even_cfg = DhtConfig {
            id_distribution: IdDistribution::Evenly,
            ..DhtConfig::default()
        };
        let d2: Dht<Vec<u32>> = Dht::with_peers(even_cfg, 7, 64);
        assert_eq!(d2.live_peers(), 64);
    }

    #[test]
    fn storage_distribution_sums_match_totals() {
        let mut d = dht(16);
        for i in 0..200 {
            let key = RingId::hash_str(&format!("term{i}"));
            d.put(i % 16, key, vec![i as u32; 3], TrafficCategory::Indexing)
                .unwrap();
        }
        let dist = d.storage_distribution();
        let keys: usize = dist.iter().map(|(k, _)| k).sum();
        let bytes: usize = dist.iter().map(|(_, b)| b).sum();
        assert_eq!(keys, d.total_keys());
        assert_eq!(bytes, d.total_storage_bytes());
        assert_eq!(keys, 200);
    }

    #[test]
    fn successor_list_len_is_configurable_per_overlay() {
        let cfg = DhtConfig {
            successor_list_len: 7,
            ..DhtConfig::default()
        };
        let d: Dht<Vec<u32>> = Dht::with_peers(cfg, 9, 32);
        for i in 0..32 {
            assert_eq!(d.peer(i).table.successors.len(), 7);
        }
        // The default stays at SUCCESSOR_LIST_LEN.
        let d2 = dht(32);
        assert_eq!(d2.peer(0).table.successors.len(), SUCCESSOR_LIST_LEN);
    }

    #[test]
    fn duplicate_peer_id_rejected() {
        let mut d: Dht<Vec<u32>> = Dht::new(DhtConfig::default(), 3);
        assert!(d.add_peer_with_id(RingId(10)).is_some());
        assert!(d.add_peer_with_id(RingId(10)).is_none());
    }
}
