//! Peer churn: joins, graceful departures and abrupt failures.
//!
//! In AlvisP2P a peer joining the network takes over responsibility for part of its
//! successor's key range, and a peer leaving gracefully hands its keys to its
//! successor. Both transfers cross the network and are charged to
//! [`TrafficCategory::Overlay`]. Abrupt failures lose the failed peer's index slice
//! (the layer above re-publishes from the peers' local indexes, exactly as the paper's
//! design prescribes: documents always stay at their owner, the global index is a
//! cache that can be rebuilt).

use crate::id::RingId;
use crate::network::{Dht, DhtError};
use crate::node::Peer;
use alvisp2p_netsim::wire::ENVELOPE_OVERHEAD;
use alvisp2p_netsim::{TrafficCategory, WireSize};

impl<V: Clone + WireSize> Dht<V> {
    /// A new peer with identifier `id` joins the overlay.
    ///
    /// The keys in `(predecessor(id), id]` are transferred from the peer that was
    /// previously responsible for them; the transfer is charged to
    /// [`TrafficCategory::Overlay`]. Routing tables of all peers are refreshed
    /// (the converged effect of stabilisation).
    ///
    /// Returns the index of the new peer, or `None` if the identifier is taken.
    pub fn join(&mut self, id: RingId) -> Option<usize> {
        // Who is responsible for this range today (before the join)?
        let old_responsible = self.responsible_for(id).ok();
        let new_index = self.add_peer_with_id(id)?;

        if let Some(old_idx) = old_responsible {
            // The new peer takes over (pred(new), new] from its successor.
            let pred = self
                .ring()
                .predecessor_of_peer(id)
                .map(|(p, _)| p)
                .unwrap_or(id);
            let moved = {
                let old_peer = self.peer_mut(old_idx);
                old_peer.store.split_off_interval(pred, id)
            };
            let mut transferred_bytes = 0usize;
            for (k, v) in moved {
                transferred_bytes += 8 + v.wire_size();
                self.peer_mut(new_index).store.insert(k, v);
            }
            if transferred_bytes > 0 {
                self.record_overlay(transferred_bytes + ENVELOPE_OVERHEAD);
            }
        }
        // Join handshake + stabilisation messages: one routed join request plus a
        // constant number of neighbour updates.
        self.record_overlay(64 + ENVELOPE_OVERHEAD);
        self.rebuild_routing_tables();
        // Replica sets re-target onto the changed successor lists (a no-op
        // under NoReplication).
        self.reconverge_replicas();
        self.maybe_repair_after_churn();
        Some(new_index)
    }

    /// Peer `index` leaves gracefully, handing all its keys to its successor.
    pub fn leave(&mut self, index: usize) -> Result<(), DhtError> {
        if index >= self.peer_slots() || !self.peer(index).alive {
            return Err(DhtError::BadOrigin);
        }
        let id = self.peer(index).id;
        let successor = self
            .ring()
            .successor_of_peer(id)
            .map(|(_, idx)| idx)
            .filter(|idx| *idx != index);

        let handed_over = self.peer_mut(index).store.drain_all();
        let mut transferred_bytes = 0usize;
        if let Some(succ) = successor {
            for (k, v) in handed_over {
                transferred_bytes += 8 + v.wire_size();
                self.peer_mut(succ).store.insert(k, v);
            }
        }
        if transferred_bytes > 0 {
            self.record_overlay(transferred_bytes + ENVELOPE_OVERHEAD);
        }
        self.record_overlay(48 + ENVELOPE_OVERHEAD);
        self.mark_departed(index, id);
        self.reconverge_replicas();
        self.maybe_repair_after_churn();
        Ok(())
    }

    /// Peer `index` fails abruptly: its slice of the distributed index is lost —
    /// except for keys the replication subsystem had copied onto the peer's
    /// successors, which are recovered onto the new responsible peer. Returns
    /// the number of keys actually lost.
    pub fn fail(&mut self, index: usize) -> Result<usize, DhtError> {
        if index >= self.peer_slots() || !self.peer(index).alive {
            return Err(DhtError::BadOrigin);
        }
        let id = self.peer(index).id;
        let lost = self.peer_mut(index).store.drain_all().len();
        self.mark_departed(index, id);
        let report = self.reconverge_replicas();
        self.maybe_repair_after_churn();
        Ok(lost.saturating_sub(report.recovered))
    }

    /// When anti-entropy repair is enabled, every churn event is followed by
    /// one repair round so copies that went stale while the membership was in
    /// flux (e.g. syncs dropped towards a peer mid-departure) reconverge
    /// immediately instead of waiting for the next explicit
    /// [`Dht::repair_round`]. A no-op (zero traffic) when repair is disabled —
    /// the default — which keeps the pre-repair churn byte accounting
    /// byte-identical.
    fn maybe_repair_after_churn(&mut self) {
        if self.replication().repair_enabled() {
            self.repair_round();
        }
    }

    fn mark_departed(&mut self, index: usize, id: RingId) {
        self.peer_mut(index).alive = false;
        // Any replica copies the peer held die with it.
        let _ = self.peer_mut(index).replica_store.drain_all();
        self.remove_from_ring(id);
        self.rebuild_routing_tables();
    }
}

// Small private helpers exposed through an extension trait pattern would be overkill;
// instead the ring/stats mutators below stay `pub(crate)` on `Dht` via this impl.
impl<V: Clone + WireSize> Dht<V> {
    pub(crate) fn record_overlay(&mut self, bytes: usize) {
        self.stats_record(TrafficCategory::Overlay, bytes);
    }
}

/// A helper describing a peer's view for debugging and test diagnostics.
#[derive(Clone, Debug)]
pub struct PeerSummary {
    /// Ring identifier.
    pub id: RingId,
    /// Whether the peer is live.
    pub alive: bool,
    /// Number of keys it stores.
    pub keys: usize,
}

/// Produces a summary of every peer slot (live and departed).
pub fn summarize<V>(peers: &[Peer<V>]) -> Vec<PeerSummary> {
    peers
        .iter()
        .map(|p| PeerSummary {
            id: p.id,
            alive: p.alive,
            keys: p.store.len(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DhtConfig;

    fn dht(n: usize) -> Dht<Vec<u32>> {
        Dht::with_peers(DhtConfig::default(), 11, n)
    }

    fn fill(d: &mut Dht<Vec<u32>>, n_keys: usize) -> Vec<RingId> {
        let mut keys = Vec::new();
        for i in 0..n_keys {
            let key = RingId::hash_str(&format!("key-{i}"));
            d.put(
                i % d.live_peers(),
                key,
                vec![i as u32],
                TrafficCategory::Indexing,
            )
            .unwrap();
            keys.push(key);
        }
        keys
    }

    #[test]
    fn join_takes_over_the_right_key_range() {
        let mut d = dht(16);
        let keys = fill(&mut d, 100);
        let total_before = d.total_keys();
        let new_idx = d.join(RingId(u64::MAX / 3)).expect("fresh id");
        assert_eq!(d.live_peers(), 17);
        // No keys were lost and every key is still reachable at its responsible peer.
        assert_eq!(d.total_keys(), total_before);
        for k in &keys {
            assert!(d.peek(*k).is_some(), "key {k:?} lost after join");
        }
        // The new peer is responsible for exactly the keys it stores.
        for (k, _) in d.peer(new_idx).store.iter() {
            assert_eq!(d.responsible_for(*k).unwrap(), new_idx);
        }
        assert!(d.stats().category(TrafficCategory::Overlay).messages > 0);
    }

    #[test]
    fn graceful_leave_hands_keys_to_successor() {
        let mut d = dht(16);
        let keys = fill(&mut d, 100);
        let victim = 7;
        let had = d.peer(victim).store.len();
        d.leave(victim).unwrap();
        assert_eq!(d.live_peers(), 15);
        assert!(!d.peer(victim).alive);
        // All keys still present and reachable.
        assert_eq!(d.total_keys(), 100);
        for k in &keys {
            let resp = d.responsible_for(*k).unwrap();
            assert!(
                d.peer(resp).store.contains(k),
                "key {k:?} not at responsible peer"
            );
        }
        let _ = had;
        // Leaving twice is an error.
        assert_eq!(d.leave(victim), Err(DhtError::BadOrigin));
    }

    #[test]
    fn abrupt_failure_loses_only_that_peers_keys() {
        let mut d = dht(16);
        fill(&mut d, 200);
        let victim = 3;
        let had = d.peer(victim).store.len();
        let lost = d.fail(victim).unwrap();
        assert_eq!(lost, had);
        assert_eq!(d.total_keys(), 200 - had);
        // Lookups still work for the remaining keys.
        let mut reachable = 0;
        for i in 0..200 {
            let key = RingId::hash_str(&format!("key-{i}"));
            if d.peek(key).is_some() {
                let (_, v) = d.get(0, key, TrafficCategory::Retrieval).unwrap();
                assert!(v.is_some());
                reachable += 1;
            }
        }
        assert_eq!(reachable, 200 - had);
    }

    #[test]
    fn join_with_taken_id_is_rejected() {
        let mut d = dht(4);
        let existing = d.peer(0).id;
        assert!(d.join(existing).is_none());
        assert_eq!(d.live_peers(), 4);
    }

    #[test]
    fn operations_survive_a_churn_sequence() {
        let mut d = dht(24);
        fill(&mut d, 150);
        // A burst of churn: 4 joins, 3 graceful leaves, 2 failures.
        for j in 0..4u64 {
            d.join(RingId::hash_u64(0xBEEF + j));
        }
        for v in [2usize, 9, 17] {
            let _ = d.leave(v);
        }
        for v in [4usize, 11] {
            let _ = d.fail(v);
        }
        // The overlay still routes and serves requests from any live peer.
        let origins = d.live_peer_indices();
        assert!(d.live_peers() >= 23);
        for (i, origin) in origins.iter().take(10).enumerate() {
            let key = RingId::hash_str(&format!("post-churn-{i}"));
            d.put(*origin, key, vec![1, 2], TrafficCategory::Indexing)
                .unwrap();
            let (_, v) = d.get(origins[0], key, TrafficCategory::Retrieval).unwrap();
            assert_eq!(v, Some(vec![1, 2]));
        }
    }

    #[test]
    fn churn_triggers_a_repair_round_when_enabled() {
        use crate::replica::HotKeyReplication;
        use std::sync::Arc;

        let mut d = dht(24);
        d.set_replication_policy(Arc::new(HotKeyReplication::new(2)));
        d.set_repair_enabled(true);
        d.set_replica_faults(3, 1.0); // every sync message is dropped
        let key = RingId::hash_str("churny hot key");
        d.put(0, key, vec![5], TrafficCategory::Indexing).unwrap();
        let primary = d.responsible_for(key).unwrap();
        for _ in 0..10 {
            d.record_probe(key, primary);
        }
        assert!(!d.replica_holders(key).is_empty());
        // An update whose syncs all vanish leaves the holders stale...
        d.put_replicated(0, key, vec![6, 6], TrafficCategory::Indexing)
            .unwrap();
        assert!(d.replica_consistency() < 1.0);
        // ...and the next churn event repairs them as a side effect.
        d.join(RingId::hash_u64(0xC0FFEE)).expect("fresh id");
        assert_eq!(d.replica_consistency(), 1.0);
        assert!(d.replication().stats().repairs_pulled > 0);
    }

    #[test]
    fn summarize_reports_all_slots() {
        let mut d = dht(6);
        fill(&mut d, 30);
        d.fail(1).unwrap();
        // Access peers through the public accessors to build the summary.
        let peers: Vec<_> = (0..d.peer_slots()).map(|i| d.peer(i).clone()).collect();
        let summary = summarize(&peers);
        assert_eq!(summary.len(), 6);
        assert_eq!(summary.iter().filter(|s| !s.alive).count(), 1);
        assert_eq!(
            summary.iter().map(|s| s.keys).sum::<usize>(),
            d.total_keys()
        );
    }
}
