//! Ring identifiers and key hashing.
//!
//! The AlvisP2P overlay is a structured DHT over a circular identifier space.
//! Both peers and indexing keys are mapped to 64-bit identifiers on the ring;
//! the peer *responsible* for a key is the first peer clockwise from the key's
//! identifier (its successor).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A position on the 64-bit identifier ring.
///
/// Used both for peer identifiers and for hashed index keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct RingId(pub u64);

impl RingId {
    /// The smallest identifier.
    pub const MIN: RingId = RingId(0);
    /// The largest identifier.
    pub const MAX: RingId = RingId(u64::MAX);

    /// Hashes an arbitrary string (e.g. an indexing key such as `"database p2p"`)
    /// onto the ring using the 64-bit FNV-1a function.
    ///
    /// FNV-1a is not cryptographic, but it is deterministic, fast and uniform enough
    /// for load-balancing index keys over peers, which is all the DHT needs.
    ///
    /// Equivalent to streaming the string's bytes through a [`RingHasher`]; callers
    /// that hash a logical string scattered over several fragments (e.g. the
    /// `"a+b+c"` canonical form of a multi-term key whose terms live in an interner)
    /// can use the hasher directly and skip materializing the string.
    pub fn hash_str(s: &str) -> RingId {
        let mut h = RingHasher::new();
        h.write(s.as_bytes());
        h.finish()
    }

    /// Hashes an integer onto the ring (used for peer identifiers derived from
    /// simulated addresses).
    pub fn hash_u64(x: u64) -> RingId {
        RingId(Self::mix(x.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// Creates an identifier from a fraction of the ring in `[0, 1)`. Used to place
    /// peers with controlled (possibly skewed) distributions.
    pub fn from_fraction(f: f64) -> RingId {
        let f = f.clamp(0.0, 0.999_999_999_999);
        RingId((f * u64::MAX as f64) as u64)
    }

    /// The position of this identifier as a fraction of the ring in `[0, 1)`.
    pub fn to_fraction(self) -> f64 {
        self.0 as f64 / u64::MAX as f64
    }

    /// Clockwise distance from `self` to `other` (how far one must travel forward on
    /// the ring, wrapping around, to reach `other`).
    pub fn distance_to(self, other: RingId) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Whether `self` lies in the half-open clockwise interval `(from, to]`.
    ///
    /// This is the interval used for successor responsibility: the peer with
    /// identifier `p` is responsible for every key in `(predecessor(p), p]`.
    pub fn in_interval_open_closed(self, from: RingId, to: RingId) -> bool {
        if from == to {
            // The interval covers the whole ring (single peer).
            return true;
        }
        from.distance_to(self) <= from.distance_to(to) && self != from
    }

    /// Whether `self` lies in the open clockwise interval `(from, to)`.
    pub fn in_interval_open_open(self, from: RingId, to: RingId) -> bool {
        if from == to {
            return self != from;
        }
        self != from && self != to && from.distance_to(self) < from.distance_to(to)
    }

    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Incremental version of [`RingId::hash_str`]: feed byte fragments in order and
/// [`RingHasher::finish`] to obtain the identifier the concatenation would hash to.
///
/// This is what lets a multi-term key compute its ring identifier once, at
/// construction, without ever materializing its `"a+b"` canonical string: the term
/// fragments and `+` separators are streamed straight out of the interner.
#[derive(Clone, Copy, Debug)]
pub struct RingHasher {
    state: u64,
}

impl RingHasher {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher in the initial (empty input) state.
    pub fn new() -> Self {
        RingHasher {
            state: Self::FNV_OFFSET,
        }
    }

    /// Folds `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(Self::FNV_PRIME);
        }
        self.state = h;
    }

    /// Folds a single byte into the running hash.
    pub fn write_byte(&mut self, byte: u8) {
        self.state = (self.state ^ u64::from(byte)).wrapping_mul(Self::FNV_PRIME);
    }

    /// Finalizes the hash (splitmix64 avalanche to break up FNV's weak high bits).
    pub fn finish(self) -> RingId {
        RingId(RingId::mix(self.state))
    }
}

impl Default for RingHasher {
    fn default() -> Self {
        RingHasher::new()
    }
}

impl fmt::Debug for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RingId({:016x})", self.0)
    }
}

impl fmt::Display for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_str_is_deterministic_and_spread() {
        assert_eq!(RingId::hash_str("database"), RingId::hash_str("database"));
        assert_ne!(RingId::hash_str("database"), RingId::hash_str("databases"));
        assert_ne!(RingId::hash_str("a b"), RingId::hash_str("b a"));
    }

    #[test]
    fn streaming_hasher_matches_hash_str() {
        for s in ["", "a", "databas+peer", "a+b+c", "long+canonical+key+form"] {
            let mut h = RingHasher::new();
            for (i, frag) in s.split('+').enumerate() {
                if i > 0 {
                    h.write_byte(b'+');
                }
                h.write(frag.as_bytes());
            }
            assert_eq!(h.finish(), RingId::hash_str(s), "fragmented hash of {s:?}");
        }
        // Byte-at-a-time streaming is equivalent too.
        let mut h = RingHasher::new();
        for b in "peer+retriev".bytes() {
            h.write_byte(b);
        }
        assert_eq!(h.finish(), RingId::hash_str("peer+retriev"));
    }

    #[test]
    fn hash_u64_differs_from_input() {
        assert_ne!(RingId::hash_u64(0).0, 0);
        assert_ne!(RingId::hash_u64(1), RingId::hash_u64(2));
    }

    #[test]
    fn fraction_round_trip() {
        for f in [0.0, 0.25, 0.5, 0.75, 0.999] {
            let id = RingId::from_fraction(f);
            assert!((id.to_fraction() - f).abs() < 1e-9, "fraction {f}");
        }
        // Out-of-range fractions are clamped.
        assert_eq!(RingId::from_fraction(-1.0), RingId(0));
        assert!(RingId::from_fraction(2.0).0 > 0);
    }

    #[test]
    fn distance_wraps_around() {
        let a = RingId(u64::MAX - 10);
        let b = RingId(5);
        assert_eq!(a.distance_to(b), 16);
        assert_eq!(b.distance_to(a), u64::MAX - 15);
        assert_eq!(a.distance_to(a), 0);
    }

    #[test]
    fn interval_open_closed() {
        let a = RingId(100);
        let b = RingId(200);
        assert!(RingId(150).in_interval_open_closed(a, b));
        assert!(RingId(200).in_interval_open_closed(a, b));
        assert!(!RingId(100).in_interval_open_closed(a, b));
        assert!(!RingId(250).in_interval_open_closed(a, b));
        // Wrapping interval.
        let c = RingId(u64::MAX - 5);
        let d = RingId(10);
        assert!(RingId(2).in_interval_open_closed(c, d));
        assert!(RingId(u64::MAX).in_interval_open_closed(c, d));
        assert!(!RingId(500).in_interval_open_closed(c, d));
        // Degenerate interval (single peer) covers the whole ring.
        assert!(RingId(77).in_interval_open_closed(a, a));
    }

    #[test]
    fn interval_open_open() {
        let a = RingId(100);
        let b = RingId(200);
        assert!(RingId(150).in_interval_open_open(a, b));
        assert!(!RingId(200).in_interval_open_open(a, b));
        assert!(!RingId(100).in_interval_open_open(a, b));
        // Degenerate: everything except the point itself.
        assert!(RingId(5).in_interval_open_open(a, a));
        assert!(!RingId(100).in_interval_open_open(a, a));
    }

    #[test]
    fn hash_str_is_roughly_uniform() {
        // Hash many strings and check all four quadrants of the ring are hit.
        let mut quadrants = [0usize; 4];
        for i in 0..4000 {
            let id = RingId::hash_str(&format!("term{i}"));
            quadrants[(id.to_fraction() * 4.0) as usize % 4] += 1;
        }
        for q in quadrants {
            assert!(q > 700, "quadrant count {q} too small: {quadrants:?}");
        }
    }
}
