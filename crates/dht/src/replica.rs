//! Skew-aware replication of hot keys onto ring successor sets.
//!
//! Zipfian query logs concentrate most probe traffic on the few ring positions
//! owning head terms — the skew regime that provably limits parallel speedup
//! (Beame et al., "Skew in Parallel Query Processing") and that skew-aware
//! replication of heavy keys attacks directly. This module adds that layer to
//! the overlay:
//!
//! * [`ReplicationPolicy`] — the seam deciding *when* a stored key is hot
//!   enough to replicate and when it has cooled enough to withdraw. Built-ins:
//!   [`NoReplication`] (today's semantics, the default — every key lives only
//!   at its responsible peer) and [`HotKeyReplication`] (hysteresis thresholds
//!   over an EWMA probe load).
//! * [`LoadTracker`] — per-key and per-peer EWMA probe counters. In the
//!   deployed system each responsible peer tracks the keys it stores (the same
//!   served-request signals the congestion controller in [`crate::congestion`]
//!   reacts to); the simulator keeps the union of those per-node trackers in
//!   one structure, which is equivalent because every key has exactly one
//!   responsible peer observing its probes.
//! * [`ReplicaManager`] — the bookkeeping carried by [`Dht`]: the active
//!   policy, the tracker and the *replica directory* mapping each replicated
//!   key to the peers currently holding a copy.
//!
//! Replica copies live in a **separate** per-peer store
//! ([`crate::node::Peer::replica_store`]), never in the primary store, so the
//! overlay's core invariant — a key's primary value lives exactly at its
//! responsible peer — is untouched and [`NoReplication`] is byte-identical to
//! the pre-replication overlay.
//!
//! Replication never changes *what* a request returns, only *where* it is
//! served: copies are kept byte-identical to the primary (synced on every
//! publish through [`Dht::sync_replicas`]), so any live holder can answer.
//! On churn the replica sets re-converge onto the new successor lists
//! ([`Dht::reconverge_replicas`], called by join/leave/fail), and a failed
//! primary's value is recovered from a surviving replica instead of being
//! lost.
//!
//! # Anti-entropy repair
//!
//! On a faulty wire the "copies stay byte-identical" invariant breaks: a
//! sync message dropped in flight leaves a holder's copy **stale**, and bit
//! rot leaves it **corrupt**. The manager therefore tracks a monotonic
//! content version per replicated key and the version each holder last
//! received; [`Dht::repair_round`] — driven periodically from the churn loop
//! once [`Dht::set_repair_enabled`] turns it on — exchanges compact per-key
//! [`CopyDigest`]s (`(version, checksum)`), detects stale/missing/corrupt
//! copies, and pulls a fresh copy from the freshest live holder (the primary
//! when reachable). All repair traffic is charged to
//! [`TrafficCategory::Overlay`]. Repair is off by default and injecting
//! nothing, so the repair-disabled overlay stays byte-identical to the
//! pre-repair one.

use crate::id::RingId;
use crate::network::Dht;
use alvisp2p_netsim::wire::ENVELOPE_OVERHEAD;
use alvisp2p_netsim::{SimRng, TrafficCategory, WireSize};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Policy seam
// ---------------------------------------------------------------------------

/// Decides when a stored key is replicated onto its ring successor set and
/// when the replicas are withdrawn again.
///
/// The decisions are driven by an EWMA probe load per key (see
/// [`LoadTracker`]): `should_replicate` is consulted for keys that are not
/// yet replicated, `should_withdraw` for keys that are — keeping the two
/// thresholds apart gives hysteresis, so a key oscillating around one
/// threshold does not thrash copies on and off the network.
///
/// # Worked example
///
/// A hot key crosses the threshold after a burst of probes and is copied onto
/// its two ring successors; the replica set never contains the primary:
///
/// ```
/// use alvisp2p_dht::replica::HotKeyReplication;
/// use alvisp2p_dht::{Dht, DhtConfig, RingId};
/// use alvisp2p_netsim::TrafficCategory;
/// use std::sync::Arc;
///
/// let mut dht: Dht<Vec<u8>> = Dht::with_peers(DhtConfig::default(), 7, 32);
/// dht.set_replication_policy(Arc::new(HotKeyReplication::new(2)));
///
/// let key = RingId::hash_str("hot term");
/// dht.put(0, key, vec![1, 2, 3], TrafficCategory::Indexing).unwrap();
/// let primary = dht.responsible_for(key).unwrap();
///
/// // A burst of probes drives the key's EWMA load over the hot threshold …
/// for _ in 0..16 {
///     dht.record_probe(key, primary);
/// }
/// // … and the key is now replicated onto its two ring successors.
/// let holders = dht.replica_holders(key);
/// assert_eq!(holders.len(), 2);
/// assert!(!holders.contains(&primary));
/// for h in holders {
///     assert_eq!(dht.peer(h).replica_store.get(&key), Some(&vec![1, 2, 3]));
/// }
/// ```
pub trait ReplicationPolicy: std::fmt::Debug + Send + Sync {
    /// A short label used in reports and experiment output.
    fn label(&self) -> &str;

    /// Number of replicas (beyond the primary) a hot key is copied onto.
    /// `0` disables replication entirely. Co-tune this with
    /// [`crate::network::DhtConfig::successor_list_len`]: a factor no larger
    /// than the successor-list length keeps every replica inside the primary's
    /// successor list, where lookups terminate anyway.
    fn replication_factor(&self) -> usize;

    /// Whether a not-yet-replicated key at this EWMA probe load is hot enough
    /// to replicate.
    fn should_replicate(&self, load: f64) -> bool;

    /// Whether a replicated key at this EWMA probe load has cooled enough to
    /// withdraw its copies.
    fn should_withdraw(&self, load: f64) -> bool;

    /// Half-life, in observed probes network-wide, of the EWMA load tracker.
    fn half_life(&self) -> f64 {
        64.0
    }

    /// Whether the overlay needs to feed the load tracker at all. Policies
    /// that never replicate return `false`, keeping the probe hot path free
    /// of tracking cost.
    fn tracks(&self) -> bool {
        self.replication_factor() > 0
    }
}

/// The default policy: never replicate. Byte-identical to the
/// pre-replication overlay — no tracking, no copies, no directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoReplication;

impl ReplicationPolicy for NoReplication {
    fn label(&self) -> &str {
        "none"
    }

    fn replication_factor(&self) -> usize {
        0
    }

    fn should_replicate(&self, _load: f64) -> bool {
        false
    }

    fn should_withdraw(&self, _load: f64) -> bool {
        true
    }
}

/// Replicates a key onto its ring successor set while its EWMA probe load
/// stays hot, with hysteresis between the replicate and withdraw thresholds.
///
/// With the default half-life of 64 probes the steady-state load of a key
/// receiving a fraction `p` of all probes is ≈ `92·p`, so the default
/// `hot_threshold` of 2.0 replicates keys drawing more than ≈ 2% of the
/// network's probe traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct HotKeyReplication {
    /// Number of successor-set replicas per hot key (see
    /// [`ReplicationPolicy::replication_factor`]).
    pub factor: usize,
    /// EWMA load above which a key is replicated.
    pub hot_threshold: f64,
    /// EWMA load below which a replicated key is withdrawn. Must be below
    /// `hot_threshold` for useful hysteresis.
    pub cool_threshold: f64,
    /// Half-life of the EWMA tracker, in observed probes network-wide.
    pub half_life: f64,
}

impl Default for HotKeyReplication {
    fn default() -> Self {
        HotKeyReplication {
            factor: 3,
            hot_threshold: 2.0,
            cool_threshold: 0.5,
            half_life: 64.0,
        }
    }
}

impl HotKeyReplication {
    /// A policy replicating hot keys onto `factor` successors with the
    /// default thresholds.
    pub fn new(factor: usize) -> Self {
        HotKeyReplication {
            factor,
            ..Default::default()
        }
    }
}

impl ReplicationPolicy for HotKeyReplication {
    fn label(&self) -> &str {
        "hot-key"
    }

    fn replication_factor(&self) -> usize {
        self.factor
    }

    fn should_replicate(&self, load: f64) -> bool {
        load >= self.hot_threshold
    }

    fn should_withdraw(&self, load: f64) -> bool {
        load <= self.cool_threshold
    }

    fn half_life(&self) -> f64 {
        self.half_life
    }
}

// ---------------------------------------------------------------------------
// Load tracking
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Ewma {
    value: f64,
    at: u64,
}

/// EWMA probe-load counters per stored key and per serving peer.
///
/// The clock is the number of probes observed network-wide: every
/// [`LoadTracker::observe`] advances it by one and adds one unit of load to
/// the probed key and the serving peer, with all loads decaying by a factor
/// of two every `half_life` ticks. Decay is applied lazily, so idle keys
/// cost nothing.
#[derive(Clone, Debug)]
pub struct LoadTracker {
    half_life: f64,
    tick: u64,
    keys: HashMap<RingId, Ewma>,
    peers: HashMap<usize, Ewma>,
}

impl LoadTracker {
    /// Creates a tracker whose loads halve every `half_life` observed probes.
    pub fn new(half_life: f64) -> Self {
        LoadTracker {
            half_life: half_life.max(1.0),
            tick: 0,
            keys: HashMap::new(),
            peers: HashMap::new(),
        }
    }

    fn decayed(&self, e: &Ewma) -> f64 {
        let dt = (self.tick - e.at) as f64;
        e.value * (-dt / self.half_life).exp2()
    }

    /// Records one probe for `key` served by peer `served_by`; advances the
    /// clock and returns the key's updated load.
    pub fn observe(&mut self, key: RingId, served_by: usize) -> f64 {
        self.tick += 1;
        let tick = self.tick;
        let half_life = self.half_life;
        let bump = |slot: &mut Ewma| {
            let dt = (tick - slot.at) as f64;
            slot.value = slot.value * (-dt / half_life).exp2() + 1.0;
            slot.at = tick;
        };
        let key_slot = self.keys.entry(key).or_insert(Ewma {
            value: 0.0,
            at: tick,
        });
        bump(key_slot);
        let key_load = key_slot.value;
        let peer_slot = self.peers.entry(served_by).or_insert(Ewma {
            value: 0.0,
            at: tick,
        });
        bump(peer_slot);
        key_load
    }

    /// The key's current (decayed) EWMA probe load.
    pub fn key_load(&self, key: RingId) -> f64 {
        self.keys.get(&key).map(|e| self.decayed(e)).unwrap_or(0.0)
    }

    /// The peer's current (decayed) EWMA serve load.
    pub fn peer_load(&self, peer: usize) -> f64 {
        self.peers
            .get(&peer)
            .map(|e| self.decayed(e))
            .unwrap_or(0.0)
    }

    /// Number of probes observed so far (the tracker's clock).
    pub fn observed(&self) -> u64 {
        self.tick
    }
}

// ---------------------------------------------------------------------------
// Manager state carried by the Dht
// ---------------------------------------------------------------------------

/// Counters describing the replication subsystem's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaStats {
    /// Keys replicated onto their successor set (hysteresis upward crossings).
    pub replications: u64,
    /// Replica sets withdrawn after cooling down.
    pub withdrawals: u64,
    /// Probes served by a replica instead of the primary.
    pub replica_serves: u64,
    /// Publish-path refreshes of existing replica copies.
    pub syncs: u64,
    /// Primary values recovered from a replica after an abrupt failure.
    pub recovered: u64,
    /// Per-holder `(version, checksum)` digest exchanges performed by
    /// anti-entropy repair rounds (see [`Dht::repair_round`]).
    #[serde(default)]
    pub digests_exchanged: u64,
    /// Stale, missing or corrupt replica copies refreshed from the freshest
    /// live holder by anti-entropy repair.
    #[serde(default)]
    pub repairs_pulled: u64,
}

/// The compact per-key metadata holders exchange during an anti-entropy
/// repair round: which content version a copy corresponds to and a checksum
/// of its replicated bytes (see
/// [`alvisp2p_netsim::WireSize::content_digest`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyDigest {
    /// Monotonic content version of the copy, bumped on every publish-path
    /// sync of the key.
    pub version: u64,
    /// Content checksum of the copy's bytes.
    pub checksum: u64,
}

impl CopyDigest {
    /// Wire bytes of one [`CopyDigest`] message: the key identifier plus the
    /// version and checksum words.
    pub const WIRE_BYTES: usize = 24;
}

const DIGEST_BYTES: usize = CopyDigest::WIRE_BYTES;

/// Salt of the deterministic replica-sync loss draw. Mirrors the core fault
/// plane's stateless-draw construction (seeded splitmix finalizer, one
/// [`SimRng`] draw per decision) — the dht crate cannot depend on the core
/// crate, so the layer above wires `(seed, rate)` in via
/// [`Dht::set_replica_faults`].
const SALT_REPLICA_SYNC: u64 = 0x7273_796e; // "rsyn"

/// Whether one replica-sync message is dropped in flight, at these
/// deterministic coordinates.
fn sync_message_lost(seed: u64, rate: f64, key: RingId, seq: u64, recipient: u64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    let mut z = seed
        ^ SALT_REPLICA_SYNC.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ key.0.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ seq.wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ recipient.wrapping_mul(0xd6e8_feb8_6659_fd93);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    SimRng::new(z).gen_f64() < rate
}

/// The replication bookkeeping carried by a [`Dht`]: the active policy, the
/// EWMA load tracker and the replica directory (key → holder peer indices).
#[derive(Debug)]
pub struct ReplicaManager {
    policy: Arc<dyn ReplicationPolicy>,
    tracker: LoadTracker,
    directory: BTreeMap<RingId, Vec<usize>>,
    stats: ReplicaStats,
    /// Whether the churn loop drives periodic [`Dht::repair_round`]s.
    /// Default `false`: the repair-disabled overlay is byte-identical to the
    /// pre-repair one.
    repair_enabled: bool,
    /// Monotonic content version of each replicated key's canonical (primary)
    /// copy; bumped on every publish-path sync.
    versions: HashMap<RingId, u64>,
    /// Content version each holder's copy corresponds to — stale when it
    /// lags the key's canonical version.
    holder_versions: HashMap<(RingId, usize), u64>,
    /// Replica copies marked bit-rotted by fault injection; their digest no
    /// longer matches their recorded version.
    corrupt: BTreeSet<(RingId, usize)>,
    /// Deterministic sync-loss injection wired in by the layer above:
    /// `(seed, loss rate)`.
    sync_faults: Option<(u64, f64)>,
    /// Sequence number of the next replica-sync operation (the coordinates of
    /// its loss draws).
    sync_seq: u64,
}

impl ReplicaManager {
    pub(crate) fn new(policy: Arc<dyn ReplicationPolicy>) -> Self {
        let half_life = policy.half_life();
        ReplicaManager {
            policy,
            tracker: LoadTracker::new(half_life),
            directory: BTreeMap::new(),
            stats: ReplicaStats::default(),
            repair_enabled: false,
            versions: HashMap::new(),
            holder_versions: HashMap::new(),
            corrupt: BTreeSet::new(),
            sync_faults: None,
            sync_seq: 0,
        }
    }

    /// Whether periodic anti-entropy repair is driven from the churn loop.
    pub fn repair_enabled(&self) -> bool {
        self.repair_enabled
    }

    /// The canonical content version of a replicated key (`0` for a key that
    /// has never been replicated or synced).
    pub fn content_version(&self, key: RingId) -> u64 {
        self.versions.get(&key).copied().unwrap_or(0)
    }

    /// The content version `holder`'s copy of `key` corresponds to.
    pub fn holder_version(&self, key: RingId, holder: usize) -> u64 {
        self.holder_versions
            .get(&(key, holder))
            .copied()
            .unwrap_or(0)
    }

    /// Whether `holder`'s copy of `key` is marked bit-rotted.
    pub fn is_copy_corrupt(&self, key: RingId, holder: usize) -> bool {
        self.corrupt.contains(&(key, holder))
    }

    /// Records that `holder` received a fresh copy of `key` at `version`.
    fn note_copy(&mut self, key: RingId, holder: usize, version: u64) {
        self.holder_versions.insert((key, holder), version);
        self.corrupt.remove(&(key, holder));
    }

    /// Drops the per-holder metadata of `holder`'s copy of `key`.
    fn drop_copy_meta(&mut self, key: RingId, holder: usize) {
        self.holder_versions.remove(&(key, holder));
        self.corrupt.remove(&(key, holder));
    }

    /// The active replication policy.
    pub fn policy(&self) -> &Arc<dyn ReplicationPolicy> {
        &self.policy
    }

    /// Activity counters.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// Number of currently replicated keys.
    pub fn replicated_keys(&self) -> usize {
        self.directory.len()
    }

    /// Whether `key` currently has a replica set.
    pub fn is_replicated(&self, key: RingId) -> bool {
        self.directory.contains_key(&key)
    }

    /// All currently replicated keys, in ring order.
    pub fn replicated_key_list(&self) -> Vec<RingId> {
        self.directory.keys().copied().collect()
    }

    /// The key's current EWMA probe load.
    pub fn key_load(&self, key: RingId) -> f64 {
        self.tracker.key_load(key)
    }

    /// The peer's current EWMA serve load.
    pub fn peer_load(&self, peer: usize) -> f64 {
        self.tracker.peer_load(peer)
    }

    /// Number of probes the tracker has observed.
    pub fn observed_probes(&self) -> u64 {
        self.tracker.observed()
    }

    pub(crate) fn observe(&mut self, key: RingId, served_by: usize) -> f64 {
        self.tracker.observe(key, served_by)
    }

    pub(crate) fn holders_raw(&self, key: RingId) -> Vec<usize> {
        self.directory.get(&key).cloned().unwrap_or_default()
    }

    pub(crate) fn set_holders(&mut self, key: RingId, holders: Vec<usize>) {
        self.directory.insert(key, holders);
    }

    pub(crate) fn remove_holders(&mut self, key: RingId) -> Option<Vec<usize>> {
        self.directory.remove(&key)
    }

    pub(crate) fn stats_mut(&mut self) -> &mut ReplicaStats {
        &mut self.stats
    }
}

/// What a [`Dht::reconverge_replicas`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconvergeReport {
    /// Primary values recovered from a surviving replica.
    pub recovered: usize,
    /// Replica copies (re)placed onto new successor-set members.
    pub refreshed: usize,
    /// Replicated keys whose every copy was lost (bookkeeping dropped).
    pub lost: usize,
}

/// What one [`Dht::repair_round`] anti-entropy pass found and fixed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Replicated keys whose holder set was checked.
    pub keys_checked: usize,
    /// Per-holder `(version, checksum)` digest exchanges performed.
    pub digests_exchanged: usize,
    /// Copies found lagging the canonical content version.
    pub stale: usize,
    /// Holders found without any copy of a key they should hold.
    pub missing: usize,
    /// Copies whose checksum disagreed with their recorded version (bit rot).
    pub corrupt: usize,
    /// Fresh copies pulled from the freshest live holder.
    pub repaired: usize,
}

impl RepairReport {
    /// Total divergent copies the pass detected.
    pub fn divergent(&self) -> usize {
        self.stale + self.missing + self.corrupt
    }
}

// ---------------------------------------------------------------------------
// Replica-aware overlay operations
// ---------------------------------------------------------------------------

impl<V: Clone + WireSize> Dht<V> {
    /// Replaces the replication policy, withdrawing any existing replicas
    /// first (the new policy starts from a clean slate).
    pub fn set_replication_policy(&mut self, policy: Arc<dyn ReplicationPolicy>) {
        for key in self.replication().replicated_key_list() {
            self.withdraw_replicas(key);
        }
        // Fault wiring and the repair switch outlive policy swaps: they
        // describe the wire, not the policy.
        let repair_enabled = self.replication().repair_enabled;
        let sync_faults = self.replication().sync_faults;
        *self.replicas_mut() = ReplicaManager::new(policy);
        self.replicas_mut().repair_enabled = repair_enabled;
        self.replicas_mut().sync_faults = sync_faults;
    }

    /// Wires deterministic replica-sync loss into the overlay: each sync
    /// message is dropped with probability `sync_loss_rate`, decided by a
    /// stateless seeded draw (the same construction as the core fault plane,
    /// which pushes its seed and rate down through this call). A zero rate
    /// disables injection entirely.
    pub fn set_replica_faults(&mut self, seed: u64, sync_loss_rate: f64) {
        self.replicas_mut().sync_faults = if sync_loss_rate > 0.0 {
            Some((seed, sync_loss_rate.clamp(0.0, 1.0)))
        } else {
            None
        };
    }

    /// Turns the churn-driven anti-entropy repair loop on or off (off by
    /// default; see [`Dht::repair_round`]).
    pub fn set_repair_enabled(&mut self, enabled: bool) {
        self.replicas_mut().repair_enabled = enabled;
    }

    /// Marks `holder`'s replica copy of `key` bit-rotted (fault injection):
    /// its digest no longer matches its content, which the next repair round
    /// detects and fixes. Returns whether the holder actually held a copy.
    pub fn corrupt_replica_copy(&mut self, key: RingId, holder: usize) -> bool {
        if holder < self.peer_slots() && self.peer(holder).replica_store.contains(&key) {
            self.replicas_mut().corrupt.insert((key, holder));
            true
        } else {
            false
        }
    }

    /// The first `factor` live ring successors of `key`'s responsible peer —
    /// where the key's replicas are placed. Never contains the primary.
    pub fn replica_targets(&self, key: RingId, factor: usize) -> Vec<usize> {
        let Ok(primary) = self.responsible_for(key) else {
            return Vec::new();
        };
        let ring = self.ring();
        let Some(rank) = ring.rank_of(self.peer(primary).id) else {
            return Vec::new();
        };
        let n = ring.len();
        let mut targets = Vec::new();
        for step in 1..n {
            if targets.len() >= factor {
                break;
            }
            let (_, idx) = ring.at_rank(rank + step);
            if idx != primary && !targets.contains(&idx) {
                targets.push(idx);
            }
        }
        targets
    }

    /// The live peers currently holding a replica of `key` (primary excluded).
    pub fn replica_holders(&self, key: RingId) -> Vec<usize> {
        let mut holders = self.replication().holders_raw(key);
        holders.retain(|&h| {
            h < self.peer_slots() && self.peer(h).alive && self.peer(h).replica_store.contains(&key)
        });
        holders
    }

    /// The least-loaded live holder of `key` (primary included), by EWMA serve
    /// load with the primary winning ties — the probe-routing decision.
    pub fn least_loaded_holder(&self, key: RingId) -> Option<usize> {
        let primary = self.responsible_for(key).ok()?;
        let mut best = primary;
        let mut best_load = self.replication().peer_load(primary);
        for h in self.replica_holders(key) {
            let load = self.replication().peer_load(h);
            if load < best_load {
                best = h;
                best_load = load;
            }
        }
        Some(best)
    }

    /// Feeds one observed probe for `key` (served by peer `served_by`) into
    /// the load tracker and applies the policy's hysteresis: a key crossing
    /// the hot threshold is replicated onto its successor set, a replicated
    /// key that cooled below the withdraw threshold has its copies revoked.
    ///
    /// No-op (and free) under a policy that does not track, such as
    /// [`NoReplication`].
    pub fn record_probe(&mut self, key: RingId, served_by: usize) {
        if !self.replication().policy().tracks() {
            return;
        }
        let load = self.replicas_mut().observe(key, served_by);
        if let Ok(primary) = self.responsible_for(key) {
            if served_by != primary {
                self.replicas_mut().stats_mut().replica_serves += 1;
            }
        }
        let replicated = self.replication().is_replicated(key);
        let (replicate, withdraw) = {
            let policy = self.replication().policy();
            (
                !replicated && policy.should_replicate(load),
                replicated && policy.should_withdraw(load),
            )
        };
        if withdraw {
            self.withdraw_replicas(key);
        } else if replicate {
            self.replicate_key(key);
        }
    }

    /// Copies `key`'s stored value onto its successor-set targets and records
    /// the replica set in the directory. Transfer bytes are charged to
    /// [`TrafficCategory::Overlay`]. No-op if the key has no stored value.
    fn replicate_key(&mut self, key: RingId) {
        let factor = self.replication().policy().replication_factor();
        if factor == 0 {
            return;
        }
        let Ok(primary) = self.responsible_for(key) else {
            return;
        };
        let Some(value) = self.peer(primary).store.get(&key).cloned() else {
            return;
        };
        let targets = self.replica_targets(key, factor);
        if targets.is_empty() {
            return;
        }
        let version = {
            let m = self.replicas_mut();
            let v = m.versions.entry(key).or_insert(0);
            if *v == 0 {
                *v = 1;
            }
            *v
        };
        let bytes_per_copy = 8 + value.wire_size() + ENVELOPE_OVERHEAD;
        for &t in &targets {
            self.peer_mut(t).replica_store.insert(key, value.clone());
            self.replicas_mut().note_copy(key, t, version);
            self.record_overlay(bytes_per_copy);
        }
        self.replicas_mut().set_holders(key, targets);
        self.replicas_mut().stats_mut().replications += 1;
    }

    /// Revokes all replica copies of `key` (small control message per holder,
    /// charged to [`TrafficCategory::Overlay`]). Returns whether the key was
    /// replicated.
    pub fn withdraw_replicas(&mut self, key: RingId) -> bool {
        let Some(holders) = self.replicas_mut().remove_holders(key) else {
            return false;
        };
        for h in holders {
            if h < self.peer_slots() {
                self.peer_mut(h).replica_store.remove(&key);
            }
            self.replicas_mut().drop_copy_meta(key, h);
            self.record_overlay(16 + ENVELOPE_OVERHEAD);
        }
        self.replicas_mut().stats_mut().withdrawals += 1;
        true
    }

    /// Refreshes every replica copy of `key` from the primary's current value
    /// (called by the layer above after mutating the primary, so copies stay
    /// byte-identical and any holder can serve). Transfer bytes are charged to
    /// `category`. No-op if the key is not replicated.
    ///
    /// Each per-holder refresh bumps the key's canonical content version and
    /// crosses the (possibly faulty) wire independently: a message dropped by
    /// the [`Dht::set_replica_faults`] loss draw still charges its bytes but
    /// leaves that holder's copy — and its recorded version — **stale**,
    /// until anti-entropy repair pulls a fresh one.
    pub fn sync_replicas(&mut self, key: RingId, category: TrafficCategory) {
        let holders = self.replication().holders_raw(key);
        if holders.is_empty() {
            return;
        }
        let Ok(primary) = self.responsible_for(key) else {
            return;
        };
        let Some(value) = self.peer(primary).store.get(&key).cloned() else {
            // The primary value is gone (evicted/removed): the copies go too.
            self.withdraw_replicas(key);
            return;
        };
        let (version, seq, faults) = {
            let m = self.replicas_mut();
            let v = m.versions.entry(key).or_insert(0);
            *v += 1;
            let version = *v;
            let seq = m.sync_seq;
            m.sync_seq += 1;
            (version, seq, m.sync_faults)
        };
        let bytes = 8 + value.wire_size();
        for (recipient, h) in holders.into_iter().enumerate() {
            if h < self.peer_slots() && self.peer(h).alive {
                self.charge_external(category, bytes);
                if let Some((seed, rate)) = faults {
                    if sync_message_lost(seed, rate, key, seq, recipient as u64) {
                        // Dropped in flight: the holder keeps its stale copy.
                        continue;
                    }
                }
                self.peer_mut(h).replica_store.insert(key, value.clone());
                self.replicas_mut().note_copy(key, h, version);
            }
        }
        self.replicas_mut().stats_mut().syncs += 1;
    }

    /// Withdraws every replicated key that has cooled below the policy's
    /// withdraw threshold (a periodic sweep complementing the probe-driven
    /// hysteresis, which only re-evaluates keys that are still being probed).
    /// Returns the number of keys withdrawn.
    pub fn maintain_replicas(&mut self) -> usize {
        let policy = Arc::clone(self.replication().policy());
        if !policy.tracks() {
            return 0;
        }
        let mut withdrawn = 0;
        for key in self.replication().replicated_key_list() {
            if policy.should_withdraw(self.replication().key_load(key)) {
                self.withdraw_replicas(key);
                withdrawn += 1;
            }
        }
        withdrawn
    }

    /// Re-converges every replica set after a membership change: recovers a
    /// failed primary's value from a surviving replica, re-targets each set at
    /// the current successor list, places missing copies and removes copies
    /// from peers that left the set. Called by
    /// [`Dht::join`]/[`Dht::leave`]/[`Dht::fail`]; free under
    /// [`NoReplication`] (empty directory).
    pub fn reconverge_replicas(&mut self) -> ReconvergeReport {
        let mut report = ReconvergeReport::default();
        let factor = self.replication().policy().replication_factor();
        for key in self.replication().replicated_key_list() {
            let Ok(primary) = self.responsible_for(key) else {
                self.replicas_mut().remove_holders(key);
                continue;
            };
            // Recover or promote the value if the current primary lacks it
            // (its previous owner failed, or responsibility moved onto a
            // peer that held a replica).
            if !self.peer(primary).store.contains(&key) {
                if let Some(v) = self.peer_mut(primary).replica_store.remove(&key) {
                    self.peer_mut(primary).store.insert(key, v);
                    self.replicas_mut().drop_copy_meta(key, primary);
                    report.recovered += 1;
                } else {
                    let copy = self
                        .replication()
                        .holders_raw(key)
                        .into_iter()
                        .filter(|&h| h < self.peer_slots() && self.peer(h).alive)
                        .find_map(|h| self.peer(h).replica_store.get(&key).cloned());
                    if let Some(v) = copy {
                        let bytes = 8 + v.wire_size() + ENVELOPE_OVERHEAD;
                        self.peer_mut(primary).store.insert(key, v);
                        self.record_overlay(bytes);
                        report.recovered += 1;
                    }
                }
            }
            if !self.peer(primary).store.contains(&key) {
                // Every copy died with its holder: the entry is gone (the
                // layer above re-publishes, as with any abrupt failure).
                if let Some(old) = self.replicas_mut().remove_holders(key) {
                    for h in old {
                        if h < self.peer_slots() {
                            self.peer_mut(h).replica_store.remove(&key);
                        }
                        self.replicas_mut().drop_copy_meta(key, h);
                    }
                }
                report.lost += 1;
                continue;
            }
            // Re-target the set at the current successor list.
            let targets = self.replica_targets(key, factor);
            let old = self.replication().holders_raw(key);
            for h in old {
                if !targets.contains(&h) && h < self.peer_slots() {
                    self.peer_mut(h).replica_store.remove(&key);
                    self.replicas_mut().drop_copy_meta(key, h);
                }
            }
            if targets.is_empty() {
                self.replicas_mut().remove_holders(key);
                continue;
            }
            let value = self
                .peer(primary)
                .store
                .get(&key)
                .cloned()
                .expect("checked above");
            let version = self.replication().content_version(key).max(1);
            let bytes_per_copy = 8 + value.wire_size() + ENVELOPE_OVERHEAD;
            for &t in &targets {
                if !self.peer(t).replica_store.contains(&key) {
                    self.peer_mut(t).replica_store.insert(key, value.clone());
                    self.replicas_mut().note_copy(key, t, version);
                    self.record_overlay(bytes_per_copy);
                    report.refreshed += 1;
                }
            }
            self.replicas_mut().set_holders(key, targets);
        }
        self.replicas_mut().stats_mut().recovered += report.recovered as u64;
        report
    }

    /// One anti-entropy repair pass over every replicated key (see
    /// [`Dht::repair_round_excluding`] for the variant that skips known
    /// unresponsive peers).
    pub fn repair_round(&mut self) -> RepairReport {
        self.repair_round_excluding(&BTreeSet::new())
    }

    /// One anti-entropy repair pass over every replicated key, skipping
    /// `unresponsive` peers (crashed-but-not-departed peers the layer above
    /// knows about; digest exchanges with them would go unanswered).
    ///
    /// For each key, the pass picks the freshest live holder — the primary
    /// when reachable (its copy is canonical by construction), otherwise the
    /// responsive holder with the highest received version and an unrotted
    /// copy — then exchanges a compact [`CopyDigest`] with every other
    /// responsive holder. A holder whose digest is missing, lags the source's
    /// version, or disagrees with its checksum pulls a fresh copy from the
    /// source. Digest and transfer bytes are charged to
    /// [`TrafficCategory::Overlay`] — repair is control-plane traffic, never
    /// Retrieval.
    pub fn repair_round_excluding(&mut self, unresponsive: &BTreeSet<usize>) -> RepairReport {
        let mut report = RepairReport::default();
        for key in self.replication().replicated_key_list() {
            let holders = self.replication().holders_raw(key);
            if holders.is_empty() {
                continue;
            }
            let responsive = |dht: &Self, p: usize| {
                p < dht.peer_slots() && dht.peer(p).alive && !unresponsive.contains(&p)
            };
            // The freshest live source of the key's content.
            let primary = self.responsible_for(key).ok();
            let source = match primary {
                Some(p) if responsive(self, p) && self.peer(p).store.contains(&key) => Some(p),
                _ => holders
                    .iter()
                    .copied()
                    .filter(|&h| {
                        responsive(self, h)
                            && self.peer(h).replica_store.contains(&key)
                            && !self.replication().is_copy_corrupt(key, h)
                    })
                    .max_by_key(|&h| self.replication().holder_version(key, h)),
            };
            let Some(source) = source else {
                // No responsive holder with a trustworthy copy: nothing to
                // repair from this round.
                continue;
            };
            let from_primary = primary == Some(source);
            let value = if from_primary {
                self.peer(source).store.get(&key).cloned()
            } else {
                self.peer(source).replica_store.get(&key).cloned()
            };
            let Some(value) = value else { continue };
            let src_digest = CopyDigest {
                version: self.replication().content_version(key).max(1),
                checksum: value.content_digest(),
            };
            report.keys_checked += 1;
            let transfer_bytes = 8 + value.wire_size() + ENVELOPE_OVERHEAD;
            for h in holders {
                if h == source || !responsive(self, h) {
                    continue;
                }
                // The digest exchange: one request, one response.
                self.record_overlay(2 * (DIGEST_BYTES + ENVELOPE_OVERHEAD));
                report.digests_exchanged += 1;
                self.replicas_mut().stats_mut().digests_exchanged += 1;
                let holder_digest = self.peer(h).replica_store.get(&key).map(|copy| CopyDigest {
                    version: self.replication().holder_version(key, h),
                    checksum: if self.replication().is_copy_corrupt(key, h) {
                        // Bit rot: the stored bytes no longer hash to what
                        // the holder's metadata claims.
                        !copy.content_digest()
                    } else {
                        copy.content_digest()
                    },
                });
                let divergent = match holder_digest {
                    None => {
                        report.missing += 1;
                        true
                    }
                    Some(d) if d.version != src_digest.version => {
                        report.stale += 1;
                        true
                    }
                    Some(d) if d.checksum != src_digest.checksum => {
                        report.corrupt += 1;
                        true
                    }
                    Some(_) => false,
                };
                if divergent {
                    self.peer_mut(h).replica_store.insert(key, value.clone());
                    self.replicas_mut().note_copy(key, h, src_digest.version);
                    self.record_overlay(transfer_bytes);
                    report.repaired += 1;
                    self.replicas_mut().stats_mut().repairs_pulled += 1;
                }
            }
        }
        report
    }

    /// Fraction of live replica copies byte-identical to their key's
    /// canonical (primary) content, `1.0` when nothing is replicated — the
    /// consistency figure the chaos benchmark tracks. See
    /// [`Dht::replica_consistency_excluding`].
    pub fn replica_consistency(&self) -> f64 {
        self.replica_consistency_excluding(&BTreeSet::new())
    }

    /// Like [`Dht::replica_consistency`], but ignores copies held by
    /// `unresponsive` peers (a crashed holder's copy can neither serve nor be
    /// repaired until it recovers or departs).
    pub fn replica_consistency_excluding(&self, unresponsive: &BTreeSet<usize>) -> f64 {
        let mut total = 0usize;
        let mut consistent = 0usize;
        for key in self.replication().replicated_key_list() {
            let Ok(primary) = self.responsible_for(key) else {
                continue;
            };
            if unresponsive.contains(&primary) {
                continue;
            }
            let Some(canonical) = self.peer(primary).store.get(&key) else {
                continue;
            };
            let canon_digest = canonical.content_digest();
            for h in self.replication().holders_raw(key) {
                if h >= self.peer_slots() || !self.peer(h).alive || unresponsive.contains(&h) {
                    continue;
                }
                total += 1;
                let ok = !self.replication().is_copy_corrupt(key, h)
                    && self
                        .peer(h)
                        .replica_store
                        .get(&key)
                        .is_some_and(|copy| copy.content_digest() == canon_digest);
                if ok {
                    consistent += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            consistent as f64 / total as f64
        }
    }

    /// Replica-aware fetch: routes the request for `key` as usual (same hops
    /// and routing charges as [`Dht::get`] — the request travels into the
    /// key's ring neighbourhood, where primary and replicas sit side by side),
    /// then serves the value from the least-loaded live holder. Feeds the load
    /// tracker, so hot keys replicate and cool keys withdraw as a side effect.
    ///
    /// Returns the route, the value and the index of the serving peer.
    #[allow(clippy::type_complexity)]
    pub fn get_replicated(
        &mut self,
        from: usize,
        key: RingId,
        category: TrafficCategory,
    ) -> Result<(crate::network::RouteInfo, Option<V>, usize), crate::network::DhtError> {
        let info = self.route(from, key, category)?;
        let served_by = self.least_loaded_holder(key).unwrap_or(info.responsible);
        self.peer_mut(served_by).served_requests += 1;
        let value = {
            let p = self.peer(served_by);
            p.store
                .get(&key)
                .cloned()
                .or_else(|| p.replica_store.get(&key).cloned())
        };
        self.charge_external(category, value.as_ref().map(|v| v.wire_size()).unwrap_or(1));
        self.record_probe(key, served_by);
        Ok((info, value, served_by))
    }

    /// Replica-aware store: [`Dht::put`] followed by a refresh of any existing
    /// replica copies, so holders never serve a stale value.
    pub fn put_replicated(
        &mut self,
        from: usize,
        key: RingId,
        value: V,
        category: TrafficCategory,
    ) -> Result<crate::network::RouteInfo, crate::network::DhtError> {
        let info = self.put(from, key, value, category)?;
        self.sync_replicas(key, category);
        Ok(info)
    }

    /// Total approximate bytes of replica copies across all live peers.
    pub fn replica_storage_bytes(&self) -> usize {
        self.live_peer_indices()
            .into_iter()
            .map(|i| self.peer(i).replica_store.storage_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DhtConfig;

    fn hot_dht(n: usize, factor: usize) -> Dht<Vec<u8>> {
        let mut dht: Dht<Vec<u8>> = Dht::with_peers(DhtConfig::default(), 11, n);
        dht.set_replication_policy(Arc::new(HotKeyReplication::new(factor)));
        dht
    }

    fn heat(dht: &mut Dht<Vec<u8>>, key: RingId, probes: usize) {
        let primary = dht.responsible_for(key).unwrap();
        for _ in 0..probes {
            dht.record_probe(key, primary);
        }
    }

    #[test]
    fn tracker_decays_with_half_life() {
        let mut t = LoadTracker::new(4.0);
        let key = RingId(1);
        for _ in 0..3 {
            t.observe(key, 0);
        }
        let hot = t.key_load(key);
        assert!(hot > 2.0, "three consecutive probes accumulate, got {hot}");
        // Four probes for other keys later, the load has halved.
        for i in 0..4u64 {
            t.observe(RingId(100 + i), 1);
        }
        let cooled = t.key_load(key);
        assert!(
            (cooled - hot / 2.0).abs() < 1e-9,
            "half-life decay: {hot} -> {cooled}"
        );
        assert!(t.peer_load(0) > 0.0 && t.peer_load(1) > 0.0);
        assert_eq!(t.observed(), 7);
    }

    #[test]
    fn no_replication_tracks_nothing_and_replicates_nothing() {
        let mut dht: Dht<Vec<u8>> = Dht::with_peers(DhtConfig::default(), 3, 16);
        let key = RingId::hash_str("cold");
        dht.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        heat(&mut dht, key, 200);
        assert_eq!(dht.replication().replicated_keys(), 0);
        assert_eq!(dht.replication().observed_probes(), 0);
        assert!(dht.replica_holders(key).is_empty());
        assert_eq!(dht.replica_storage_bytes(), 0);
    }

    #[test]
    fn hot_key_crosses_threshold_and_cools_back_down() {
        let mut dht = hot_dht(24, 3);
        let key = RingId::hash_str("head term");
        dht.put(0, key, vec![9; 32], TrafficCategory::Indexing)
            .unwrap();
        heat(&mut dht, key, 10);
        assert!(dht.replication().is_replicated(key));
        let holders = dht.replica_holders(key);
        assert_eq!(holders.len(), 3);
        let primary = dht.responsible_for(key).unwrap();
        assert!(!holders.contains(&primary), "replica set excludes primary");
        assert_eq!(
            holders,
            dht.replica_targets(key, 3),
            "successor-set placement"
        );
        let stats = dht.replication().stats();
        assert_eq!(stats.replications, 1);

        // Cooling: probes for other keys decay the EWMA; the sweep withdraws.
        for i in 0..2_000u64 {
            let other = RingId::hash_u64(i);
            dht.record_probe(other, dht.responsible_for(other).unwrap());
        }
        assert_eq!(dht.maintain_replicas(), 1);
        assert!(!dht.replication().is_replicated(key));
        assert!(dht.replica_holders(key).is_empty());
        assert_eq!(dht.replication().stats().withdrawals, 1);
    }

    #[test]
    fn replication_charges_overlay_traffic_only() {
        let mut dht = hot_dht(16, 2);
        let key = RingId::hash_str("charged");
        dht.put(0, key, vec![7; 100], TrafficCategory::Indexing)
            .unwrap();
        let before = dht.stats_snapshot();
        heat(&mut dht, key, 10);
        let delta = dht.stats_snapshot().since(&before);
        assert!(delta.category(TrafficCategory::Overlay).bytes >= 2 * 100);
        assert_eq!(delta.category(TrafficCategory::Retrieval).bytes, 0);
        assert_eq!(delta.category(TrafficCategory::Indexing).bytes, 0);
    }

    #[test]
    fn least_loaded_holder_spreads_serves() {
        let mut dht = hot_dht(24, 3);
        let key = RingId::hash_str("balanced");
        dht.put(0, key, vec![1, 2], TrafficCategory::Indexing)
            .unwrap();
        heat(&mut dht, key, 10);
        // Serve through the replica-aware read path; the serves should now be
        // spread over primary + 3 replicas instead of hammering one peer.
        let mut served = std::collections::BTreeMap::new();
        for i in 0..80 {
            let origin = dht.live_peer_indices()[i % 24];
            let (_, value, by) = dht
                .get_replicated(origin, key, TrafficCategory::Retrieval)
                .unwrap();
            assert_eq!(value, Some(vec![1, 2]));
            *served.entry(by).or_insert(0u64) += 1;
        }
        assert!(served.len() >= 3, "serves spread over holders: {served:?}");
        let max = served.values().max().copied().unwrap();
        assert!(max <= 40, "no single holder serves everything: {served:?}");
        assert!(dht.replication().stats().replica_serves > 0);
    }

    #[test]
    fn sync_keeps_copies_identical_after_updates() {
        let mut dht = hot_dht(16, 2);
        let key = RingId::hash_str("synced");
        dht.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        heat(&mut dht, key, 10);
        dht.put_replicated(0, key, vec![1, 2, 3], TrafficCategory::Indexing)
            .unwrap();
        for h in dht.replica_holders(key) {
            assert_eq!(dht.peer(h).replica_store.get(&key), Some(&vec![1, 2, 3]));
        }
        assert!(dht.replication().stats().syncs > 0);
    }

    #[test]
    fn failed_primary_recovers_from_a_replica() {
        let mut dht = hot_dht(24, 3);
        let key = RingId::hash_str("survivor");
        dht.put(0, key, vec![42; 16], TrafficCategory::Indexing)
            .unwrap();
        heat(&mut dht, key, 10);
        let primary = dht.responsible_for(key).unwrap();
        let lost = dht.fail(primary).unwrap();
        assert_eq!(lost, 0, "the replicated key is recovered, not lost");
        // The new primary holds the value; the set re-converged onto the new
        // successor list.
        let new_primary = dht.responsible_for(key).unwrap();
        assert_ne!(new_primary, primary);
        assert_eq!(dht.peer(new_primary).store.get(&key), Some(&vec![42; 16]));
        let holders = dht.replica_holders(key);
        assert_eq!(holders, dht.replica_targets(key, 3));
        assert!(!holders.contains(&new_primary));
        assert!(dht.replication().stats().recovered >= 1);
        // And it is still readable over the overlay.
        let origin = dht.live_peer_indices()[0];
        let (_, v, _) = dht
            .get_replicated(origin, key, TrafficCategory::Retrieval)
            .unwrap();
        assert_eq!(v, Some(vec![42; 16]));
    }

    #[test]
    fn join_retargets_replica_sets() {
        let mut dht = hot_dht(16, 2);
        let key = RingId::hash_str("moving");
        dht.put(0, key, vec![5; 8], TrafficCategory::Indexing)
            .unwrap();
        heat(&mut dht, key, 10);
        // Join a peer right at the key so it takes over as primary.
        let new_idx = dht.join(key).expect("fresh id");
        assert_eq!(dht.responsible_for(key).unwrap(), new_idx);
        assert!(
            dht.peer(new_idx).store.contains(&key),
            "handoff moved the value"
        );
        let holders = dht.replica_holders(key);
        assert_eq!(holders, dht.replica_targets(key, 2));
        assert!(!holders.contains(&new_idx));
        assert!(
            !dht.peer(new_idx).replica_store.contains(&key),
            "a promoted primary keeps no replica copy"
        );
    }

    #[test]
    fn set_policy_withdraws_existing_replicas() {
        let mut dht = hot_dht(16, 2);
        let key = RingId::hash_str("reset");
        dht.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        heat(&mut dht, key, 10);
        assert_eq!(dht.replication().replicated_keys(), 1);
        dht.set_replication_policy(Arc::new(NoReplication));
        assert_eq!(dht.replication().replicated_keys(), 0);
        assert_eq!(dht.replica_storage_bytes(), 0);
        assert_eq!(dht.replication().policy().label(), "none");
    }

    #[test]
    fn lost_syncs_leave_stale_copies_and_repair_pulls_them_fresh() {
        let mut dht = hot_dht(24, 3);
        dht.set_replica_faults(99, 1.0); // every sync message is dropped
        let key = RingId::hash_str("stale prone");
        dht.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        heat(&mut dht, key, 10);
        assert_eq!(dht.replica_holders(key).len(), 3);
        assert_eq!(dht.replica_consistency(), 1.0, "placement itself is clean");
        // An update whose syncs are all dropped: holders keep the old copy.
        dht.put_replicated(0, key, vec![9, 9, 9], TrafficCategory::Indexing)
            .unwrap();
        assert!(dht.replica_consistency() < 1.0);
        for h in dht.replica_holders(key) {
            assert_eq!(dht.peer(h).replica_store.get(&key), Some(&vec![1]));
        }
        // Repair detects the stale copies via the version digests and pulls
        // fresh ones from the primary, charging Overlay only.
        let before = dht.stats_snapshot();
        let report = dht.repair_round();
        assert_eq!(report.stale, 3);
        assert_eq!(report.repaired, 3);
        assert_eq!(dht.replica_consistency(), 1.0);
        for h in dht.replica_holders(key) {
            assert_eq!(dht.peer(h).replica_store.get(&key), Some(&vec![9, 9, 9]));
        }
        let delta = dht.stats_snapshot().since(&before);
        assert!(delta.category(TrafficCategory::Overlay).bytes > 0);
        assert_eq!(delta.category(TrafficCategory::Retrieval).bytes, 0);
        let stats = dht.replication().stats();
        assert_eq!(stats.digests_exchanged, 3);
        assert_eq!(stats.repairs_pulled, 3);
        // A second round finds nothing to do (convergence).
        let report = dht.repair_round();
        assert_eq!(report.divergent(), 0);
        assert_eq!(report.repaired, 0);
    }

    #[test]
    fn corrupt_copies_are_detected_and_repaired() {
        let mut dht = hot_dht(24, 2);
        let key = RingId::hash_str("bit rot");
        dht.put(0, key, vec![7; 16], TrafficCategory::Indexing)
            .unwrap();
        heat(&mut dht, key, 10);
        let holders = dht.replica_holders(key);
        assert!(dht.corrupt_replica_copy(key, holders[0]));
        assert!(dht.replication().is_copy_corrupt(key, holders[0]));
        assert!(dht.replica_consistency() < 1.0);
        let report = dht.repair_round();
        assert_eq!(report.corrupt, 1);
        assert_eq!(report.repaired, 1);
        assert!(!dht.replication().is_copy_corrupt(key, holders[0]));
        assert_eq!(dht.replica_consistency(), 1.0);
        // Corrupting a non-holder is a no-op.
        let primary = dht.responsible_for(key).unwrap();
        assert!(!dht.corrupt_replica_copy(key, primary));
    }

    #[test]
    fn repair_skips_unresponsive_peers_and_sources_from_the_freshest() {
        let mut dht = hot_dht(24, 3);
        dht.set_replica_faults(5, 1.0);
        let key = RingId::hash_str("partial repair");
        dht.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        heat(&mut dht, key, 10);
        dht.put_replicated(0, key, vec![2, 2], TrafficCategory::Indexing)
            .unwrap();
        let holders = dht.replica_holders(key);
        let down: BTreeSet<usize> = [holders[0]].into();
        let report = dht.repair_round_excluding(&down);
        // Only the responsive holders were checked and fixed.
        assert_eq!(report.digests_exchanged, 2);
        assert_eq!(report.repaired, 2);
        assert_eq!(dht.peer(holders[0]).replica_store.get(&key), Some(&vec![1]));
        assert!(dht.replica_consistency_excluding(&down) >= 1.0);
        assert!(dht.replica_consistency() < 1.0, "the down holder is stale");
        // Once responsive again, the next round fixes the last copy.
        let report = dht.repair_round();
        assert_eq!(report.repaired, 1);
        assert_eq!(dht.replica_consistency(), 1.0);
    }

    #[test]
    fn sync_loss_draws_are_deterministic_and_rate_bounded() {
        let key = RingId(42);
        let a: Vec<bool> = (0..512)
            .map(|s| sync_message_lost(7, 0.3, key, s, 0))
            .collect();
        let b: Vec<bool> = (0..512)
            .map(|s| sync_message_lost(7, 0.3, key, s, 0))
            .collect();
        assert_eq!(a, b);
        let lost = a.iter().filter(|l| **l).count();
        assert!((100..210).contains(&lost), "~30% of 512, got {lost}");
        assert!(
            !sync_message_lost(7, 0.0, key, 1, 0),
            "zero rate never fires"
        );
    }

    #[test]
    fn repair_disabled_overlay_stays_clean_without_faults() {
        let mut dht = hot_dht(16, 2);
        assert!(!dht.replication().repair_enabled());
        let key = RingId::hash_str("healthy");
        dht.put(0, key, vec![3; 8], TrafficCategory::Indexing)
            .unwrap();
        heat(&mut dht, key, 10);
        dht.put_replicated(0, key, vec![4; 8], TrafficCategory::Indexing)
            .unwrap();
        assert_eq!(dht.replica_consistency(), 1.0);
        // A repair round on a healthy overlay exchanges digests but moves no
        // bytes of content.
        let report = dht.repair_round();
        assert_eq!(report.divergent(), 0);
        assert_eq!(report.repaired, 0);
        assert!(report.digests_exchanged > 0);
    }

    #[test]
    fn replica_targets_cap_at_population() {
        let mut dht = hot_dht(3, 8);
        let key = RingId::hash_str("tiny ring");
        dht.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        heat(&mut dht, key, 10);
        let holders = dht.replica_holders(key);
        assert_eq!(holders.len(), 2, "only n-1 replicas exist on a 3-peer ring");
    }
}
