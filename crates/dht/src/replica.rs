//! Skew-aware replication of hot keys onto ring successor sets.
//!
//! Zipfian query logs concentrate most probe traffic on the few ring positions
//! owning head terms — the skew regime that provably limits parallel speedup
//! (Beame et al., "Skew in Parallel Query Processing") and that skew-aware
//! replication of heavy keys attacks directly. This module adds that layer to
//! the overlay:
//!
//! * [`ReplicationPolicy`] — the seam deciding *when* a stored key is hot
//!   enough to replicate and when it has cooled enough to withdraw. Built-ins:
//!   [`NoReplication`] (today's semantics, the default — every key lives only
//!   at its responsible peer) and [`HotKeyReplication`] (hysteresis thresholds
//!   over an EWMA probe load).
//! * [`LoadTracker`] — per-key and per-peer EWMA probe counters. In the
//!   deployed system each responsible peer tracks the keys it stores (the same
//!   served-request signals the congestion controller in [`crate::congestion`]
//!   reacts to); the simulator keeps the union of those per-node trackers in
//!   one structure, which is equivalent because every key has exactly one
//!   responsible peer observing its probes.
//! * [`ReplicaManager`] — the bookkeeping carried by [`Dht`]: the active
//!   policy, the tracker and the *replica directory* mapping each replicated
//!   key to the peers currently holding a copy.
//!
//! Replica copies live in a **separate** per-peer store
//! ([`crate::node::Peer::replica_store`]), never in the primary store, so the
//! overlay's core invariant — a key's primary value lives exactly at its
//! responsible peer — is untouched and [`NoReplication`] is byte-identical to
//! the pre-replication overlay.
//!
//! Replication never changes *what* a request returns, only *where* it is
//! served: copies are kept byte-identical to the primary (synced on every
//! publish through [`Dht::sync_replicas`]), so any live holder can answer.
//! On churn the replica sets re-converge onto the new successor lists
//! ([`Dht::reconverge_replicas`], called by join/leave/fail), and a failed
//! primary's value is recovered from a surviving replica instead of being
//! lost.

use crate::id::RingId;
use crate::network::Dht;
use alvisp2p_netsim::wire::ENVELOPE_OVERHEAD;
use alvisp2p_netsim::{TrafficCategory, WireSize};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Policy seam
// ---------------------------------------------------------------------------

/// Decides when a stored key is replicated onto its ring successor set and
/// when the replicas are withdrawn again.
///
/// The decisions are driven by an EWMA probe load per key (see
/// [`LoadTracker`]): `should_replicate` is consulted for keys that are not
/// yet replicated, `should_withdraw` for keys that are — keeping the two
/// thresholds apart gives hysteresis, so a key oscillating around one
/// threshold does not thrash copies on and off the network.
///
/// # Worked example
///
/// A hot key crosses the threshold after a burst of probes and is copied onto
/// its two ring successors; the replica set never contains the primary:
///
/// ```
/// use alvisp2p_dht::replica::HotKeyReplication;
/// use alvisp2p_dht::{Dht, DhtConfig, RingId};
/// use alvisp2p_netsim::TrafficCategory;
/// use std::sync::Arc;
///
/// let mut dht: Dht<Vec<u8>> = Dht::with_peers(DhtConfig::default(), 7, 32);
/// dht.set_replication_policy(Arc::new(HotKeyReplication::new(2)));
///
/// let key = RingId::hash_str("hot term");
/// dht.put(0, key, vec![1, 2, 3], TrafficCategory::Indexing).unwrap();
/// let primary = dht.responsible_for(key).unwrap();
///
/// // A burst of probes drives the key's EWMA load over the hot threshold …
/// for _ in 0..16 {
///     dht.record_probe(key, primary);
/// }
/// // … and the key is now replicated onto its two ring successors.
/// let holders = dht.replica_holders(key);
/// assert_eq!(holders.len(), 2);
/// assert!(!holders.contains(&primary));
/// for h in holders {
///     assert_eq!(dht.peer(h).replica_store.get(&key), Some(&vec![1, 2, 3]));
/// }
/// ```
pub trait ReplicationPolicy: std::fmt::Debug + Send + Sync {
    /// A short label used in reports and experiment output.
    fn label(&self) -> &str;

    /// Number of replicas (beyond the primary) a hot key is copied onto.
    /// `0` disables replication entirely. Co-tune this with
    /// [`crate::network::DhtConfig::successor_list_len`]: a factor no larger
    /// than the successor-list length keeps every replica inside the primary's
    /// successor list, where lookups terminate anyway.
    fn replication_factor(&self) -> usize;

    /// Whether a not-yet-replicated key at this EWMA probe load is hot enough
    /// to replicate.
    fn should_replicate(&self, load: f64) -> bool;

    /// Whether a replicated key at this EWMA probe load has cooled enough to
    /// withdraw its copies.
    fn should_withdraw(&self, load: f64) -> bool;

    /// Half-life, in observed probes network-wide, of the EWMA load tracker.
    fn half_life(&self) -> f64 {
        64.0
    }

    /// Whether the overlay needs to feed the load tracker at all. Policies
    /// that never replicate return `false`, keeping the probe hot path free
    /// of tracking cost.
    fn tracks(&self) -> bool {
        self.replication_factor() > 0
    }
}

/// The default policy: never replicate. Byte-identical to the
/// pre-replication overlay — no tracking, no copies, no directory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoReplication;

impl ReplicationPolicy for NoReplication {
    fn label(&self) -> &str {
        "none"
    }

    fn replication_factor(&self) -> usize {
        0
    }

    fn should_replicate(&self, _load: f64) -> bool {
        false
    }

    fn should_withdraw(&self, _load: f64) -> bool {
        true
    }
}

/// Replicates a key onto its ring successor set while its EWMA probe load
/// stays hot, with hysteresis between the replicate and withdraw thresholds.
///
/// With the default half-life of 64 probes the steady-state load of a key
/// receiving a fraction `p` of all probes is ≈ `92·p`, so the default
/// `hot_threshold` of 2.0 replicates keys drawing more than ≈ 2% of the
/// network's probe traffic.
#[derive(Clone, Debug, PartialEq)]
pub struct HotKeyReplication {
    /// Number of successor-set replicas per hot key (see
    /// [`ReplicationPolicy::replication_factor`]).
    pub factor: usize,
    /// EWMA load above which a key is replicated.
    pub hot_threshold: f64,
    /// EWMA load below which a replicated key is withdrawn. Must be below
    /// `hot_threshold` for useful hysteresis.
    pub cool_threshold: f64,
    /// Half-life of the EWMA tracker, in observed probes network-wide.
    pub half_life: f64,
}

impl Default for HotKeyReplication {
    fn default() -> Self {
        HotKeyReplication {
            factor: 3,
            hot_threshold: 2.0,
            cool_threshold: 0.5,
            half_life: 64.0,
        }
    }
}

impl HotKeyReplication {
    /// A policy replicating hot keys onto `factor` successors with the
    /// default thresholds.
    pub fn new(factor: usize) -> Self {
        HotKeyReplication {
            factor,
            ..Default::default()
        }
    }
}

impl ReplicationPolicy for HotKeyReplication {
    fn label(&self) -> &str {
        "hot-key"
    }

    fn replication_factor(&self) -> usize {
        self.factor
    }

    fn should_replicate(&self, load: f64) -> bool {
        load >= self.hot_threshold
    }

    fn should_withdraw(&self, load: f64) -> bool {
        load <= self.cool_threshold
    }

    fn half_life(&self) -> f64 {
        self.half_life
    }
}

// ---------------------------------------------------------------------------
// Load tracking
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Ewma {
    value: f64,
    at: u64,
}

/// EWMA probe-load counters per stored key and per serving peer.
///
/// The clock is the number of probes observed network-wide: every
/// [`LoadTracker::observe`] advances it by one and adds one unit of load to
/// the probed key and the serving peer, with all loads decaying by a factor
/// of two every `half_life` ticks. Decay is applied lazily, so idle keys
/// cost nothing.
#[derive(Clone, Debug)]
pub struct LoadTracker {
    half_life: f64,
    tick: u64,
    keys: HashMap<RingId, Ewma>,
    peers: HashMap<usize, Ewma>,
}

impl LoadTracker {
    /// Creates a tracker whose loads halve every `half_life` observed probes.
    pub fn new(half_life: f64) -> Self {
        LoadTracker {
            half_life: half_life.max(1.0),
            tick: 0,
            keys: HashMap::new(),
            peers: HashMap::new(),
        }
    }

    fn decayed(&self, e: &Ewma) -> f64 {
        let dt = (self.tick - e.at) as f64;
        e.value * (-dt / self.half_life).exp2()
    }

    /// Records one probe for `key` served by peer `served_by`; advances the
    /// clock and returns the key's updated load.
    pub fn observe(&mut self, key: RingId, served_by: usize) -> f64 {
        self.tick += 1;
        let tick = self.tick;
        let half_life = self.half_life;
        let bump = |slot: &mut Ewma| {
            let dt = (tick - slot.at) as f64;
            slot.value = slot.value * (-dt / half_life).exp2() + 1.0;
            slot.at = tick;
        };
        let key_slot = self.keys.entry(key).or_insert(Ewma {
            value: 0.0,
            at: tick,
        });
        bump(key_slot);
        let key_load = key_slot.value;
        let peer_slot = self.peers.entry(served_by).or_insert(Ewma {
            value: 0.0,
            at: tick,
        });
        bump(peer_slot);
        key_load
    }

    /// The key's current (decayed) EWMA probe load.
    pub fn key_load(&self, key: RingId) -> f64 {
        self.keys.get(&key).map(|e| self.decayed(e)).unwrap_or(0.0)
    }

    /// The peer's current (decayed) EWMA serve load.
    pub fn peer_load(&self, peer: usize) -> f64 {
        self.peers
            .get(&peer)
            .map(|e| self.decayed(e))
            .unwrap_or(0.0)
    }

    /// Number of probes observed so far (the tracker's clock).
    pub fn observed(&self) -> u64 {
        self.tick
    }
}

// ---------------------------------------------------------------------------
// Manager state carried by the Dht
// ---------------------------------------------------------------------------

/// Counters describing the replication subsystem's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaStats {
    /// Keys replicated onto their successor set (hysteresis upward crossings).
    pub replications: u64,
    /// Replica sets withdrawn after cooling down.
    pub withdrawals: u64,
    /// Probes served by a replica instead of the primary.
    pub replica_serves: u64,
    /// Publish-path refreshes of existing replica copies.
    pub syncs: u64,
    /// Primary values recovered from a replica after an abrupt failure.
    pub recovered: u64,
}

/// The replication bookkeeping carried by a [`Dht`]: the active policy, the
/// EWMA load tracker and the replica directory (key → holder peer indices).
#[derive(Debug)]
pub struct ReplicaManager {
    policy: Arc<dyn ReplicationPolicy>,
    tracker: LoadTracker,
    directory: BTreeMap<RingId, Vec<usize>>,
    stats: ReplicaStats,
}

impl ReplicaManager {
    pub(crate) fn new(policy: Arc<dyn ReplicationPolicy>) -> Self {
        let half_life = policy.half_life();
        ReplicaManager {
            policy,
            tracker: LoadTracker::new(half_life),
            directory: BTreeMap::new(),
            stats: ReplicaStats::default(),
        }
    }

    /// The active replication policy.
    pub fn policy(&self) -> &Arc<dyn ReplicationPolicy> {
        &self.policy
    }

    /// Activity counters.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// Number of currently replicated keys.
    pub fn replicated_keys(&self) -> usize {
        self.directory.len()
    }

    /// Whether `key` currently has a replica set.
    pub fn is_replicated(&self, key: RingId) -> bool {
        self.directory.contains_key(&key)
    }

    /// All currently replicated keys, in ring order.
    pub fn replicated_key_list(&self) -> Vec<RingId> {
        self.directory.keys().copied().collect()
    }

    /// The key's current EWMA probe load.
    pub fn key_load(&self, key: RingId) -> f64 {
        self.tracker.key_load(key)
    }

    /// The peer's current EWMA serve load.
    pub fn peer_load(&self, peer: usize) -> f64 {
        self.tracker.peer_load(peer)
    }

    /// Number of probes the tracker has observed.
    pub fn observed_probes(&self) -> u64 {
        self.tracker.observed()
    }

    pub(crate) fn observe(&mut self, key: RingId, served_by: usize) -> f64 {
        self.tracker.observe(key, served_by)
    }

    pub(crate) fn holders_raw(&self, key: RingId) -> Vec<usize> {
        self.directory.get(&key).cloned().unwrap_or_default()
    }

    pub(crate) fn set_holders(&mut self, key: RingId, holders: Vec<usize>) {
        self.directory.insert(key, holders);
    }

    pub(crate) fn remove_holders(&mut self, key: RingId) -> Option<Vec<usize>> {
        self.directory.remove(&key)
    }

    pub(crate) fn stats_mut(&mut self) -> &mut ReplicaStats {
        &mut self.stats
    }
}

/// What a [`Dht::reconverge_replicas`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconvergeReport {
    /// Primary values recovered from a surviving replica.
    pub recovered: usize,
    /// Replica copies (re)placed onto new successor-set members.
    pub refreshed: usize,
    /// Replicated keys whose every copy was lost (bookkeeping dropped).
    pub lost: usize,
}

// ---------------------------------------------------------------------------
// Replica-aware overlay operations
// ---------------------------------------------------------------------------

impl<V: Clone + WireSize> Dht<V> {
    /// Replaces the replication policy, withdrawing any existing replicas
    /// first (the new policy starts from a clean slate).
    pub fn set_replication_policy(&mut self, policy: Arc<dyn ReplicationPolicy>) {
        for key in self.replication().replicated_key_list() {
            self.withdraw_replicas(key);
        }
        *self.replicas_mut() = ReplicaManager::new(policy);
    }

    /// The first `factor` live ring successors of `key`'s responsible peer —
    /// where the key's replicas are placed. Never contains the primary.
    pub fn replica_targets(&self, key: RingId, factor: usize) -> Vec<usize> {
        let Ok(primary) = self.responsible_for(key) else {
            return Vec::new();
        };
        let ring = self.ring();
        let Some(rank) = ring.rank_of(self.peer(primary).id) else {
            return Vec::new();
        };
        let n = ring.len();
        let mut targets = Vec::new();
        for step in 1..n {
            if targets.len() >= factor {
                break;
            }
            let (_, idx) = ring.at_rank(rank + step);
            if idx != primary && !targets.contains(&idx) {
                targets.push(idx);
            }
        }
        targets
    }

    /// The live peers currently holding a replica of `key` (primary excluded).
    pub fn replica_holders(&self, key: RingId) -> Vec<usize> {
        let mut holders = self.replication().holders_raw(key);
        holders.retain(|&h| {
            h < self.peer_slots() && self.peer(h).alive && self.peer(h).replica_store.contains(&key)
        });
        holders
    }

    /// The least-loaded live holder of `key` (primary included), by EWMA serve
    /// load with the primary winning ties — the probe-routing decision.
    pub fn least_loaded_holder(&self, key: RingId) -> Option<usize> {
        let primary = self.responsible_for(key).ok()?;
        let mut best = primary;
        let mut best_load = self.replication().peer_load(primary);
        for h in self.replica_holders(key) {
            let load = self.replication().peer_load(h);
            if load < best_load {
                best = h;
                best_load = load;
            }
        }
        Some(best)
    }

    /// Feeds one observed probe for `key` (served by peer `served_by`) into
    /// the load tracker and applies the policy's hysteresis: a key crossing
    /// the hot threshold is replicated onto its successor set, a replicated
    /// key that cooled below the withdraw threshold has its copies revoked.
    ///
    /// No-op (and free) under a policy that does not track, such as
    /// [`NoReplication`].
    pub fn record_probe(&mut self, key: RingId, served_by: usize) {
        if !self.replication().policy().tracks() {
            return;
        }
        let load = self.replicas_mut().observe(key, served_by);
        if let Ok(primary) = self.responsible_for(key) {
            if served_by != primary {
                self.replicas_mut().stats_mut().replica_serves += 1;
            }
        }
        let replicated = self.replication().is_replicated(key);
        let (replicate, withdraw) = {
            let policy = self.replication().policy();
            (
                !replicated && policy.should_replicate(load),
                replicated && policy.should_withdraw(load),
            )
        };
        if withdraw {
            self.withdraw_replicas(key);
        } else if replicate {
            self.replicate_key(key);
        }
    }

    /// Copies `key`'s stored value onto its successor-set targets and records
    /// the replica set in the directory. Transfer bytes are charged to
    /// [`TrafficCategory::Overlay`]. No-op if the key has no stored value.
    fn replicate_key(&mut self, key: RingId) {
        let factor = self.replication().policy().replication_factor();
        if factor == 0 {
            return;
        }
        let Ok(primary) = self.responsible_for(key) else {
            return;
        };
        let Some(value) = self.peer(primary).store.get(&key).cloned() else {
            return;
        };
        let targets = self.replica_targets(key, factor);
        if targets.is_empty() {
            return;
        }
        let bytes_per_copy = 8 + value.wire_size() + ENVELOPE_OVERHEAD;
        for &t in &targets {
            self.peer_mut(t).replica_store.insert(key, value.clone());
            self.record_overlay(bytes_per_copy);
        }
        self.replicas_mut().set_holders(key, targets);
        self.replicas_mut().stats_mut().replications += 1;
    }

    /// Revokes all replica copies of `key` (small control message per holder,
    /// charged to [`TrafficCategory::Overlay`]). Returns whether the key was
    /// replicated.
    pub fn withdraw_replicas(&mut self, key: RingId) -> bool {
        let Some(holders) = self.replicas_mut().remove_holders(key) else {
            return false;
        };
        for h in holders {
            if h < self.peer_slots() {
                self.peer_mut(h).replica_store.remove(&key);
            }
            self.record_overlay(16 + ENVELOPE_OVERHEAD);
        }
        self.replicas_mut().stats_mut().withdrawals += 1;
        true
    }

    /// Refreshes every replica copy of `key` from the primary's current value
    /// (called by the layer above after mutating the primary, so copies stay
    /// byte-identical and any holder can serve). Transfer bytes are charged to
    /// `category`. No-op if the key is not replicated.
    pub fn sync_replicas(&mut self, key: RingId, category: TrafficCategory) {
        let holders = self.replication().holders_raw(key);
        if holders.is_empty() {
            return;
        }
        let Ok(primary) = self.responsible_for(key) else {
            return;
        };
        let Some(value) = self.peer(primary).store.get(&key).cloned() else {
            // The primary value is gone (evicted/removed): the copies go too.
            self.withdraw_replicas(key);
            return;
        };
        let bytes = 8 + value.wire_size();
        for h in holders {
            if h < self.peer_slots() && self.peer(h).alive {
                self.peer_mut(h).replica_store.insert(key, value.clone());
                self.charge_external(category, bytes);
            }
        }
        self.replicas_mut().stats_mut().syncs += 1;
    }

    /// Withdraws every replicated key that has cooled below the policy's
    /// withdraw threshold (a periodic sweep complementing the probe-driven
    /// hysteresis, which only re-evaluates keys that are still being probed).
    /// Returns the number of keys withdrawn.
    pub fn maintain_replicas(&mut self) -> usize {
        let policy = Arc::clone(self.replication().policy());
        if !policy.tracks() {
            return 0;
        }
        let mut withdrawn = 0;
        for key in self.replication().replicated_key_list() {
            if policy.should_withdraw(self.replication().key_load(key)) {
                self.withdraw_replicas(key);
                withdrawn += 1;
            }
        }
        withdrawn
    }

    /// Re-converges every replica set after a membership change: recovers a
    /// failed primary's value from a surviving replica, re-targets each set at
    /// the current successor list, places missing copies and removes copies
    /// from peers that left the set. Called by
    /// [`Dht::join`]/[`Dht::leave`]/[`Dht::fail`]; free under
    /// [`NoReplication`] (empty directory).
    pub fn reconverge_replicas(&mut self) -> ReconvergeReport {
        let mut report = ReconvergeReport::default();
        let factor = self.replication().policy().replication_factor();
        for key in self.replication().replicated_key_list() {
            let Ok(primary) = self.responsible_for(key) else {
                self.replicas_mut().remove_holders(key);
                continue;
            };
            // Recover or promote the value if the current primary lacks it
            // (its previous owner failed, or responsibility moved onto a
            // peer that held a replica).
            if !self.peer(primary).store.contains(&key) {
                if let Some(v) = self.peer_mut(primary).replica_store.remove(&key) {
                    self.peer_mut(primary).store.insert(key, v);
                    report.recovered += 1;
                } else {
                    let copy = self
                        .replication()
                        .holders_raw(key)
                        .into_iter()
                        .filter(|&h| h < self.peer_slots() && self.peer(h).alive)
                        .find_map(|h| self.peer(h).replica_store.get(&key).cloned());
                    if let Some(v) = copy {
                        let bytes = 8 + v.wire_size() + ENVELOPE_OVERHEAD;
                        self.peer_mut(primary).store.insert(key, v);
                        self.record_overlay(bytes);
                        report.recovered += 1;
                    }
                }
            }
            if !self.peer(primary).store.contains(&key) {
                // Every copy died with its holder: the entry is gone (the
                // layer above re-publishes, as with any abrupt failure).
                if let Some(old) = self.replicas_mut().remove_holders(key) {
                    for h in old {
                        if h < self.peer_slots() {
                            self.peer_mut(h).replica_store.remove(&key);
                        }
                    }
                }
                report.lost += 1;
                continue;
            }
            // Re-target the set at the current successor list.
            let targets = self.replica_targets(key, factor);
            let old = self.replication().holders_raw(key);
            for h in old {
                if !targets.contains(&h) && h < self.peer_slots() {
                    self.peer_mut(h).replica_store.remove(&key);
                }
            }
            if targets.is_empty() {
                self.replicas_mut().remove_holders(key);
                continue;
            }
            let value = self
                .peer(primary)
                .store
                .get(&key)
                .cloned()
                .expect("checked above");
            let bytes_per_copy = 8 + value.wire_size() + ENVELOPE_OVERHEAD;
            for &t in &targets {
                if !self.peer(t).replica_store.contains(&key) {
                    self.peer_mut(t).replica_store.insert(key, value.clone());
                    self.record_overlay(bytes_per_copy);
                    report.refreshed += 1;
                }
            }
            self.replicas_mut().set_holders(key, targets);
        }
        self.replicas_mut().stats_mut().recovered += report.recovered as u64;
        report
    }

    /// Replica-aware fetch: routes the request for `key` as usual (same hops
    /// and routing charges as [`Dht::get`] — the request travels into the
    /// key's ring neighbourhood, where primary and replicas sit side by side),
    /// then serves the value from the least-loaded live holder. Feeds the load
    /// tracker, so hot keys replicate and cool keys withdraw as a side effect.
    ///
    /// Returns the route, the value and the index of the serving peer.
    #[allow(clippy::type_complexity)]
    pub fn get_replicated(
        &mut self,
        from: usize,
        key: RingId,
        category: TrafficCategory,
    ) -> Result<(crate::network::RouteInfo, Option<V>, usize), crate::network::DhtError> {
        let info = self.route(from, key, category)?;
        let served_by = self.least_loaded_holder(key).unwrap_or(info.responsible);
        self.peer_mut(served_by).served_requests += 1;
        let value = {
            let p = self.peer(served_by);
            p.store
                .get(&key)
                .cloned()
                .or_else(|| p.replica_store.get(&key).cloned())
        };
        self.charge_external(category, value.as_ref().map(|v| v.wire_size()).unwrap_or(1));
        self.record_probe(key, served_by);
        Ok((info, value, served_by))
    }

    /// Replica-aware store: [`Dht::put`] followed by a refresh of any existing
    /// replica copies, so holders never serve a stale value.
    pub fn put_replicated(
        &mut self,
        from: usize,
        key: RingId,
        value: V,
        category: TrafficCategory,
    ) -> Result<crate::network::RouteInfo, crate::network::DhtError> {
        let info = self.put(from, key, value, category)?;
        self.sync_replicas(key, category);
        Ok(info)
    }

    /// Total approximate bytes of replica copies across all live peers.
    pub fn replica_storage_bytes(&self) -> usize {
        self.live_peer_indices()
            .into_iter()
            .map(|i| self.peer(i).replica_store.storage_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DhtConfig;

    fn hot_dht(n: usize, factor: usize) -> Dht<Vec<u8>> {
        let mut dht: Dht<Vec<u8>> = Dht::with_peers(DhtConfig::default(), 11, n);
        dht.set_replication_policy(Arc::new(HotKeyReplication::new(factor)));
        dht
    }

    fn heat(dht: &mut Dht<Vec<u8>>, key: RingId, probes: usize) {
        let primary = dht.responsible_for(key).unwrap();
        for _ in 0..probes {
            dht.record_probe(key, primary);
        }
    }

    #[test]
    fn tracker_decays_with_half_life() {
        let mut t = LoadTracker::new(4.0);
        let key = RingId(1);
        for _ in 0..3 {
            t.observe(key, 0);
        }
        let hot = t.key_load(key);
        assert!(hot > 2.0, "three consecutive probes accumulate, got {hot}");
        // Four probes for other keys later, the load has halved.
        for i in 0..4u64 {
            t.observe(RingId(100 + i), 1);
        }
        let cooled = t.key_load(key);
        assert!(
            (cooled - hot / 2.0).abs() < 1e-9,
            "half-life decay: {hot} -> {cooled}"
        );
        assert!(t.peer_load(0) > 0.0 && t.peer_load(1) > 0.0);
        assert_eq!(t.observed(), 7);
    }

    #[test]
    fn no_replication_tracks_nothing_and_replicates_nothing() {
        let mut dht: Dht<Vec<u8>> = Dht::with_peers(DhtConfig::default(), 3, 16);
        let key = RingId::hash_str("cold");
        dht.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        heat(&mut dht, key, 200);
        assert_eq!(dht.replication().replicated_keys(), 0);
        assert_eq!(dht.replication().observed_probes(), 0);
        assert!(dht.replica_holders(key).is_empty());
        assert_eq!(dht.replica_storage_bytes(), 0);
    }

    #[test]
    fn hot_key_crosses_threshold_and_cools_back_down() {
        let mut dht = hot_dht(24, 3);
        let key = RingId::hash_str("head term");
        dht.put(0, key, vec![9; 32], TrafficCategory::Indexing)
            .unwrap();
        heat(&mut dht, key, 10);
        assert!(dht.replication().is_replicated(key));
        let holders = dht.replica_holders(key);
        assert_eq!(holders.len(), 3);
        let primary = dht.responsible_for(key).unwrap();
        assert!(!holders.contains(&primary), "replica set excludes primary");
        assert_eq!(
            holders,
            dht.replica_targets(key, 3),
            "successor-set placement"
        );
        let stats = dht.replication().stats();
        assert_eq!(stats.replications, 1);

        // Cooling: probes for other keys decay the EWMA; the sweep withdraws.
        for i in 0..2_000u64 {
            let other = RingId::hash_u64(i);
            dht.record_probe(other, dht.responsible_for(other).unwrap());
        }
        assert_eq!(dht.maintain_replicas(), 1);
        assert!(!dht.replication().is_replicated(key));
        assert!(dht.replica_holders(key).is_empty());
        assert_eq!(dht.replication().stats().withdrawals, 1);
    }

    #[test]
    fn replication_charges_overlay_traffic_only() {
        let mut dht = hot_dht(16, 2);
        let key = RingId::hash_str("charged");
        dht.put(0, key, vec![7; 100], TrafficCategory::Indexing)
            .unwrap();
        let before = dht.stats_snapshot();
        heat(&mut dht, key, 10);
        let delta = dht.stats_snapshot().since(&before);
        assert!(delta.category(TrafficCategory::Overlay).bytes >= 2 * 100);
        assert_eq!(delta.category(TrafficCategory::Retrieval).bytes, 0);
        assert_eq!(delta.category(TrafficCategory::Indexing).bytes, 0);
    }

    #[test]
    fn least_loaded_holder_spreads_serves() {
        let mut dht = hot_dht(24, 3);
        let key = RingId::hash_str("balanced");
        dht.put(0, key, vec![1, 2], TrafficCategory::Indexing)
            .unwrap();
        heat(&mut dht, key, 10);
        // Serve through the replica-aware read path; the serves should now be
        // spread over primary + 3 replicas instead of hammering one peer.
        let mut served = std::collections::BTreeMap::new();
        for i in 0..80 {
            let origin = dht.live_peer_indices()[i % 24];
            let (_, value, by) = dht
                .get_replicated(origin, key, TrafficCategory::Retrieval)
                .unwrap();
            assert_eq!(value, Some(vec![1, 2]));
            *served.entry(by).or_insert(0u64) += 1;
        }
        assert!(served.len() >= 3, "serves spread over holders: {served:?}");
        let max = served.values().max().copied().unwrap();
        assert!(max <= 40, "no single holder serves everything: {served:?}");
        assert!(dht.replication().stats().replica_serves > 0);
    }

    #[test]
    fn sync_keeps_copies_identical_after_updates() {
        let mut dht = hot_dht(16, 2);
        let key = RingId::hash_str("synced");
        dht.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        heat(&mut dht, key, 10);
        dht.put_replicated(0, key, vec![1, 2, 3], TrafficCategory::Indexing)
            .unwrap();
        for h in dht.replica_holders(key) {
            assert_eq!(dht.peer(h).replica_store.get(&key), Some(&vec![1, 2, 3]));
        }
        assert!(dht.replication().stats().syncs > 0);
    }

    #[test]
    fn failed_primary_recovers_from_a_replica() {
        let mut dht = hot_dht(24, 3);
        let key = RingId::hash_str("survivor");
        dht.put(0, key, vec![42; 16], TrafficCategory::Indexing)
            .unwrap();
        heat(&mut dht, key, 10);
        let primary = dht.responsible_for(key).unwrap();
        let lost = dht.fail(primary).unwrap();
        assert_eq!(lost, 0, "the replicated key is recovered, not lost");
        // The new primary holds the value; the set re-converged onto the new
        // successor list.
        let new_primary = dht.responsible_for(key).unwrap();
        assert_ne!(new_primary, primary);
        assert_eq!(dht.peer(new_primary).store.get(&key), Some(&vec![42; 16]));
        let holders = dht.replica_holders(key);
        assert_eq!(holders, dht.replica_targets(key, 3));
        assert!(!holders.contains(&new_primary));
        assert!(dht.replication().stats().recovered >= 1);
        // And it is still readable over the overlay.
        let origin = dht.live_peer_indices()[0];
        let (_, v, _) = dht
            .get_replicated(origin, key, TrafficCategory::Retrieval)
            .unwrap();
        assert_eq!(v, Some(vec![42; 16]));
    }

    #[test]
    fn join_retargets_replica_sets() {
        let mut dht = hot_dht(16, 2);
        let key = RingId::hash_str("moving");
        dht.put(0, key, vec![5; 8], TrafficCategory::Indexing)
            .unwrap();
        heat(&mut dht, key, 10);
        // Join a peer right at the key so it takes over as primary.
        let new_idx = dht.join(key).expect("fresh id");
        assert_eq!(dht.responsible_for(key).unwrap(), new_idx);
        assert!(
            dht.peer(new_idx).store.contains(&key),
            "handoff moved the value"
        );
        let holders = dht.replica_holders(key);
        assert_eq!(holders, dht.replica_targets(key, 2));
        assert!(!holders.contains(&new_idx));
        assert!(
            !dht.peer(new_idx).replica_store.contains(&key),
            "a promoted primary keeps no replica copy"
        );
    }

    #[test]
    fn set_policy_withdraws_existing_replicas() {
        let mut dht = hot_dht(16, 2);
        let key = RingId::hash_str("reset");
        dht.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        heat(&mut dht, key, 10);
        assert_eq!(dht.replication().replicated_keys(), 1);
        dht.set_replication_policy(Arc::new(NoReplication));
        assert_eq!(dht.replication().replicated_keys(), 0);
        assert_eq!(dht.replica_storage_bytes(), 0);
        assert_eq!(dht.replication().policy().label(), "none");
    }

    #[test]
    fn replica_targets_cap_at_population() {
        let mut dht = hot_dht(3, 8);
        let key = RingId::hash_str("tiny ring");
        dht.put(0, key, vec![1], TrafficCategory::Indexing).unwrap();
        heat(&mut dht, key, 10);
        let holders = dht.replica_holders(key);
        assert_eq!(holders.len(), 2, "only n-1 replicas exist on a 3-peer ring");
    }
}
