//! Greedy key lookup over the overlay.
//!
//! Starting from an originating peer, the lookup repeatedly forwards towards the key:
//! at each hop the current peer picks, among its routing entries and successors, the
//! live peer that makes the most clockwise progress **without overshooting the key**.
//! When no such entry exists the key lies between the current peer and its first live
//! successor, which is then the responsible peer. With hop-space routing tables every
//! hop halves the remaining peer population, giving the O(log n) hop count the paper
//! claims for arbitrary identifier skew.

use crate::id::RingId;
use crate::node::Peer;
use crate::ring::Ring;

/// The outcome of a successful lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupResult {
    /// Index of the peer responsible for the key.
    pub responsible: usize,
    /// The peers traversed, starting with the originator and ending with the
    /// responsible peer.
    pub path: Vec<usize>,
}

impl LookupResult {
    /// Number of overlay hops (messages forwarded); 0 when the originator itself is
    /// responsible.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Performs a greedy lookup of `key` starting at peer `from`.
///
/// Returns `None` if the lookup cannot complete within `max_hops` hops (e.g. because
/// routing state is stale after churn) or if the originating peer is not alive.
pub fn lookup<V>(
    peers: &[Peer<V>],
    ring: &Ring,
    from: usize,
    key: RingId,
    max_hops: usize,
) -> Option<LookupResult> {
    if from >= peers.len() || !peers[from].alive || ring.is_empty() {
        return None;
    }
    let mut current = from;
    let mut path = vec![current];

    for _ in 0..=max_hops {
        let cur = &peers[current];
        if ring.is_responsible(cur.id, key) {
            return Some(LookupResult {
                responsible: current,
                path,
            });
        }
        let dist_to_key = cur.id.distance_to(key);

        // Closest preceding live candidate: maximal progress without overshooting.
        let mut best: Option<(u64, usize)> = None;
        for entry in cur.table.candidates() {
            if entry.peer_index >= peers.len() || !peers[entry.peer_index].alive {
                continue;
            }
            let progress = cur.id.distance_to(entry.id);
            if progress == 0 || progress > dist_to_key {
                continue;
            }
            if best.is_none_or(|(bp, _)| progress > bp) {
                best = Some((progress, entry.peer_index));
            }
        }

        let next = match best {
            Some((_, idx)) => idx,
            None => {
                // The key lies between us and our first live successor.
                cur.table
                    .successors
                    .iter()
                    .find(|e| e.peer_index < peers.len() && peers[e.peer_index].alive)
                    .map(|e| e.peer_index)?
            }
        };

        if next == current {
            return None;
        }
        current = next;
        path.push(current);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{build_routing_table, RoutingStrategy};

    fn build_network(n: usize, strategy: RoutingStrategy) -> (Vec<Peer<u32>>, Ring) {
        let ids: Vec<RingId> = (0..n)
            .map(|i| RingId(((i as u128 * u64::MAX as u128) / n as u128) as u64))
            .collect();
        let ring = Ring::from_members(ids.iter().enumerate().map(|(i, id)| (*id, i)));
        let mut peers: Vec<Peer<u32>> = ids.iter().map(|id| Peer::new(*id)).collect();
        for p in peers.iter_mut() {
            p.table = build_routing_table(p.id, &ring, strategy);
        }
        (peers, ring)
    }

    #[test]
    fn lookup_reaches_the_responsible_peer() {
        let (peers, ring) = build_network(64, RoutingStrategy::HopSpace);
        for key in [0u64, 12345, u64::MAX / 3, u64::MAX - 1] {
            let key = RingId(key);
            let res = lookup(&peers, &ring, 0, key, 64).expect("lookup completes");
            let expected = ring.successor_of_key(key).unwrap().1;
            assert_eq!(res.responsible, expected);
            assert_eq!(*res.path.first().unwrap(), 0);
            assert_eq!(*res.path.last().unwrap(), expected);
        }
    }

    #[test]
    fn lookup_from_responsible_peer_takes_zero_hops() {
        let (peers, ring) = build_network(16, RoutingStrategy::HopSpace);
        let key = peers[5].id; // peer 5 is its own successor for its exact id
        let res = lookup(&peers, &ring, 5, key, 16).unwrap();
        assert_eq!(res.hops(), 0);
        assert_eq!(res.responsible, 5);
    }

    #[test]
    fn hop_count_is_logarithmic_with_hopspace() {
        let (peers, ring) = build_network(256, RoutingStrategy::HopSpace);
        let log2n = 8.0;
        let mut max_hops = 0usize;
        for k in 0..200u64 {
            let key = RingId(k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let res = lookup(&peers, &ring, (k % 256) as usize, key, 512).unwrap();
            max_hops = max_hops.max(res.hops());
        }
        assert!(
            (max_hops as f64) <= log2n + 2.0,
            "max hops {max_hops} exceeds log2(n)+2"
        );
    }

    #[test]
    fn finger_lookup_also_terminates() {
        let (peers, ring) = build_network(128, RoutingStrategy::Finger);
        for k in 0..100u64 {
            let key = RingId(k.wrapping_mul(0x1234_5678_9ABC_DEF1));
            let res = lookup(&peers, &ring, (k % 128) as usize, key, 256).unwrap();
            assert_eq!(res.responsible, ring.successor_of_key(key).unwrap().1);
        }
    }

    #[test]
    fn lookup_skips_dead_candidates() {
        let (mut peers, mut ring) = build_network(32, RoutingStrategy::HopSpace);
        // Kill a peer that is *not* responsible for the key and not the originator.
        let key = RingId(u64::MAX / 2 + 12345);
        let responsible = ring.successor_of_key(key).unwrap().1;
        let victim = (0..32).find(|i| *i != responsible && *i != 0).unwrap();
        peers[victim].alive = false;
        ring.remove(peers[victim].id);
        // Rebuild tables to reflect the smaller ring (stabilisation).
        for peer in peers.iter_mut().filter(|p| p.alive) {
            peer.table = build_routing_table(peer.id, &ring, RoutingStrategy::HopSpace);
        }
        let res = lookup(&peers, &ring, 0, key, 64).unwrap();
        assert!(res.path.iter().all(|p| peers[*p].alive));
        assert_eq!(res.responsible, ring.successor_of_key(key).unwrap().1);
    }

    #[test]
    fn lookup_from_dead_or_invalid_peer_fails() {
        let (mut peers, ring) = build_network(8, RoutingStrategy::HopSpace);
        peers[3].alive = false;
        assert!(lookup(&peers, &ring, 3, RingId(1), 16).is_none());
        assert!(lookup(&peers, &ring, 99, RingId(1), 16).is_none());
    }

    #[test]
    fn lookup_fails_when_hop_budget_exhausted() {
        let (peers, ring) = build_network(64, RoutingStrategy::HopSpace);
        // A budget of zero hops only succeeds if the originator is responsible.
        let key = RingId(u64::MAX / 2 + 999);
        let responsible = ring.successor_of_key(key).unwrap().1;
        let origin = (responsible + 10) % 64;
        assert!(lookup(&peers, &ring, origin, key, 0).is_none());
    }

    #[test]
    fn single_peer_network_resolves_everything_locally() {
        let (peers, ring) = build_network(1, RoutingStrategy::HopSpace);
        let res = lookup(&peers, &ring, 0, RingId(0xDEADBEEF), 4).unwrap();
        assert_eq!(res.responsible, 0);
        assert_eq!(res.hops(), 0);
    }
}
