//! Property-based tests for the overlay: routing-table construction invariants,
//! arbitrary churn sequences, key-range handoff and storage reachability.

use alvisp2p_dht::{
    build_routing_table, build_routing_table_with, Dht, DhtConfig, HotKeyReplication,
    IdDistribution, Ring, RingId, RoutingStrategy,
};
use alvisp2p_netsim::TrafficCategory;
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

fn ring_from(ids: &[u64]) -> Ring {
    Ring::from_members(ids.iter().enumerate().map(|(i, id)| (RingId(*id), i)))
}

proptest! {
    #[test]
    fn routing_tables_never_reference_self_and_stay_logarithmic(
        ids in proptest::collection::hash_set(any::<u64>(), 2..300),
        finger: bool,
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let ring = ring_from(&ids);
        let strategy = if finger { RoutingStrategy::Finger } else { RoutingStrategy::HopSpace };
        let n = ring.len();
        let bound = (n as f64).log2().ceil() as usize + 1;
        for rank in [0usize, n / 3, n - 1] {
            let (own, own_idx) = ring.at_rank(rank);
            let table = build_routing_table(own, &ring, strategy);
            prop_assert!(table.candidates().all(|e| e.peer_index != own_idx));
            prop_assert!(
                table.entries.len() <= bound.max(1),
                "{} entries for n={} ({:?})",
                table.entries.len(),
                n,
                strategy
            );
            // Every referenced peer actually exists in the ring.
            for e in table.candidates() {
                prop_assert_eq!(ring.rank_of(e.id).map(|r| ring.at_rank(r).1), Some(e.peer_index));
            }
        }
    }

    #[test]
    fn stored_values_remain_reachable_through_arbitrary_churn(
        initial_peers in 8usize..24,
        keys in proptest::collection::vec("[a-z]{3,10}", 1..25),
        // churn script: (operation, argument); op 0 = join, 1 = leave, 2 = fail
        churn in proptest::collection::vec((0u8..3, any::<u64>()), 0..12),
        seed: u64,
    ) {
        let mut dht: Dht<Vec<u8>> = Dht::with_peers(
            DhtConfig { id_distribution: IdDistribution::Uniform, ..Default::default() },
            seed,
            initial_peers,
        );
        // Store one value per key and remember it.
        let mut expected: HashMap<RingId, Vec<u8>> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            let ring_key = RingId::hash_str(key);
            let value = vec![i as u8; (i % 7) + 1];
            dht.put(i % initial_peers, ring_key, value.clone(), TrafficCategory::Indexing).unwrap();
            expected.insert(ring_key, value);
        }

        // Apply the churn script. Graceful operations must never lose data; abrupt
        // failures may lose exactly the keys stored at the failed peer.
        for (op, arg) in churn {
            match op {
                0 => {
                    let _ = dht.join(RingId::hash_u64(arg));
                }
                1 => {
                    let live = dht.live_peer_indices();
                    if live.len() > 2 {
                        let victim = live[(arg as usize) % live.len()];
                        dht.leave(victim).unwrap();
                    }
                }
                _ => {
                    let live = dht.live_peer_indices();
                    if live.len() > 2 {
                        let victim = live[(arg as usize) % live.len()];
                        // Failures lose that peer's keys: drop them from expectations.
                        let lost: Vec<RingId> = dht
                            .peer(victim)
                            .store
                            .iter()
                            .map(|(k, _)| *k)
                            .collect();
                        dht.fail(victim).unwrap();
                        for k in lost {
                            expected.remove(&k);
                        }
                    }
                }
            }
        }

        // Every expected key is still stored at its (current) responsible peer and
        // retrievable from an arbitrary live origin.
        let origins = dht.live_peer_indices();
        prop_assert!(!origins.is_empty());
        for (ring_key, value) in &expected {
            let responsible = dht.responsible_for(*ring_key).unwrap();
            prop_assert!(dht.peer(responsible).store.contains(ring_key));
            let (_, got) = dht
                .get(origins[0], *ring_key, TrafficCategory::Retrieval)
                .unwrap();
            prop_assert_eq!(got.as_ref(), Some(value));
        }
        // No key is stored at a peer that is not responsible for it (no duplicates
        // left behind by handoffs).
        let mut stored_total = 0usize;
        for idx in dht.live_peer_indices() {
            for (k, _) in dht.peer(idx).store.iter() {
                prop_assert_eq!(dht.responsible_for(*k).unwrap(), idx);
                stored_total += 1;
            }
        }
        prop_assert_eq!(stored_total, expected.len());
    }

    #[test]
    fn successor_lists_wrap_the_ring_in_clockwise_order(
        ids in proptest::collection::hash_set(any::<u64>(), 2..200),
        len in 1usize..40,
        finger: bool,
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let ring = ring_from(&ids);
        let strategy = if finger { RoutingStrategy::Finger } else { RoutingStrategy::HopSpace };
        let n = ring.len();
        // Check a low rank, a middle rank and the last rank — the last one's
        // successor list must wrap around the top of the identifier space.
        for rank in [0usize, n / 2, n - 1] {
            let (own, own_idx) = ring.at_rank(rank);
            let table = build_routing_table_with(own, &ring, strategy, len);
            prop_assert_eq!(table.successors.len(), len.min(n - 1));
            for (step, entry) in table.successors.iter().enumerate() {
                let (expect_id, expect_idx) = ring.at_rank((rank + 1 + step) % n);
                prop_assert_eq!(entry.id, expect_id, "step {} of rank {}", step, rank);
                prop_assert_eq!(entry.peer_index, expect_idx);
                prop_assert_ne!(entry.peer_index, own_idx);
            }
            // Successors are pairwise distinct (capping at n-1 guarantees the
            // wrap never re-enters the list).
            let distinct: BTreeSet<u64> = table.successors.iter().map(|e| e.id.0).collect();
            prop_assert_eq!(distinct.len(), table.successors.len());
        }
    }

    #[test]
    fn replica_sets_stay_disjoint_and_reconverge_under_churn(
        initial_peers in 8usize..20,
        keys in proptest::collection::hash_set("[a-z]{3,10}", 1..10),
        factor in 1usize..4,
        churn in proptest::collection::vec((0u8..3, any::<u64>()), 0..12),
        seed: u64,
    ) {
        let keys: Vec<String> = keys.into_iter().collect();
        let mut dht: Dht<Vec<u8>> = Dht::with_peers(
            DhtConfig {
                replication: Arc::new(HotKeyReplication::new(factor)),
                ..Default::default()
            },
            seed,
            initial_peers,
        );
        // Store every key, then probe each one hot enough to replicate.
        for (i, key) in keys.iter().enumerate() {
            let ring_key = RingId::hash_str(key);
            dht.put(i % initial_peers, ring_key, vec![i as u8; (i % 5) + 1], TrafficCategory::Indexing).unwrap();
            let primary = dht.responsible_for(ring_key).unwrap();
            for _ in 0..16 {
                dht.record_probe(ring_key, primary);
            }
            prop_assert!(dht.replication().is_replicated(ring_key));
        }

        // Arbitrary churn; joins, leaves and failures all re-converge the
        // replica placement internally.
        for (op, arg) in churn {
            let live = dht.live_peer_indices();
            match op {
                0 => { let _ = dht.join(RingId::hash_u64(arg)); }
                1 if live.len() > 2 => { dht.leave(live[(arg as usize) % live.len()]).unwrap(); }
                2 if live.len() > 2 => { let _ = dht.fail(live[(arg as usize) % live.len()]).unwrap(); }
                _ => {}
            }
        }

        let factor = dht.replication().policy().replication_factor();
        for ring_key in dht.replication().replicated_key_list() {
            let primary = dht.responsible_for(ring_key).unwrap();
            let holders = dht.replica_holders(ring_key);
            // Disjointness: the primary never holds its own replica, and no
            // peer appears twice.
            prop_assert!(!holders.contains(&primary));
            let distinct: BTreeSet<usize> = holders.iter().copied().collect();
            prop_assert_eq!(distinct.len(), holders.len());
            // Re-convergence: after any churn the holders are exactly the
            // key's current ring-successor targets.
            let mut expected = dht.replica_targets(ring_key, factor);
            let mut got = holders.clone();
            expected.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, expected);
            // Every holder carries a live copy identical to the primary's
            // canonical value, in the replica store (never the primary store).
            let canonical = dht.peer(primary).store.get(&ring_key).cloned();
            prop_assert!(canonical.is_some());
            for holder in holders {
                prop_assert_eq!(dht.peer(holder).replica_store.get(&ring_key), canonical.as_ref());
            }
        }
    }

    #[test]
    fn anti_entropy_repair_converges_from_arbitrary_divergence(
        initial_peers in 10usize..24,
        keys in proptest::collection::hash_set("[a-z]{3,10}", 1..8),
        factor in 1usize..4,
        // Per-key divergence script: whether the key gets an update whose
        // replica syncs are all dropped, and which holders to bit-rot.
        update_mask in proptest::collection::vec(any::<bool>(), 8),
        rot in proptest::collection::vec((0usize..8, any::<u64>()), 0..6),
        seed: u64,
    ) {
        let keys: Vec<String> = keys.into_iter().collect();
        let mut dht: Dht<Vec<u8>> = Dht::with_peers(
            DhtConfig {
                replication: Arc::new(HotKeyReplication::new(factor)),
                ..Default::default()
            },
            seed,
            initial_peers,
        );
        let ring_keys: Vec<RingId> = keys.iter().map(|k| RingId::hash_str(k)).collect();
        for (i, ring_key) in ring_keys.iter().enumerate() {
            dht.put(i % initial_peers, *ring_key, vec![i as u8; (i % 5) + 1], TrafficCategory::Indexing).unwrap();
            let primary = dht.responsible_for(*ring_key).unwrap();
            for _ in 0..16 {
                dht.record_probe(*ring_key, primary);
            }
            prop_assert!(dht.replication().is_replicated(*ring_key));
        }

        // Diverge: updates whose syncs are all dropped leave stale copies...
        dht.set_replica_faults(seed ^ 0xA5A5, 1.0);
        for (i, ring_key) in ring_keys.iter().enumerate() {
            if update_mask[i % update_mask.len()] {
                dht.put_replicated(i % initial_peers, *ring_key, vec![0xFE; (i % 5) + 2], TrafficCategory::Indexing).unwrap();
            }
        }
        // ...and arbitrary holders suffer bit rot.
        for (key_pick, holder_pick) in rot {
            let ring_key = ring_keys[key_pick % ring_keys.len()];
            let holders = dht.replica_holders(ring_key);
            if !holders.is_empty() {
                dht.corrupt_replica_copy(ring_key, holders[(holder_pick as usize) % holders.len()]);
            }
        }

        // Repeated repair rounds converge within a bounded number of passes:
        // each round sources every key from its freshest live holder, so one
        // clean round (no divergence detected) must arrive quickly.
        let mut clean = false;
        for _ in 0..4 {
            let report = dht.repair_round();
            if report.divergent() == 0 {
                prop_assert_eq!(report.repaired, 0);
                clean = true;
                break;
            }
            prop_assert_eq!(report.divergent(), report.repaired,
                "every divergent copy found is repaired in the same round");
        }
        prop_assert!(clean, "repair did not converge within the round bound");
        prop_assert_eq!(dht.replica_consistency(), 1.0);
        // Every holder's copy is byte-identical to the primary's canonical
        // value, and no corruption marker survives.
        for ring_key in &ring_keys {
            let primary = dht.responsible_for(*ring_key).unwrap();
            let canonical = dht.peer(primary).store.get(ring_key).cloned();
            prop_assert!(canonical.is_some());
            for holder in dht.replica_holders(*ring_key) {
                prop_assert!(!dht.replication().is_copy_corrupt(*ring_key, holder));
                prop_assert_eq!(dht.peer(holder).replica_store.get(ring_key), canonical.as_ref());
            }
        }
    }

    #[test]
    fn lookups_are_logarithmic_for_every_origin(
        n in 2usize..128,
        seed: u64,
        keys in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let dht: Dht<Vec<u8>> = Dht::with_peers(DhtConfig::default(), seed, n);
        let bound = (n as f64).log2().ceil() as usize + 2;
        for (i, key) in keys.iter().enumerate() {
            let hops = dht.probe_hops(i % n, RingId(*key)).unwrap();
            prop_assert!(hops <= bound, "hops {hops} > bound {bound} for n={n}");
        }
    }
}
