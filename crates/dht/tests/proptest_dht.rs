//! Property-based tests for the overlay: routing-table construction invariants,
//! arbitrary churn sequences, key-range handoff and storage reachability.

use alvisp2p_dht::{
    build_routing_table, Dht, DhtConfig, IdDistribution, Ring, RingId, RoutingStrategy,
};
use alvisp2p_netsim::TrafficCategory;
use proptest::prelude::*;
use std::collections::HashMap;

fn ring_from(ids: &[u64]) -> Ring {
    Ring::from_members(ids.iter().enumerate().map(|(i, id)| (RingId(*id), i)))
}

proptest! {
    #[test]
    fn routing_tables_never_reference_self_and_stay_logarithmic(
        ids in proptest::collection::hash_set(any::<u64>(), 2..300),
        finger: bool,
    ) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let ring = ring_from(&ids);
        let strategy = if finger { RoutingStrategy::Finger } else { RoutingStrategy::HopSpace };
        let n = ring.len();
        let bound = (n as f64).log2().ceil() as usize + 1;
        for rank in [0usize, n / 3, n - 1] {
            let (own, own_idx) = ring.at_rank(rank);
            let table = build_routing_table(own, &ring, strategy);
            prop_assert!(table.candidates().all(|e| e.peer_index != own_idx));
            prop_assert!(
                table.entries.len() <= bound.max(1),
                "{} entries for n={} ({:?})",
                table.entries.len(),
                n,
                strategy
            );
            // Every referenced peer actually exists in the ring.
            for e in table.candidates() {
                prop_assert_eq!(ring.rank_of(e.id).map(|r| ring.at_rank(r).1), Some(e.peer_index));
            }
        }
    }

    #[test]
    fn stored_values_remain_reachable_through_arbitrary_churn(
        initial_peers in 8usize..24,
        keys in proptest::collection::vec("[a-z]{3,10}", 1..25),
        // churn script: (operation, argument); op 0 = join, 1 = leave, 2 = fail
        churn in proptest::collection::vec((0u8..3, any::<u64>()), 0..12),
        seed: u64,
    ) {
        let mut dht: Dht<Vec<u8>> = Dht::with_peers(
            DhtConfig { id_distribution: IdDistribution::Uniform, ..Default::default() },
            seed,
            initial_peers,
        );
        // Store one value per key and remember it.
        let mut expected: HashMap<RingId, Vec<u8>> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            let ring_key = RingId::hash_str(key);
            let value = vec![i as u8; (i % 7) + 1];
            dht.put(i % initial_peers, ring_key, value.clone(), TrafficCategory::Indexing).unwrap();
            expected.insert(ring_key, value);
        }

        // Apply the churn script. Graceful operations must never lose data; abrupt
        // failures may lose exactly the keys stored at the failed peer.
        for (op, arg) in churn {
            match op {
                0 => {
                    let _ = dht.join(RingId::hash_u64(arg));
                }
                1 => {
                    let live = dht.live_peer_indices();
                    if live.len() > 2 {
                        let victim = live[(arg as usize) % live.len()];
                        dht.leave(victim).unwrap();
                    }
                }
                _ => {
                    let live = dht.live_peer_indices();
                    if live.len() > 2 {
                        let victim = live[(arg as usize) % live.len()];
                        // Failures lose that peer's keys: drop them from expectations.
                        let lost: Vec<RingId> = dht
                            .peer(victim)
                            .store
                            .iter()
                            .map(|(k, _)| *k)
                            .collect();
                        dht.fail(victim).unwrap();
                        for k in lost {
                            expected.remove(&k);
                        }
                    }
                }
            }
        }

        // Every expected key is still stored at its (current) responsible peer and
        // retrievable from an arbitrary live origin.
        let origins = dht.live_peer_indices();
        prop_assert!(!origins.is_empty());
        for (ring_key, value) in &expected {
            let responsible = dht.responsible_for(*ring_key).unwrap();
            prop_assert!(dht.peer(responsible).store.contains(ring_key));
            let (_, got) = dht
                .get(origins[0], *ring_key, TrafficCategory::Retrieval)
                .unwrap();
            prop_assert_eq!(got.as_ref(), Some(value));
        }
        // No key is stored at a peer that is not responsible for it (no duplicates
        // left behind by handoffs).
        let mut stored_total = 0usize;
        for idx in dht.live_peer_indices() {
            for (k, _) in dht.peer(idx).store.iter() {
                prop_assert_eq!(dht.responsible_for(*k).unwrap(), idx);
                stored_total += 1;
            }
        }
        prop_assert_eq!(stored_total, expected.len());
    }

    #[test]
    fn lookups_are_logarithmic_for_every_origin(
        n in 2usize..128,
        seed: u64,
        keys in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let dht: Dht<Vec<u8>> = Dht::with_peers(DhtConfig::default(), seed, n);
        let bound = (n as f64).log2().ceil() as usize + 2;
        for (i, key) in keys.iter().enumerate() {
            let hops = dht.probe_hops(i % n, RingId(*key)).unwrap();
            prop_assert!(hops <= bound, "hops {hops} > bound {bound} for n={n}");
        }
    }
}
