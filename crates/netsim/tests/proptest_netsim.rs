//! Property-based tests for the simulation substrate: time arithmetic, event
//! ordering, traffic-statistics algebra and wire-size composition.

use alvisp2p_netsim::{EventQueue, SimDuration, SimTime, TrafficCategory, TrafficStats, WireSize};
use proptest::prelude::*;

fn category(i: u8) -> TrafficCategory {
    TrafficCategory::ALL[(i as usize) % TrafficCategory::ALL.len()]
}

proptest! {
    #[test]
    fn sim_time_addition_is_associative_and_monotone(
        base in 0u64..1_000_000_000,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let t = SimTime::from_micros(base);
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert_eq!((t + da) + db, t + (da + db));
        prop_assert!(t + da >= t);
        prop_assert_eq!((t + da) - t, da);
        prop_assert_eq!(t.saturating_since(t + da), SimDuration::ZERO);
    }

    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(
        times in proptest::collection::vec(0u64..10_000, 0..200),
    ) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(*t), i);
        }
        prop_assert_eq!(q.len(), times.len());
        let mut last = SimTime::ZERO;
        let mut seen = 0;
        while let Some(e) = q.pop() {
            prop_assert!(e.at >= last);
            // Equal timestamps preserve insertion order.
            last = e.at;
            seen += 1;
        }
        prop_assert_eq!(seen, times.len());
    }

    #[test]
    fn equal_timestamps_pop_in_insertion_order(
        n in 1usize..100,
        t in 0u64..1000,
    ) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_micros(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn traffic_stats_merge_matches_sequential_recording(
        events in proptest::collection::vec((0u8..7, 1usize..10_000), 0..100),
        split in 0usize..100,
    ) {
        // Recording all events into one object equals recording them into two halves
        // and merging.
        let split = split.min(events.len());
        let mut whole = TrafficStats::new();
        for (c, b) in &events {
            whole.record(category(*c), *b);
        }
        let mut first = TrafficStats::new();
        for (c, b) in &events[..split] {
            first.record(category(*c), *b);
        }
        let mut second = TrafficStats::new();
        for (c, b) in &events[split..] {
            second.record(category(*c), *b);
        }
        first.merge(&second);
        prop_assert_eq!(first.bytes_sent(), whole.bytes_sent());
        prop_assert_eq!(first.messages_sent(), whole.messages_sent());
        for cat in TrafficCategory::ALL {
            prop_assert_eq!(first.category(cat), whole.category(cat));
        }
        // `since` undoes the merge: (whole - first_half) == second_half.
        let mut first_half_only = TrafficStats::new();
        for (c, b) in &events[..split] {
            first_half_only.record(category(*c), *b);
        }
        let delta = whole.since(&first_half_only);
        prop_assert_eq!(delta.bytes_sent(), second.bytes_sent());
        prop_assert_eq!(delta.messages_sent(), second.messages_sent());
    }

    #[test]
    fn wire_size_of_vectors_is_compositional(
        values in proptest::collection::vec(any::<u64>(), 0..50),
        text in "[a-z]{0,40}",
    ) {
        let vec_size = values.wire_size();
        prop_assert_eq!(vec_size, 4 + values.len() * 8);
        let tuple = (text.clone(), values.clone());
        prop_assert_eq!(tuple.wire_size(), text.wire_size() + values.wire_size());
        let opt: Option<String> = Some(text.clone());
        prop_assert_eq!(opt.wire_size(), 1 + text.wire_size());
    }
}
