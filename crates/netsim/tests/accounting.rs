//! Accounting reconciliation: every message the simulator accepts is either
//! processed or attributed to exactly one [`DropKind`].
//!
//! The invariant under test, after the event queue drains:
//!
//! ```text
//! messages_sent = processed + drops(Loss) + drops(Congestion) + drops(DeadDestination)
//! ```
//!
//! and `processed == delivered` (nothing stays stuck in an inbox). The
//! wide-area configuration's 0.001 loss model was previously exercised by no
//! integration test — a leak on the loss path (or one drop kind silently
//! cancelling another) would have gone unnoticed.

use alvisp2p_netsim::sim::{Context, Node, SimConfig, Simulator};
use alvisp2p_netsim::stats::DropKind;
use alvisp2p_netsim::time::{SimDuration, SimTime};
use alvisp2p_netsim::{LatencyModel, NodeId};

/// Echoes every received number back, decremented, until it reaches zero.
struct Countdown;

impl Node for Countdown {
    type Msg = u64;
    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
        if msg > 0 {
            ctx.send(from, msg - 1);
        }
    }
}

/// `messages_sent = processed + Σ drops-by-kind` for the given simulator,
/// with the queue already drained.
fn assert_reconciled<N: Node>(sim: &Simulator<N>) {
    let stats = sim.stats();
    let drops: u64 = DropKind::ALL.iter().map(|k| stats.drops(*k).messages).sum();
    assert_eq!(
        stats.messages_sent(),
        sim.processed_messages() + drops,
        "sent {} != processed {} + drops {} (loss {}, congestion {}, dead {})",
        stats.messages_sent(),
        sim.processed_messages(),
        drops,
        stats.drops(DropKind::Loss).messages,
        stats.drops(DropKind::Congestion).messages,
        stats.drops(DropKind::DeadDestination).messages,
    );
    assert_eq!(
        sim.processed_messages(),
        sim.delivered_messages(),
        "queue drained, so every delivered message must have been processed"
    );
    assert_eq!(stats.dropped_messages(), drops);
}

#[test]
fn wide_area_loss_reconciles_exactly() {
    // Long ping-pong chains under the wide-area 0.001 loss rate: enough
    // traffic that the loss model fires, every loss ends a chain early.
    let mut sim: Simulator<Countdown> = Simulator::new(SimConfig::wide_area(), 20080824);
    let a = sim.add_node(Countdown);
    let b = sim.add_node(Countdown);
    for i in 0..2_000 {
        // Spaced well below the service rate so no inbox ever overflows:
        // every drop in this run must come from the loss model alone.
        sim.post(a, b, 10, SimTime::from_millis(i));
    }
    sim.run_to_completion(u64::MAX);
    assert!(
        sim.stats().drops(DropKind::Loss).messages > 0,
        "with ~22k messages at 0.001 loss, at least one loss drop is expected"
    );
    assert_eq!(sim.stats().drops(DropKind::Congestion).messages, 0);
    assert_eq!(sim.stats().drops(DropKind::DeadDestination).messages, 0);
    assert_reconciled(&sim);
}

#[test]
fn congestion_drops_reconcile_exactly() {
    // A burst far exceeding the inbox: the overflow is congestion loss,
    // the rest is processed; the identity still balances to the message.
    let config = SimConfig {
        inbox_capacity: 4,
        service_time: SimDuration::from_millis(50),
        latency: LatencyModel::Constant(SimDuration::from_micros(1)),
        ..SimConfig::default()
    };
    let mut sim: Simulator<Countdown> = Simulator::new(config, 3);
    let a = sim.add_node(Countdown);
    let b = sim.add_node(Countdown);
    for _ in 0..64 {
        sim.post(a, b, 0, SimTime::ZERO);
    }
    sim.run_to_completion(u64::MAX);
    assert!(sim.stats().drops(DropKind::Congestion).messages > 0);
    assert_eq!(sim.stats().drops(DropKind::Loss).messages, 0);
    assert_reconciled(&sim);
}

#[test]
fn dead_destination_drops_reconcile_exactly() {
    // Messages addressed to a node that does not exist (churned away) are
    // accounted as DeadDestination, not lost from the books.
    let mut sim: Simulator<Countdown> = Simulator::new(SimConfig::default(), 5);
    let a = sim.add_node(Countdown);
    let b = sim.add_node(Countdown);
    sim.post(a, b, 2, SimTime::ZERO);
    for _ in 0..7 {
        sim.post(a, NodeId(99), 0, SimTime::ZERO);
    }
    sim.run_to_completion(u64::MAX);
    assert_eq!(sim.stats().drops(DropKind::DeadDestination).messages, 7);
    assert_reconciled(&sim);
}

#[test]
fn all_drop_kinds_at_once_reconcile() {
    // Loss + congestion + dead destinations in one run: the per-kind split
    // must still sum to the exact gap between sent and processed.
    let config = SimConfig {
        inbox_capacity: 8,
        service_time: SimDuration::from_millis(20),
        ..SimConfig::wide_area()
    };
    let mut sim: Simulator<Countdown> = Simulator::new(config, 11);
    let a = sim.add_node(Countdown);
    let b = sim.add_node(Countdown);
    for i in 0..1_000 {
        sim.post(a, b, 5, SimTime::from_micros(i));
        if i % 50 == 0 {
            sim.post(a, NodeId(1_000), 0, SimTime::from_micros(i));
        }
    }
    sim.run_to_completion(u64::MAX);
    assert!(sim.stats().drops(DropKind::Congestion).messages > 0);
    assert_eq!(sim.stats().drops(DropKind::DeadDestination).messages, 20);
    assert_reconciled(&sim);
}
