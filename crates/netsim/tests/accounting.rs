//! Accounting reconciliation: every message the simulator accepts is either
//! processed or attributed to exactly one [`DropKind`], and every byte the
//! upper layers charge against the [`TrafficCategory`] ledger is attributed
//! to the category that caused it.
//!
//! The simulator invariant under test, after the event queue drains:
//!
//! ```text
//! messages_sent = processed + drops(Loss) + drops(Congestion) + drops(DeadDestination)
//! ```
//!
//! and `processed == delivered` (nothing stays stuck in an inbox). The
//! wide-area configuration's 0.001 loss model was previously exercised by no
//! integration test — a leak on the loss path (or one drop kind silently
//! cancelling another) would have gone unnoticed.
//!
//! The ledger invariant: control-plane recovery traffic — anti-entropy
//! replica repair and lost-publication re-sends — lands in
//! [`TrafficCategory::Overlay`] byte-for-byte, and never leaks into the
//! `Retrieval` (or, for re-publication, `Indexing`) books that the paper's
//! per-query traffic figures are computed from. The dht and core crates are
//! dev-dependencies here (a cycle cargo permits) precisely so this crate can
//! audit what its ledger is told from above.

use alvisp2p_netsim::sim::{Context, Node, SimConfig, Simulator};
use alvisp2p_netsim::stats::DropKind;
use alvisp2p_netsim::time::{SimDuration, SimTime};
use alvisp2p_netsim::{LatencyModel, NodeId};

/// Echoes every received number back, decremented, until it reaches zero.
struct Countdown;

impl Node for Countdown {
    type Msg = u64;
    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
        if msg > 0 {
            ctx.send(from, msg - 1);
        }
    }
}

/// `messages_sent = processed + Σ drops-by-kind` for the given simulator,
/// with the queue already drained.
fn assert_reconciled<N: Node>(sim: &Simulator<N>) {
    let stats = sim.stats();
    let drops: u64 = DropKind::ALL.iter().map(|k| stats.drops(*k).messages).sum();
    assert_eq!(
        stats.messages_sent(),
        sim.processed_messages() + drops,
        "sent {} != processed {} + drops {} (loss {}, congestion {}, dead {})",
        stats.messages_sent(),
        sim.processed_messages(),
        drops,
        stats.drops(DropKind::Loss).messages,
        stats.drops(DropKind::Congestion).messages,
        stats.drops(DropKind::DeadDestination).messages,
    );
    assert_eq!(
        sim.processed_messages(),
        sim.delivered_messages(),
        "queue drained, so every delivered message must have been processed"
    );
    assert_eq!(stats.dropped_messages(), drops);
}

#[test]
fn wide_area_loss_reconciles_exactly() {
    // Long ping-pong chains under the wide-area 0.001 loss rate: enough
    // traffic that the loss model fires, every loss ends a chain early.
    let mut sim: Simulator<Countdown> = Simulator::new(SimConfig::wide_area(), 20080824);
    let a = sim.add_node(Countdown);
    let b = sim.add_node(Countdown);
    for i in 0..2_000 {
        // Spaced well below the service rate so no inbox ever overflows:
        // every drop in this run must come from the loss model alone.
        sim.post(a, b, 10, SimTime::from_millis(i));
    }
    sim.run_to_completion(u64::MAX);
    assert!(
        sim.stats().drops(DropKind::Loss).messages > 0,
        "with ~22k messages at 0.001 loss, at least one loss drop is expected"
    );
    assert_eq!(sim.stats().drops(DropKind::Congestion).messages, 0);
    assert_eq!(sim.stats().drops(DropKind::DeadDestination).messages, 0);
    assert_reconciled(&sim);
}

#[test]
fn congestion_drops_reconcile_exactly() {
    // A burst far exceeding the inbox: the overflow is congestion loss,
    // the rest is processed; the identity still balances to the message.
    let config = SimConfig {
        inbox_capacity: 4,
        service_time: SimDuration::from_millis(50),
        latency: LatencyModel::Constant(SimDuration::from_micros(1)),
        ..SimConfig::default()
    };
    let mut sim: Simulator<Countdown> = Simulator::new(config, 3);
    let a = sim.add_node(Countdown);
    let b = sim.add_node(Countdown);
    for _ in 0..64 {
        sim.post(a, b, 0, SimTime::ZERO);
    }
    sim.run_to_completion(u64::MAX);
    assert!(sim.stats().drops(DropKind::Congestion).messages > 0);
    assert_eq!(sim.stats().drops(DropKind::Loss).messages, 0);
    assert_reconciled(&sim);
}

#[test]
fn dead_destination_drops_reconcile_exactly() {
    // Messages addressed to a node that does not exist (churned away) are
    // accounted as DeadDestination, not lost from the books.
    let mut sim: Simulator<Countdown> = Simulator::new(SimConfig::default(), 5);
    let a = sim.add_node(Countdown);
    let b = sim.add_node(Countdown);
    sim.post(a, b, 2, SimTime::ZERO);
    for _ in 0..7 {
        sim.post(a, NodeId(99), 0, SimTime::ZERO);
    }
    sim.run_to_completion(u64::MAX);
    assert_eq!(sim.stats().drops(DropKind::DeadDestination).messages, 7);
    assert_reconciled(&sim);
}

#[test]
fn all_drop_kinds_at_once_reconcile() {
    // Loss + congestion + dead destinations in one run: the per-kind split
    // must still sum to the exact gap between sent and processed.
    let config = SimConfig {
        inbox_capacity: 8,
        service_time: SimDuration::from_millis(20),
        ..SimConfig::wide_area()
    };
    let mut sim: Simulator<Countdown> = Simulator::new(config, 11);
    let a = sim.add_node(Countdown);
    let b = sim.add_node(Countdown);
    for i in 0..1_000 {
        sim.post(a, b, 5, SimTime::from_micros(i));
        if i % 50 == 0 {
            sim.post(a, NodeId(1_000), 0, SimTime::from_micros(i));
        }
    }
    sim.run_to_completion(u64::MAX);
    assert!(sim.stats().drops(DropKind::Congestion).messages > 0);
    assert_eq!(sim.stats().drops(DropKind::DeadDestination).messages, 20);
    assert_reconciled(&sim);
}

mod control_plane_ledger {
    //! Repair and re-publication bytes reconcile against the traffic ledger.

    use std::sync::Arc;

    use alvisp2p_core::fault::FaultPlane;
    use alvisp2p_core::{AlvisNetwork, Hdk};
    use alvisp2p_dht::{CopyDigest, Dht, DhtConfig, HotKeyReplication, RingId};
    use alvisp2p_netsim::wire::ENVELOPE_OVERHEAD;
    use alvisp2p_netsim::{TrafficCategory, WireSize};

    /// Anti-entropy repair traffic reconciles byte-exactly: the Overlay delta
    /// of one repair round equals the digest exchanges plus the repair pulls
    /// the round reports, and not a single repair byte lands in Retrieval.
    #[test]
    fn repair_round_bytes_reconcile_exactly_and_stay_out_of_retrieval() {
        let mut dht: Dht<Vec<u8>> = Dht::with_peers(DhtConfig::default(), 11, 24);
        dht.set_replication_policy(Arc::new(HotKeyReplication::new(3)));
        dht.set_replica_faults(99, 1.0); // every sync message is dropped
        let key = RingId::hash_str("audited key");
        let stale = vec![1u8; 40];
        let fresh = vec![9u8; 40];
        dht.put(0, key, stale, TrafficCategory::Indexing).unwrap();
        let primary = dht.responsible_for(key).unwrap();
        for _ in 0..10 {
            dht.record_probe(key, primary);
        }
        assert_eq!(dht.replica_holders(key).len(), 3);
        // An update whose replica syncs are all dropped: the three holders
        // keep the stale copy, and the next repair round must pull three.
        dht.put_replicated(0, key, fresh.clone(), TrafficCategory::Indexing)
            .unwrap();

        let before = dht.stats_snapshot();
        let report = dht.repair_round();
        let delta = dht.stats_snapshot().since(&before);

        assert_eq!(report.stale, 3);
        assert_eq!(report.repaired, 3);
        let digest_bytes =
            report.digests_exchanged * 2 * (CopyDigest::WIRE_BYTES + ENVELOPE_OVERHEAD);
        let pull_bytes = report.repaired * (8 + fresh.wire_size() + ENVELOPE_OVERHEAD);
        assert_eq!(
            delta.category(TrafficCategory::Overlay).bytes,
            (digest_bytes + pull_bytes) as u64,
            "every Overlay byte of the round is a digest exchange or a pull"
        );
        assert_eq!(delta.category(TrafficCategory::Retrieval).bytes, 0);
        assert_eq!(delta.category(TrafficCategory::Indexing).bytes, 0);

        // A converged ring still pays for its digest exchanges — and for
        // nothing else.
        let before = dht.stats_snapshot();
        let report = dht.repair_round();
        let delta = dht.stats_snapshot().since(&before);
        assert_eq!(report.repaired, 0);
        assert_eq!(
            delta.category(TrafficCategory::Overlay).bytes,
            (report.digests_exchanged * 2 * (CopyDigest::WIRE_BYTES + ENVELOPE_OVERHEAD)) as u64
        );
        assert_eq!(delta.category(TrafficCategory::Retrieval).bytes, 0);
    }

    /// The counterfactual ledger [`virtual_probe_bytes`] mirrors a real
    /// probe's Retrieval charge to the byte — including the 4-byte Adler-32
    /// frame trailer — for both a full response and a floor-elided one whose
    /// frame keeps no entries. If the counterfactual dropped the trailer (or
    /// any envelope), sketch-pruned probes would under-report their savings
    /// and budget admission would drift from the sketch-free schedule.
    ///
    /// [`virtual_probe_bytes`]: alvisp2p_core::index::GlobalIndex::virtual_probe_bytes
    #[test]
    fn virtual_probe_bytes_match_a_real_probe_charge_exactly() {
        let docs = (0..12).map(|i| {
            (
                format!("doc{i}"),
                format!("peer to peer retrieval of distributed document {i} index"),
            )
        });
        let mut net = AlvisNetwork::builder()
            .peers(4)
            .strategy(Hdk::default())
            .seed(7)
            .documents(docs)
            .build()
            .expect("valid configuration");
        net.build_index();
        let (key, postings) = net
            .global_index()
            .entries()
            .find(|e| e.activated && !e.postings.is_empty())
            .map(|e| (e.key.clone(), e.postings.clone()))
            .expect("an activated key");
        let origin = 2;
        let hops = net.global_index().estimate_hops(origin, &key).unwrap();
        let capacity = postings.capacity();

        // Full response: the frame as the responsible peer encodes it,
        // checksum trailer and all.
        let frame_len = alvisp2p_core::codec::encode_list(&postings, None).len();
        let before = net.traffic_snapshot();
        net.global_index_mut()
            .probe(origin, &key, 1, capacity, None)
            .unwrap();
        let delta = net.traffic_snapshot().since(&before);
        assert_eq!(
            delta.category(TrafficCategory::Retrieval).bytes,
            net.global_index()
                .virtual_probe_bytes(&key, hops, frame_len),
            "counterfactual diverged from the real probe charge"
        );

        // All-elided response: a floor above the best score keeps nothing,
        // so the frame is the empty-payload header plus the trailer. The
        // counterfactual must still match to the byte.
        let floor = postings.best_score().unwrap() + 1.0;
        let elided_len = alvisp2p_core::codec::encode_list(&postings, Some(floor)).len();
        assert!(elided_len < frame_len);
        let before = net.traffic_snapshot();
        net.global_index_mut()
            .probe(origin, &key, 2, capacity, Some(floor))
            .unwrap();
        let delta = net.traffic_snapshot().since(&before);
        assert_eq!(
            delta.category(TrafficCategory::Retrieval).bytes,
            net.global_index()
                .virtual_probe_bytes(&key, hops, elided_len),
            "all-elided counterfactual diverged (trailer under-reported?)"
        );
    }

    /// Draining the re-publication queue after a lossy index build charges
    /// Overlay only: no re-send byte is booked as first-time Indexing traffic
    /// and none leaks into the Retrieval books.
    #[test]
    fn republish_traffic_is_overlay_never_retrieval_or_indexing() {
        let docs = (0..12).map(|i| {
            (
                format!("doc{i}"),
                format!("peer to peer retrieval of distributed document {i} index"),
            )
        });
        let mut net = AlvisNetwork::builder()
            .peers(4)
            .strategy(Hdk::default())
            .seed(7)
            .documents(docs)
            .build()
            .expect("valid configuration");
        net.set_fault_plane(FaultPlane::seeded(9).with_publish_loss(0.4));
        net.build_index();
        assert!(
            net.pending_publishes() > 0,
            "the lossy build must drop some"
        );

        let before = net.traffic_snapshot();
        let mut rounds = 0;
        while net.pending_publishes() > 0 {
            net.republish_round();
            rounds += 1;
            assert!(rounds < 200, "re-publication did not converge");
        }
        let delta = net.traffic_snapshot().since(&before);
        assert!(delta.category(TrafficCategory::Overlay).bytes > 0);
        assert_eq!(delta.category(TrafficCategory::Retrieval).bytes, 0);
        assert_eq!(
            delta.category(TrafficCategory::Indexing).bytes,
            0,
            "a re-send is control-plane traffic, not a fresh publication"
        );
    }
}
