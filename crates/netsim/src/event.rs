//! The discrete-event queue.
//!
//! Events are ordered by simulated time; ties are broken by an insertion sequence
//! number so that runs are fully deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in simulated time.
#[derive(Clone, Debug)]
pub struct Event<P> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number used for deterministic tie-breaking.
    pub seq: u64,
    /// The event payload.
    pub payload: P,
}

impl<P> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for Event<P> {}

impl<P> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of simulation events.
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Event<P>>,
    next_seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<P> EventQueue<P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: P) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<P>> {
        self.heap.pop()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().payload, "a");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
    }
}
