//! Seeded random number generation.
//!
//! Every stochastic component of the reproduction (corpus generation, query logs,
//! peer identifier assignment, link jitter, loss injection) draws from a
//! [`SimRng`], a thin wrapper around the ChaCha8 stream cipher RNG. Given the same
//! seed the whole simulation is bit-for-bit reproducible, which is what allows the
//! experiment harness to regenerate the paper's figures deterministically.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic, seedable random number generator.
///
/// `SimRng` also provides convenience helpers used throughout the workspace
/// (sub-generator derivation, shuffling, weighted choice).
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl SimRng {
    /// Creates a new generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-generator identified by `stream`.
    ///
    /// Deriving (rather than sharing) generators lets independent components
    /// (e.g. corpus generation and link jitter) consume randomness without
    /// perturbing each other's sequences, keeping experiments comparable when
    /// one component changes.
    pub fn derive(&self, stream: u64) -> SimRng {
        // Mix the seed and stream with splitmix64-style finalization.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Samples a value uniformly from `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Samples a uniform `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.is_empty() {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Chooses a uniformly random element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.inner.gen_range(0..slice.len());
            Some(&slice[i])
        }
    }

    /// Chooses an index according to the (non-negative) weights.
    ///
    /// Returns `None` if the weights are empty or all zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                if target < w {
                    return Some(i);
                }
                target -= w;
            }
        }
        // Floating point slack: fall back to the last positive weight.
        weights
            .iter()
            .rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Samples `k` distinct indices from `0..n` (reservoir style). If `k >= n`,
    /// returns all indices `0..n` in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k.min(n));
        all
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seed_different_sequence() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let base = SimRng::new(99);
        let mut d1 = base.derive(1);
        let mut d1_again = base.derive(1);
        let mut d2 = base.derive(2);
        let s1: Vec<u64> = (0..4).map(|_| d1.gen_u64()).collect();
        let s1b: Vec<u64> = (0..4).map(|_| d1_again.gen_u64()).collect();
        let s2: Vec<u64> = (0..4).map(|_| d2.gen_u64()).collect();
        assert_eq!(s1, s1b);
        assert_ne!(s1, s2);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let set: HashSet<u32> = v.iter().copied().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn choose_weighted_respects_zero_weights() {
        let mut rng = SimRng::new(5);
        let weights = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..50 {
            assert_eq!(rng.choose_weighted(&weights), Some(2));
        }
        assert_eq!(rng.choose_weighted(&[]), None);
        assert_eq!(rng.choose_weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn choose_weighted_rough_proportions() {
        let mut rng = SimRng::new(11);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[rng.choose_weighted(&weights).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(ratio > 2.5 && ratio < 3.5, "ratio was {ratio}");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SimRng::new(13);
        let s = rng.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let set: HashSet<usize> = s.iter().copied().collect();
        assert_eq!(set.len(), 10);
        // Asking for more than available returns everything.
        let all = rng.sample_indices(5, 50);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::new(17);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range probabilities are clamped instead of panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(19);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert!(rng.choose(&[42]).is_some());
    }
}
