//! Seeded random number generation.
//!
//! Every stochastic component of the reproduction (corpus generation, query logs,
//! peer identifier assignment, link jitter, loss injection) draws from a
//! [`SimRng`], a self-contained implementation of the ChaCha8 stream cipher as a
//! random number generator. Given the same seed the whole simulation is
//! bit-for-bit reproducible, which is what allows the experiment harness to
//! regenerate the paper's figures deterministically. (The implementation is
//! in-tree so the workspace builds without network access to crates.io.)

/// A deterministic, seedable random number generator.
///
/// `SimRng` also provides convenience helpers used throughout the workspace
/// (sub-generator derivation, shuffling, weighted choice).
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u32; 16],
    buffer: [u32; 16],
    cursor: usize,
    seed: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a new generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit ChaCha key with splitmix64.
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let word = splitmix64(&mut s);
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        state[4..12].copy_from_slice(&key);
        // Block counter and nonce start at zero.
        SimRng {
            state,
            buffer: [0; 16],
            cursor: 16,
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-generator identified by `stream`.
    ///
    /// Deriving (rather than sharing) generators lets independent components
    /// (e.g. corpus generation and link jitter) consume randomness without
    /// perturbing each other's sequences, keeping experiments comparable when
    /// one component changes.
    pub fn derive(&self, stream: u64) -> SimRng {
        // Mix the seed and stream with splitmix64-style finalization.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Runs the ChaCha8 block function and refills the output buffer.
    fn refill(&mut self) {
        #[inline(always)]
        fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            x[a] = x[a].wrapping_add(x[b]);
            x[d] = (x[d] ^ x[a]).rotate_left(16);
            x[c] = x[c].wrapping_add(x[d]);
            x[b] = (x[b] ^ x[c]).rotate_left(12);
            x[a] = x[a].wrapping_add(x[b]);
            x[d] = (x[d] ^ x[a]).rotate_left(8);
            x[c] = x[c].wrapping_add(x[d]);
            x[b] = (x[b] ^ x[c]).rotate_left(7);
        }

        let mut working = self.state;
        for _ in 0..4 {
            // A double round: four column rounds followed by four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12/13.
        let (counter, carry) = self.state[12].overflowing_add(1);
        self.state[12] = counter;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }

    /// Samples a uniform `u32`.
    pub fn gen_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    /// Samples a uniform `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        let lo = u64::from(self.gen_u32());
        let hi = u64::from(self.gen_u32());
        (hi << 32) | lo
    }

    /// Samples a uniform value in `[0, bound)`; `bound` must be non-zero.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply bounded sampling with a rejection pass to stay
        // unbiased for any bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let raw = self.gen_u64();
            let wide = u128::from(raw) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Samples a value uniformly from `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.is_empty() {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Chooses a uniformly random element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.below(slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }

    /// Chooses an index according to the (non-negative) weights.
    ///
    /// Returns `None` if the weights are empty or all zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                if target < w {
                    return Some(i);
                }
                target -= w;
            }
        }
        // Floating point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Samples `k` distinct indices from `0..n` (reservoir style). If `k >= n`,
    /// returns all indices `0..n` in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k.min(n));
        all
    }
}

/// Ranges [`SimRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.gen_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seed_different_sequence() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let base = SimRng::new(99);
        let mut d1 = base.derive(1);
        let mut d1_again = base.derive(1);
        let mut d2 = base.derive(2);
        let s1: Vec<u64> = (0..4).map(|_| d1.gen_u64()).collect();
        let s1b: Vec<u64> = (0..4).map(|_| d1_again.gen_u64()).collect();
        let s2: Vec<u64> = (0..4).map(|_| d2.gen_u64()).collect();
        assert_eq!(s1, s1b);
        assert_ne!(s1, s2);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let set: HashSet<u32> = v.iter().copied().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn choose_weighted_respects_zero_weights() {
        let mut rng = SimRng::new(5);
        let weights = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..50 {
            assert_eq!(rng.choose_weighted(&weights), Some(2));
        }
        assert_eq!(rng.choose_weighted(&[]), None);
        assert_eq!(rng.choose_weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn choose_weighted_rough_proportions() {
        let mut rng = SimRng::new(11);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[rng.choose_weighted(&weights).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!(ratio > 2.5 && ratio < 3.5, "ratio was {ratio}");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SimRng::new(13);
        let s = rng.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let set: HashSet<usize> = s.iter().copied().collect();
        assert_eq!(set.len(), 10);
        // Asking for more than available returns everything.
        let all = rng.sample_indices(5, 50);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::new(17);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range probabilities are clamped instead of panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(19);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert!(rng.choose(&[42]).is_some());
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = SimRng::new(23);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0usize..4));
        }
        assert_eq!(seen, (0..4).collect());
        for _ in 0..50 {
            let v = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
        let f = rng.gen_range(2.0f64..3.0);
        assert!((2.0..3.0).contains(&f));
    }

    #[test]
    fn uniform_values_spread_over_the_word() {
        // Sanity-check the ChaCha core: bits are not stuck.
        let mut rng = SimRng::new(29);
        let mut or_acc = 0u64;
        let mut and_acc = u64::MAX;
        for _ in 0..64 {
            let v = rng.gen_u64();
            or_acc |= v;
            and_acc &= v;
        }
        assert_eq!(or_acc, u64::MAX);
        assert_eq!(and_acc, 0);
    }
}
