//! Traffic accounting.
//!
//! [`TrafficStats`] aggregates the number of messages and bytes that crossed the
//! simulated network, broken down by [`TrafficCategory`]. The experiment harness
//! reads these counters to produce the bandwidth columns of every table.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A coarse classification of network traffic, used to attribute bandwidth to the
/// different mechanisms of the system (overlay maintenance vs. indexing vs. retrieval).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum TrafficCategory {
    /// DHT overlay maintenance: joins, stabilisation, routing-table exchange.
    Overlay,
    /// DHT lookup/routing messages.
    Routing,
    /// Index construction: posting-list insertions, key activations.
    Indexing,
    /// Retrieval: key probes and posting-list transfers.
    Retrieval,
    /// Ranking: global statistics exchange.
    Ranking,
    /// Congestion-control signalling (acks, credit grants, retransmissions).
    Congestion,
    /// Anything else (application-defined).
    Other,
}

impl TrafficCategory {
    /// All categories in a stable order (useful for report tables).
    pub const ALL: [TrafficCategory; 7] = [
        TrafficCategory::Overlay,
        TrafficCategory::Routing,
        TrafficCategory::Indexing,
        TrafficCategory::Retrieval,
        TrafficCategory::Ranking,
        TrafficCategory::Congestion,
        TrafficCategory::Other,
    ];

    /// A short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficCategory::Overlay => "overlay",
            TrafficCategory::Routing => "routing",
            TrafficCategory::Indexing => "indexing",
            TrafficCategory::Retrieval => "retrieval",
            TrafficCategory::Ranking => "ranking",
            TrafficCategory::Congestion => "congestion",
            TrafficCategory::Other => "other",
        }
    }
}

impl fmt::Display for TrafficCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a message never reached its destination's handler.
///
/// Splitting drops by cause lets the accounting identity
/// `posted = processed + pending + Σ drops-by-kind` be checked exactly — a
/// lumped drop counter can hide one leak cancelling another.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum DropKind {
    /// Lost on the wire by the configured loss model.
    Loss,
    /// Rejected because the receiving node's inbound queue was full.
    Congestion,
    /// The destination node no longer exists (e.g. removed by churn).
    DeadDestination,
}

impl DropKind {
    /// All kinds in a stable order (useful for report tables).
    pub const ALL: [DropKind; 3] = [
        DropKind::Loss,
        DropKind::Congestion,
        DropKind::DeadDestination,
    ];

    /// A short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            DropKind::Loss => "loss",
            DropKind::Congestion => "congestion",
            DropKind::DeadDestination => "dead-dest",
        }
    }
}

impl fmt::Display for DropKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-category message/byte counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    /// Number of messages.
    pub messages: u64,
    /// Total bytes (payload + envelope overhead).
    pub bytes: u64,
}

/// Aggregate traffic statistics for a simulation run.
#[derive(Clone, Default, Debug, Serialize, Deserialize)]
pub struct TrafficStats {
    per_category: BTreeMap<TrafficCategory, Counter>,
    per_drop_kind: BTreeMap<DropKind, Counter>,
}

impl TrafficStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records a sent message of `bytes` bytes in `category`.
    pub fn record(&mut self, category: TrafficCategory, bytes: usize) {
        let c = self.per_category.entry(category).or_default();
        c.messages += 1;
        c.bytes += bytes as u64;
    }

    /// Records a dropped message of `bytes` bytes, attributed to `kind`.
    pub fn record_drop(&mut self, kind: DropKind, bytes: usize) {
        let c = self.per_drop_kind.entry(kind).or_default();
        c.messages += 1;
        c.bytes += bytes as u64;
    }

    /// Counter for a single category.
    pub fn category(&self, category: TrafficCategory) -> Counter {
        self.per_category
            .get(&category)
            .copied()
            .unwrap_or_default()
    }

    /// Total messages sent across all categories.
    pub fn messages_sent(&self) -> u64 {
        self.per_category.values().map(|c| c.messages).sum()
    }

    /// Total bytes sent across all categories.
    pub fn bytes_sent(&self) -> u64 {
        self.per_category.values().map(|c| c.bytes).sum()
    }

    /// Number of dropped messages across all [`DropKind`]s.
    pub fn dropped_messages(&self) -> u64 {
        self.per_drop_kind.values().map(|c| c.messages).sum()
    }

    /// Number of dropped bytes across all [`DropKind`]s.
    pub fn dropped_bytes(&self) -> u64 {
        self.per_drop_kind.values().map(|c| c.bytes).sum()
    }

    /// Drop counter for one [`DropKind`].
    pub fn drops(&self, kind: DropKind) -> Counter {
        self.per_drop_kind.get(&kind).copied().unwrap_or_default()
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for (cat, c) in &other.per_category {
            let mine = self.per_category.entry(*cat).or_default();
            mine.messages += c.messages;
            mine.bytes += c.bytes;
        }
        for (kind, c) in &other.per_drop_kind {
            let mine = self.per_drop_kind.entry(*kind).or_default();
            mine.messages += c.messages;
            mine.bytes += c.bytes;
        }
    }

    /// Difference `self - baseline`, useful to isolate the traffic of one phase
    /// (e.g. retrieval traffic after an indexing phase). Saturates at zero.
    pub fn since(&self, baseline: &TrafficStats) -> TrafficStats {
        let mut out = TrafficStats::new();
        for cat in TrafficCategory::ALL {
            let a = self.category(cat);
            let b = baseline.category(cat);
            let c = Counter {
                messages: a.messages.saturating_sub(b.messages),
                bytes: a.bytes.saturating_sub(b.bytes),
            };
            if c.messages > 0 || c.bytes > 0 {
                out.per_category.insert(cat, c);
            }
        }
        for kind in DropKind::ALL {
            let a = self.drops(kind);
            let b = baseline.drops(kind);
            let c = Counter {
                messages: a.messages.saturating_sub(b.messages),
                bytes: a.bytes.saturating_sub(b.bytes),
            };
            if c.messages > 0 || c.bytes > 0 {
                out.per_drop_kind.insert(kind, c);
            }
        }
        out
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.per_category.clear();
        self.per_drop_kind.clear();
    }

    /// Renders a small human-readable report table.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<12} {:>12} {:>14}\n",
            "category", "messages", "bytes"
        ));
        for cat in TrafficCategory::ALL {
            let c = self.category(cat);
            if c.messages > 0 {
                s.push_str(&format!(
                    "{:<12} {:>12} {:>14}\n",
                    cat.label(),
                    c.messages,
                    c.bytes
                ));
            }
        }
        s.push_str(&format!(
            "{:<12} {:>12} {:>14}\n",
            "TOTAL",
            self.messages_sent(),
            self.bytes_sent()
        ));
        for kind in DropKind::ALL {
            let c = self.drops(kind);
            if c.messages > 0 {
                s.push_str(&format!(
                    "{:<12} {:>12} {:>14}\n",
                    format!("drop/{}", kind.label()),
                    c.messages,
                    c.bytes
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = TrafficStats::new();
        s.record(TrafficCategory::Routing, 100);
        s.record(TrafficCategory::Routing, 50);
        s.record(TrafficCategory::Retrieval, 1000);
        assert_eq!(s.messages_sent(), 3);
        assert_eq!(s.bytes_sent(), 1150);
        assert_eq!(s.category(TrafficCategory::Routing).messages, 2);
        assert_eq!(s.category(TrafficCategory::Routing).bytes, 150);
        assert_eq!(s.category(TrafficCategory::Indexing).messages, 0);
    }

    #[test]
    fn drops_are_separate() {
        let mut s = TrafficStats::new();
        s.record(TrafficCategory::Other, 10);
        s.record_drop(DropKind::Loss, 500);
        assert_eq!(s.messages_sent(), 1);
        assert_eq!(s.dropped_messages(), 1);
        assert_eq!(s.dropped_bytes(), 500);
        assert_eq!(s.drops(DropKind::Loss).messages, 1);
        assert_eq!(s.drops(DropKind::Congestion).messages, 0);
    }

    #[test]
    fn drop_kinds_are_attributed_and_summed() {
        let mut s = TrafficStats::new();
        s.record_drop(DropKind::Loss, 100);
        s.record_drop(DropKind::Congestion, 200);
        s.record_drop(DropKind::Congestion, 200);
        s.record_drop(DropKind::DeadDestination, 50);
        assert_eq!(s.dropped_messages(), 4);
        assert_eq!(s.dropped_bytes(), 550);
        assert_eq!(s.drops(DropKind::Congestion).messages, 2);
        assert_eq!(s.drops(DropKind::Congestion).bytes, 400);
        assert_eq!(s.drops(DropKind::DeadDestination).bytes, 50);
        let r = s.report();
        assert!(r.contains("drop/loss"));
        assert!(r.contains("drop/congestion"));
        assert!(r.contains("drop/dead-dest"));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TrafficStats::new();
        a.record(TrafficCategory::Indexing, 10);
        let mut b = TrafficStats::new();
        b.record(TrafficCategory::Indexing, 20);
        b.record(TrafficCategory::Ranking, 5);
        b.record_drop(DropKind::Congestion, 1);
        a.merge(&b);
        assert_eq!(a.category(TrafficCategory::Indexing).bytes, 30);
        assert_eq!(a.category(TrafficCategory::Ranking).messages, 1);
        assert_eq!(a.dropped_messages(), 1);
        assert_eq!(a.drops(DropKind::Congestion).messages, 1);
    }

    #[test]
    fn since_isolates_a_phase() {
        let mut s = TrafficStats::new();
        s.record(TrafficCategory::Indexing, 1000);
        let snapshot = s.clone();
        s.record(TrafficCategory::Retrieval, 250);
        s.record(TrafficCategory::Retrieval, 250);
        let delta = s.since(&snapshot);
        assert_eq!(delta.category(TrafficCategory::Indexing).bytes, 0);
        assert_eq!(delta.category(TrafficCategory::Retrieval).bytes, 500);
        assert_eq!(delta.messages_sent(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = TrafficStats::new();
        s.record(TrafficCategory::Overlay, 64);
        s.record_drop(DropKind::Loss, 64);
        s.reset();
        assert_eq!(s.messages_sent(), 0);
        assert_eq!(s.bytes_sent(), 0);
        assert_eq!(s.dropped_messages(), 0);
    }

    #[test]
    fn report_contains_totals() {
        let mut s = TrafficStats::new();
        s.record(TrafficCategory::Retrieval, 123);
        let r = s.report();
        assert!(r.contains("retrieval"));
        assert!(r.contains("TOTAL"));
        assert!(r.contains("123"));
    }

    #[test]
    fn category_labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            TrafficCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), TrafficCategory::ALL.len());
    }
}
