//! # alvisp2p-netsim
//!
//! Deterministic discrete-event network simulator used as the **transport layer (L1)**
//! of the AlvisP2P reproduction.
//!
//! The original AlvisP2P prototype ran on TCP/UDP across a live Internet deployment.
//! All quantities the paper reasons about — messages exchanged, bytes transferred,
//! routing hops, behaviour under overload — are independent of wall-clock latencies,
//! so this crate replaces the wire with a seeded, perfectly reproducible simulation:
//!
//! * [`time`] — simulated clock ([`SimTime`], [`SimDuration`]).
//! * [`event`] — the discrete-event queue with deterministic tie-breaking.
//! * [`wire`] — the [`WireSize`] trait used for byte accounting of every payload.
//! * [`stats`] — [`TrafficStats`]: message/byte counters broken down by category.
//! * [`link`] — latency and loss models for links between simulated nodes.
//! * [`sim`] — the [`Simulator`] driving [`Node`] implementations.
//! * [`rng`] — seeded random number generation shared by every crate in the workspace.
//! * [`dist`] — discrete distributions (Zipf, power-law) used to generate skewed
//!   workloads (term frequencies, query popularity, peer identifier skew).
//!
//! # Example
//!
//! ```
//! use alvisp2p_netsim::{Simulator, SimConfig, Node, Context, NodeId, SimTime, SimDuration};
//!
//! /// A node that replies "pong" to every "ping".
//! struct Pong;
//! impl Node for Pong {
//!     type Msg = &'static str;
//!     fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
//!         if msg == "ping" {
//!             ctx.send(from, "pong");
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(SimConfig::default(), 42);
//! let a = sim.add_node(Pong);
//! let b = sim.add_node(Pong);
//! sim.post(a, b, "ping", SimTime::ZERO);
//! sim.run_until(SimTime::from_millis(100));
//! assert_eq!(sim.stats().messages_sent(), 2); // ping + pong
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod link;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod wire;

pub use dist::{PowerLaw, Zipf};
pub use event::{Event, EventQueue};
pub use link::{LatencyModel, LossModel};
pub use rng::SimRng;
pub use sim::{Context, Node, NodeId, SimConfig, Simulator};
pub use stats::{DropKind, TrafficCategory, TrafficStats};
pub use time::{SimDuration, SimTime};
pub use wire::WireSize;
