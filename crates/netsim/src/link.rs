//! Link models: latency and loss.
//!
//! Links between simulated peers are modelled with a configurable latency
//! distribution and an independent per-message loss probability. The AlvisP2P
//! experiments are primarily about message/byte counts, but latency matters for the
//! congestion-control experiment (E6) where queueing delay and retransmissions
//! interact with offered load.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Latency model of a network link.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Latency uniformly distributed in `[min, max]`.
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound (inclusive).
        max: SimDuration,
    },
    /// A base latency plus an exponentially distributed jitter with the given mean.
    BaseJitter {
        /// Fixed propagation delay.
        base: SimDuration,
        /// Mean of the additional exponential jitter.
        jitter_mean: SimDuration,
    },
}

impl LatencyModel {
    /// A typical wide-area latency model (20ms base, 10ms mean jitter), roughly the
    /// conditions of the paper's EPFL–Zagreb deployment.
    pub fn wide_area() -> Self {
        LatencyModel::BaseJitter {
            base: SimDuration::from_millis(20),
            jitter_mean: SimDuration::from_millis(10),
        }
    }

    /// A local-area latency model (1ms constant).
    pub fn local_area() -> Self {
        LatencyModel::Constant(SimDuration::from_millis(1))
    }

    /// Samples the one-way delay for a message.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo);
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
            LatencyModel::BaseJitter { base, jitter_mean } => {
                let mean = jitter_mean.as_micros() as f64;
                // Inverse-CDF exponential sample; clamp the uniform away from 0
                // so ln() stays finite.
                let u = rng.gen_f64().max(1e-12);
                let jitter = (-u.ln() * mean).min(mean * 50.0) as u64;
                *base + SimDuration::from_micros(jitter)
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::wide_area()
    }
}

/// Loss model of a network link: each message is independently dropped with
/// probability `loss_rate`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LossModel {
    loss_rate: f64,
}

impl LossModel {
    /// No loss.
    pub fn lossless() -> Self {
        LossModel { loss_rate: 0.0 }
    }

    /// Creates a loss model with the given drop probability, clamped to `[0, 1]`.
    pub fn with_rate(loss_rate: f64) -> Self {
        LossModel {
            loss_rate: loss_rate.clamp(0.0, 1.0),
        }
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f64 {
        self.loss_rate
    }

    /// Decides whether a particular message is lost.
    pub fn drops(&self, rng: &mut SimRng) -> bool {
        self.loss_rate > 0.0 && rng.gen_bool(self.loss_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency_is_constant() {
        let m = LatencyModel::Constant(SimDuration::from_millis(5));
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(10),
            max: SimDuration::from_millis(20),
        };
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(10) && d <= SimDuration::from_millis(20));
        }
    }

    #[test]
    fn base_jitter_is_at_least_base() {
        let m = LatencyModel::BaseJitter {
            base: SimDuration::from_millis(20),
            jitter_mean: SimDuration::from_millis(10),
        };
        let mut rng = SimRng::new(3);
        let mut total = 0u64;
        for _ in 0..2000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(20));
            total += d.as_micros();
        }
        let mean_ms = total as f64 / 2000.0 / 1000.0;
        // Mean should be roughly base + jitter_mean = 30ms.
        assert!((mean_ms - 30.0).abs() < 3.0, "mean was {mean_ms}ms");
    }

    #[test]
    fn loss_model_extremes() {
        let mut rng = SimRng::new(4);
        let never = LossModel::lossless();
        let always = LossModel::with_rate(1.0);
        for _ in 0..100 {
            assert!(!never.drops(&mut rng));
            assert!(always.drops(&mut rng));
        }
        // Clamping out-of-range rates.
        assert_eq!(LossModel::with_rate(7.0).rate(), 1.0);
        assert_eq!(LossModel::with_rate(-3.0).rate(), 0.0);
    }

    #[test]
    fn loss_model_rough_rate() {
        let mut rng = SimRng::new(5);
        let m = LossModel::with_rate(0.2);
        let drops = (0..10_000).filter(|_| m.drops(&mut rng)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "observed rate {rate}");
    }
}
