//! Wire-size accounting.
//!
//! The central scalability argument of the paper is about **bytes on the wire**:
//! single-term indexes ship unboundedly long posting lists, HDK/QDI ship bounded ones.
//! Every message payload in the reproduction therefore implements [`WireSize`], a
//! deterministic estimate of its serialized size. The simulator sums these estimates
//! into [`crate::stats::TrafficStats`].
//!
//! The estimates model a compact binary encoding (fixed-width integers, length-prefixed
//! strings and sequences) rather than the exact bytes of any particular serializer, so
//! that bandwidth numbers are stable across serde/format changes.

/// Fixed per-message envelope overhead in bytes (source, destination, type tag,
/// sequence number) — roughly a UDP header plus a small application header.
pub const ENVELOPE_OVERHEAD: usize = 32;

/// Types that can report the number of bytes they would occupy on the wire.
pub trait WireSize {
    /// Estimated serialized size in bytes (excluding the message envelope).
    fn wire_size(&self) -> usize;

    /// A stable digest of the value's replicated content, used by
    /// anti-entropy repair to compare copies across holders without shipping
    /// the value itself. The default (the wire size) is a weak stand-in
    /// sufficient for toy payloads; types whose replica copies must be
    /// integrity-checked override it with a real content hash.
    fn content_digest(&self) -> u64 {
        self.wire_size() as u64
    }
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSize for bool {
    fn wire_size(&self) -> usize {
        1
    }
}

macro_rules! impl_wire_size_scalar {
    ($($t:ty),*) => {
        $(impl WireSize for $t {
            fn wire_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_wire_size_scalar!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl WireSize for String {
    fn wire_size(&self) -> usize {
        4 + self.len()
    }
}

impl WireSize for &str {
    fn wire_size(&self) -> usize {
        4 + self.len()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for &[T] {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(0u8.wire_size(), 1);
        assert_eq!(0u32.wire_size(), 4);
        assert_eq!(0u64.wire_size(), 8);
        assert_eq!(0f64.wire_size(), 8);
        assert_eq!(true.wire_size(), 1);
        assert_eq!(().wire_size(), 0);
    }

    #[test]
    fn string_and_bytes_sizes() {
        assert_eq!("abc".wire_size(), 7);
        assert_eq!(String::from("hello").wire_size(), 9);
        assert_eq!(b"12345678".to_vec().wire_size(), 12);
    }

    #[test]
    fn container_sizes() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(v.wire_size(), 4 + 12);
        let o: Option<u64> = Some(9);
        assert_eq!(o.wire_size(), 9);
        let n: Option<u64> = None;
        assert_eq!(n.wire_size(), 1);
        assert_eq!((1u32, "ab").wire_size(), 4 + 6);
        assert_eq!((1u8, 2u8, 3u8).wire_size(), 3);
    }

    #[test]
    fn nested_containers() {
        let vv: Vec<Vec<u16>> = vec![vec![1, 2], vec![3]];
        // outer 4 + (4 + 4) + (4 + 2)
        assert_eq!(vv.wire_size(), 18);
    }
}
