//! The discrete-event simulator.
//!
//! A [`Simulator`] hosts a set of [`Node`] implementations identified by [`NodeId`].
//! Nodes exchange typed messages; the simulator applies the configured latency and
//! loss models, accounts bytes into [`TrafficStats`], models bounded per-node inbound
//! queues with a finite processing rate (needed to reproduce congestion collapse), and
//! delivers messages and timers in deterministic order.

use crate::event::EventQueue;
use crate::link::{LatencyModel, LossModel};
use crate::rng::SimRng;
use crate::stats::{DropKind, TrafficCategory, TrafficStats};
use crate::time::{SimDuration, SimTime};
use crate::wire::{WireSize, ENVELOPE_OVERHEAD};
use std::collections::VecDeque;

/// Identifier of a node inside a [`Simulator`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Behaviour of a simulated node.
pub trait Node {
    /// The message type exchanged between nodes of this simulation.
    type Msg: WireSize;

    /// Called when a message from `from` is processed by this node.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer previously scheduled via [`Context::schedule`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, timer: u64) {
        let _ = (ctx, timer);
    }
}

/// Configuration of the simulated network.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// One-way latency model applied to every message.
    pub latency: LatencyModel,
    /// Independent per-message loss model.
    pub loss: LossModel,
    /// Maximum number of messages waiting in a node's inbound queue.
    /// Messages arriving at a full queue are dropped (congestion loss).
    pub inbox_capacity: usize,
    /// Time a node needs to process one message. Together with `inbox_capacity`
    /// this bounds per-node throughput.
    pub service_time: SimDuration,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: LatencyModel::local_area(),
            loss: LossModel::lossless(),
            inbox_capacity: 4096,
            service_time: SimDuration::from_micros(10),
        }
    }
}

impl SimConfig {
    /// A wide-area configuration approximating the paper's Internet deployment.
    pub fn wide_area() -> Self {
        SimConfig {
            latency: LatencyModel::wide_area(),
            loss: LossModel::with_rate(0.001),
            inbox_capacity: 1024,
            service_time: SimDuration::from_micros(50),
        }
    }
}

/// What the simulator does when an event fires.
enum Fire<M> {
    /// A message arrives at `to`'s inbound queue.
    Arrive {
        from: NodeId,
        to: NodeId,
        msg: M,
        bytes: usize,
    },
    /// `node` picks the next message from its inbound queue.
    Process { node: NodeId },
    /// A timer fires at `node`.
    Timer { node: NodeId, timer: u64 },
}

/// An outgoing action buffered during a node callback.
enum Action<M> {
    Send {
        to: NodeId,
        msg: M,
        category: TrafficCategory,
    },
    Schedule {
        delay: SimDuration,
        timer: u64,
    },
}

/// The interface a node uses to interact with the network during a callback.
pub struct Context<'a, M> {
    node: NodeId,
    now: SimTime,
    rng: &'a mut SimRng,
    actions: Vec<Action<M>>,
}

impl<'a, M> Context<'a, M> {
    /// The identifier of the node the callback runs on.
    pub fn self_id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// A deterministic RNG that nodes may use for randomized protocols.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends `msg` to `to`, attributed to [`TrafficCategory::Other`].
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.send_categorized(to, msg, TrafficCategory::Other);
    }

    /// Sends `msg` to `to`, attributing the traffic to `category`.
    pub fn send_categorized(&mut self, to: NodeId, msg: M, category: TrafficCategory) {
        self.actions.push(Action::Send { to, msg, category });
    }

    /// Schedules `timer` to fire on this node after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, timer: u64) {
        self.actions.push(Action::Schedule { delay, timer });
    }
}

/// Per-node runtime state maintained by the simulator.
struct NodeState<M> {
    inbox: VecDeque<(NodeId, M, usize)>,
    /// Whether a `Process` event is currently scheduled for this node.
    processing: bool,
}

impl<M> Default for NodeState<M> {
    fn default() -> Self {
        NodeState {
            inbox: VecDeque::new(),
            processing: false,
        }
    }
}

/// The discrete-event network simulator.
pub struct Simulator<N: Node> {
    nodes: Vec<N>,
    states: Vec<NodeState<N::Msg>>,
    queue: EventQueue<Fire<N::Msg>>,
    config: SimConfig,
    stats: TrafficStats,
    rng: SimRng,
    now: SimTime,
    delivered: u64,
    processed: u64,
}

impl<N: Node> Simulator<N> {
    /// Creates a simulator with the given configuration and RNG seed.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            states: Vec::new(),
            queue: EventQueue::new(),
            config,
            stats: TrafficStats::new(),
            rng: SimRng::new(seed),
            now: SimTime::ZERO,
            delivered: 0,
            processed: 0,
        }
    }

    /// Adds a node and returns its identifier.
    pub fn add_node(&mut self, node: N) -> NodeId {
        self.nodes.push(node);
        self.states.push(NodeState::default());
        NodeId(self.nodes.len() - 1)
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node's behaviour object.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Mutable access to a node's behaviour object (for external inspection or setup).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Number of messages handed to `on_message` so far.
    pub fn processed_messages(&self) -> u64 {
        self.processed
    }

    /// Number of messages delivered into inbound queues so far (excludes losses and
    /// congestion drops).
    pub fn delivered_messages(&self) -> u64 {
        self.delivered
    }

    /// Injects a message from `from` to `to` at absolute time `at` (external stimulus,
    /// e.g. a user submitting a query). Accounted as [`TrafficCategory::Other`].
    pub fn post(&mut self, from: NodeId, to: NodeId, msg: N::Msg, at: SimTime) {
        self.post_categorized(from, to, msg, at, TrafficCategory::Other);
    }

    /// Injects a message with an explicit traffic category.
    pub fn post_categorized(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: N::Msg,
        at: SimTime,
        category: TrafficCategory,
    ) {
        let bytes = msg.wire_size() + ENVELOPE_OVERHEAD;
        self.stats.record(category, bytes);
        if self.config.loss.drops(&mut self.rng) {
            self.stats.record_drop(DropKind::Loss, bytes);
            return;
        }
        let delay = self.config.latency.sample(&mut self.rng);
        let arrive = at.max(self.now) + delay;
        self.queue.push(
            arrive,
            Fire::Arrive {
                from,
                to,
                msg,
                bytes,
            },
        );
    }

    /// Schedules a timer on `node` at absolute time `at`.
    pub fn post_timer(&mut self, node: NodeId, timer: u64, at: SimTime) {
        self.queue
            .push(at.max(self.now), Fire::Timer { node, timer });
    }

    /// Runs the simulation until the event queue drains or `max_events` events have
    /// been processed. Returns the number of events processed.
    pub fn run_to_completion(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events {
            if !self.step() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Runs the simulation until simulated time `until` (inclusive of events at that
    /// instant) or until the queue drains. Returns the number of events processed.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            if !self.step() {
                break;
            }
            n += 1;
        }
        self.now = self.now.max(until);
        n
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(event.at);
        match event.payload {
            Fire::Arrive {
                from,
                to,
                msg,
                bytes,
            } => self.handle_arrival(from, to, msg, bytes),
            Fire::Process { node } => self.handle_process(node),
            Fire::Timer { node, timer } => self.dispatch_timer(node, timer),
        }
        true
    }

    fn handle_arrival(&mut self, from: NodeId, to: NodeId, msg: N::Msg, bytes: usize) {
        if to.0 >= self.nodes.len() {
            // Destination disappeared (e.g. churn); drop silently but account it.
            self.stats.record_drop(DropKind::DeadDestination, bytes);
            return;
        }
        let state = &mut self.states[to.0];
        if state.inbox.len() >= self.config.inbox_capacity {
            // Congestion drop: the receiving peer's queue is full.
            self.stats.record_drop(DropKind::Congestion, bytes);
            return;
        }
        self.delivered += 1;
        state.inbox.push_back((from, msg, bytes));
        if !state.processing {
            state.processing = true;
            self.queue.push(
                self.now + self.config.service_time,
                Fire::Process { node: to },
            );
        }
    }

    fn handle_process(&mut self, node: NodeId) {
        if node.0 >= self.nodes.len() {
            return;
        }
        let item = self.states[node.0].inbox.pop_front();
        match item {
            Some((from, msg, _bytes)) => {
                self.processed += 1;
                self.dispatch_message(node, from, msg);
                // Schedule the next processing slot if more work is queued.
                let state = &mut self.states[node.0];
                if state.inbox.is_empty() {
                    state.processing = false;
                } else {
                    self.queue
                        .push(self.now + self.config.service_time, Fire::Process { node });
                }
            }
            None => {
                self.states[node.0].processing = false;
            }
        }
    }

    fn dispatch_message(&mut self, node: NodeId, from: NodeId, msg: N::Msg) {
        let mut ctx = Context {
            node,
            now: self.now,
            rng: &mut self.rng,
            actions: Vec::new(),
        };
        self.nodes[node.0].on_message(&mut ctx, from, msg);
        let actions = ctx.actions;
        self.apply_actions(node, actions);
    }

    fn dispatch_timer(&mut self, node: NodeId, timer: u64) {
        if node.0 >= self.nodes.len() {
            return;
        }
        let mut ctx = Context {
            node,
            now: self.now,
            rng: &mut self.rng,
            actions: Vec::new(),
        };
        self.nodes[node.0].on_timer(&mut ctx, timer);
        let actions = ctx.actions;
        self.apply_actions(node, actions);
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action<N::Msg>>) {
        for action in actions {
            match action {
                Action::Send { to, msg, category } => {
                    self.post_categorized(node, to, msg, self.now, category);
                }
                Action::Schedule { delay, timer } => {
                    self.queue
                        .push(self.now + delay, Fire::Timer { node, timer });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received number back, decremented, until it reaches zero.
    struct Countdown {
        received: Vec<u64>,
    }

    impl Node for Countdown {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            self.received.push(msg);
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u64>, timer: u64) {
            self.received.push(1000 + timer);
        }
    }

    fn sim() -> Simulator<Countdown> {
        Simulator::new(SimConfig::default(), 7)
    }

    #[test]
    fn ping_pong_countdown() {
        let mut s = sim();
        let a = s.add_node(Countdown { received: vec![] });
        let b = s.add_node(Countdown { received: vec![] });
        s.post(a, b, 5, SimTime::ZERO);
        s.run_to_completion(1_000);
        // b receives 5,3,1 ; a receives 4,2,0
        assert_eq!(s.node(b).received, vec![5, 3, 1]);
        assert_eq!(s.node(a).received, vec![4, 2, 0]);
        assert_eq!(s.stats().messages_sent(), 6);
        assert_eq!(s.processed_messages(), 6);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut s = sim();
        let a = s.add_node(Countdown { received: vec![] });
        s.post_timer(a, 3, SimTime::from_millis(30));
        s.post_timer(a, 1, SimTime::from_millis(10));
        s.post_timer(a, 2, SimTime::from_millis(20));
        s.run_until(SimTime::from_millis(25));
        assert_eq!(s.node(a).received, vec![1001, 1002]);
        s.run_to_completion(10);
        assert_eq!(s.node(a).received, vec![1001, 1002, 1003]);
        assert!(s.now() >= SimTime::from_millis(30));
    }

    #[test]
    fn loss_drops_messages() {
        let config = SimConfig {
            loss: LossModel::with_rate(1.0),
            ..SimConfig::default()
        };
        let mut s: Simulator<Countdown> = Simulator::new(config, 1);
        let a = s.add_node(Countdown { received: vec![] });
        let b = s.add_node(Countdown { received: vec![] });
        s.post(a, b, 9, SimTime::ZERO);
        s.run_to_completion(100);
        assert!(s.node(b).received.is_empty());
        assert_eq!(s.stats().dropped_messages(), 1);
    }

    #[test]
    fn full_inbox_causes_congestion_drops() {
        let config = SimConfig {
            inbox_capacity: 2,
            service_time: SimDuration::from_millis(100),
            latency: LatencyModel::Constant(SimDuration::from_micros(1)),
            ..SimConfig::default()
        };
        let mut s: Simulator<Countdown> = Simulator::new(config, 2);
        let a = s.add_node(Countdown { received: vec![] });
        let b = s.add_node(Countdown { received: vec![] });
        // Burst of 10 messages arrives long before b can process any.
        for _ in 0..10 {
            s.post(a, b, 0, SimTime::ZERO);
        }
        s.run_to_completion(1_000);
        // Only the messages that fit the queue get processed; the rest are dropped.
        assert!(
            s.stats().dropped_messages() >= 7,
            "drops: {}",
            s.stats().dropped_messages()
        );
        assert!(s.node(b).received.len() <= 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| {
            let mut s: Simulator<Countdown> = Simulator::new(SimConfig::wide_area(), seed);
            let a = s.add_node(Countdown { received: vec![] });
            let b = s.add_node(Countdown { received: vec![] });
            s.post(a, b, 20, SimTime::ZERO);
            s.run_to_completion(10_000);
            (s.stats().bytes_sent(), s.now())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn categorized_traffic_is_attributed() {
        let mut s = sim();
        let a = s.add_node(Countdown { received: vec![] });
        let b = s.add_node(Countdown { received: vec![] });
        s.post_categorized(a, b, 0, SimTime::ZERO, TrafficCategory::Retrieval);
        s.run_to_completion(10);
        assert_eq!(s.stats().category(TrafficCategory::Retrieval).messages, 1);
        assert_eq!(s.stats().category(TrafficCategory::Other).messages, 0);
    }

    #[test]
    fn bytes_include_envelope_overhead() {
        let mut s = sim();
        let a = s.add_node(Countdown { received: vec![] });
        let b = s.add_node(Countdown { received: vec![] });
        s.post(a, b, 0u64, SimTime::ZERO);
        s.run_to_completion(10);
        // u64 payload (8 bytes) + envelope overhead.
        assert_eq!(s.stats().bytes_sent(), (8 + ENVELOPE_OVERHEAD) as u64);
    }
}
