//! Simulated time.
//!
//! The simulator measures time in integer **microseconds** since the start of the
//! simulation. Using integers (rather than floats) keeps event ordering exact and
//! the whole simulation bit-for-bit reproducible across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds from simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a floating point number.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Duration in seconds as a floating point number.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(1500).as_micros(), 1_500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        let d = SimTime::from_millis(20) - SimTime::from_millis(5);
        assert_eq!(d.as_millis(), 15);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(1);
        assert_eq!(t2, SimTime::from_secs(1));
    }

    #[test]
    fn saturating_behaviour() {
        let earlier = SimTime::from_secs(10);
        let later = SimTime::from_secs(4);
        assert_eq!(later.saturating_since(earlier), SimDuration::ZERO);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(u64::MAX / 1_000_000).saturating_mul(u64::MAX),
            SimDuration(u64::MAX)
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{:?}", SimDuration::from_micros(7)), "7us");
    }

    #[test]
    fn seconds_float_conversion() {
        let t = SimTime::from_micros(2_500_000);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
    }
}
