//! Discrete skewed distributions.
//!
//! Text collections, query logs and peer populations are all heavily skewed:
//! term frequencies and query popularity follow Zipf's law, and the AlvisP2P DHT is
//! explicitly designed to tolerate *arbitrary skew* in the peer identifier space.
//! The generators in this module produce those skews deterministically.

use crate::rng::SimRng;

/// A Zipf (discrete power-law) distribution over ranks `0..n`.
///
/// Rank `r` (0-based) is drawn with probability proportional to `1 / (r + 1)^s`,
/// where `s` is the skew exponent. `s = 0` degenerates to the uniform distribution,
/// `s ≈ 1` matches natural-language term frequencies, larger values concentrate the
/// mass further on the most popular ranks.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative distribution over ranks, `cdf[r]` = P(rank <= r).
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative / non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf distribution needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights.iter_mut() {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point drift so the final bucket always catches 1.0.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf {
            cdf: weights,
            exponent: s,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has no ranks (never true: construction requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The skew exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of drawing rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.gen_f64();
        // Binary search the first rank whose cdf is >= u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf values are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A continuous bounded power-law used to skew peer identifiers in the DHT
/// identifier space (experiment E5: routing under arbitrary skew).
///
/// Samples `x` in `[0, 1)` with density proportional to `(1 - x)^(alpha - 1) * alpha`
/// for `alpha >= 1`; `alpha = 1` is uniform, larger alpha concentrates identifiers
/// near `0`, producing the skewed key-space population the hop-space routing scheme
/// is designed to tolerate.
#[derive(Clone, Copy, Debug)]
pub struct PowerLaw {
    alpha: f64,
}

impl PowerLaw {
    /// Creates a bounded power-law with concentration parameter `alpha >= 1`.
    ///
    /// # Panics
    /// Panics if `alpha < 1` or `alpha` is not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha >= 1.0 && alpha.is_finite(),
            "alpha must be >= 1 and finite"
        );
        PowerLaw { alpha }
    }

    /// The concentration parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Samples a value in `[0, 1)`.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse-CDF sampling: CDF(x) = 1 - (1 - x)^alpha.
        let u = rng.gen_f64();
        let x = 1.0 - (1.0 - u).powf(1.0 / self.alpha);
        x.min(0.999_999_999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(100), 0.0);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_is_monotonically_decreasing() {
        let z = Zipf::new(50, 1.2);
        for r in 1..50 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_skew() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SimRng::new(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be sampled far more often than rank 100.
        assert!(
            counts[0] > counts[100] * 5,
            "head {} tail {}",
            counts[0],
            counts[100]
        );
        // All samples within range (indexing above would have panicked otherwise).
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn zipf_negative_exponent_panics() {
        let _ = Zipf::new(10, -1.0);
    }

    #[test]
    fn powerlaw_uniform_case() {
        let p = PowerLaw::new(1.0);
        let mut rng = SimRng::new(2);
        let samples: Vec<f64> = (0..10_000).map(|_| p.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
        assert!(samples.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn powerlaw_concentrates_near_zero() {
        let p = PowerLaw::new(8.0);
        let mut rng = SimRng::new(3);
        let samples: Vec<f64> = (0..10_000).map(|_| p.sample(&mut rng)).collect();
        let below_quarter = samples.iter().filter(|x| **x < 0.25).count();
        assert!(
            below_quarter > 8_000,
            "expected strong concentration, got {below_quarter}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be >= 1")]
    fn powerlaw_rejects_small_alpha() {
        let _ = PowerLaw::new(0.5);
    }
}
