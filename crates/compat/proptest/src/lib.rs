//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace ships a
//! small, self-contained property-testing harness covering the subset of the
//! proptest API the test suite uses:
//!
//! * the [`proptest!`] macro with `name in strategy` and `name: Type`
//!   parameters and an optional `#![proptest_config(...)]` header;
//! * [`Strategy`] with `prop_map`, integer/float range strategies, tuple
//!   strategies, `any::<T>()`, and regex-like `&str` string strategies;
//! * `proptest::collection::{vec, btree_set, hash_set}`;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! generated inputs left to the assertion message. Generation is fully
//! deterministic per test name and case index, so failures reproduce.

use std::collections::{BTreeSet, HashSet};
use std::marker::PhantomData;
use std::ops::Range;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64)
// ---------------------------------------------------------------------------

/// The deterministic RNG driving value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Widening-multiply bounded sampling (Lemire); bias is negligible for
        // test-data purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// `&str` strategies are regex-like string generators (see [`string_from_regex`]).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string_from_regex(self, rng)
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally beyond.
        if rng.below(10) < 9 {
            (0x20 + rng.below(0x5F) as u32 as u8) as char
        } else {
            char::from_u32(0xA1 + rng.below(0x500) as u32).unwrap_or('ß')
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Size specification accepted by the collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`fn@vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 100 * target + 1000 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// See [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = HashSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 100 * target + 1000 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-like string generation
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Node {
    Literal(char),
    AnyChar,
    Class(Vec<char>),
    Group(Vec<(Node, Repeat)>),
}

#[derive(Clone, Copy, Debug)]
struct Repeat {
    min: u32,
    max: u32, // inclusive
}

/// Generates a string matching a small regex subset: literals, `.`, character
/// classes `[a-z 0-9]`, groups `( ... )`, and `{n}` / `{n,m}` repetition.
pub fn string_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let nodes = parse_seq(&mut chars, pattern);
    let mut out = String::new();
    emit(&nodes, rng, &mut out);
    out
}

fn parse_seq(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(Node, Repeat)> {
    let mut nodes: Vec<(Node, Repeat)> = Vec::new();
    while let Some(&c) = chars.peek() {
        match c {
            ')' => break,
            '[' => {
                chars.next();
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                while let Some(&cc) = chars.peek() {
                    chars.next();
                    match cc {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let from = prev.take().unwrap();
                            let to = chars.next().unwrap();
                            for code in (from as u32)..=(to as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                        }
                        other => {
                            if let Some(p) = prev.replace(other) {
                                set.push(p);
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty character class in {pattern:?}");
                nodes.push((Node::Class(set), parse_repeat(chars)));
            }
            '(' => {
                chars.next();
                let inner = parse_seq(chars, pattern);
                assert_eq!(chars.next(), Some(')'), "unbalanced group in {pattern:?}");
                nodes.push((Node::Group(inner), parse_repeat(chars)));
            }
            '.' => {
                chars.next();
                nodes.push((Node::AnyChar, parse_repeat(chars)));
            }
            '\\' => {
                chars.next();
                let escaped = chars.next().expect("dangling escape");
                nodes.push((Node::Literal(escaped), parse_repeat(chars)));
            }
            other => {
                chars.next();
                nodes.push((Node::Literal(other), parse_repeat(chars)));
            }
        }
    }
    nodes
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Repeat {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let (min, max) = match spec.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
                None => {
                    let n: u32 = spec.trim().parse().unwrap();
                    (n, n)
                }
            };
            Repeat { min, max }
        }
        Some('*') => {
            chars.next();
            Repeat { min: 0, max: 8 }
        }
        Some('+') => {
            chars.next();
            Repeat { min: 1, max: 8 }
        }
        Some('?') => {
            chars.next();
            Repeat { min: 0, max: 1 }
        }
        _ => Repeat { min: 1, max: 1 },
    }
}

fn emit(nodes: &[(Node, Repeat)], rng: &mut TestRng, out: &mut String) {
    for (node, repeat) in nodes {
        let count = repeat.min + rng.below(u64::from(repeat.max - repeat.min + 1)) as u32;
        for _ in 0..count {
            match node {
                Node::Literal(c) => out.push(*c),
                Node::AnyChar => out.push(char::arbitrary(rng)),
                Node::Class(set) => {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
                Node::Group(inner) => emit(inner, rng, out),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Config and runner
// ---------------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs `body` for each case with a deterministic per-case RNG. Used by the
/// [`proptest!`] macro; not part of the public proptest API.
pub fn run_cases(cases: u32, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
    let name_hash = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    });
    for case in 0..cases {
        let mut rng = TestRng::new(name_hash ^ (u64::from(case) << 32) ^ u64::from(case));
        body(&mut rng);
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal: expands each test fn inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(__config.cases, stringify!($name), |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng, $($params)*);
                    $body
                });
            }
        )*
    };
}

/// Internal: binds one `proptest!` parameter list entry after another.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident in $strategy:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::generate(&($strategy), $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}
