//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the `serde` stand-in's [`Value`] tree to JSON text and parses it
//! back. Covers the subset the workspace uses: `to_string`, `to_string_pretty`
//! and `from_str` with full string escaping and exact integer round-trips.

use serde::{Deserialize, Serialize, Value};

/// Error raised by JSON serialization or parsing.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn print_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 is the shortest representation that round-trips.
                let s = format!("{f}");
                out.push_str(&s);
                // Keep floats recognisable as floats.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => print_string(s, out),
        Value::Arr(items) => print_seq(items.iter(), b"[]", out, indent, depth, |item, out, d| {
            print_value(item, out, indent, d)
        }),
        Value::Obj(pairs) => print_seq(
            pairs.iter(),
            b"{}",
            out,
            indent,
            depth,
            |(k, val), out, d| {
                print_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                print_value(val, out, indent, d)
            },
        ),
    }
}

fn print_seq<I: ExactSizeIterator>(
    items: I,
    brackets: &[u8; 2],
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    mut print_item: impl FnMut(I::Item, &mut String, usize),
) {
    out.push(brackets[0] as char);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        print_item(item, out, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(brackets[1] as char);
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("bad literal at offset {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number {text:?}: {e}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error("unterminated string".into()));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let hex = std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?;
                            let mut code =
                                u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))?;
                            // Surrogate pair.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) == Some(b"\\u") {
                                    self.pos += 2;
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| Error("truncated surrogate".into()))?;
                                    self.pos += 4;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|e| Error(e.to_string()))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|e| Error(e.to_string()))?;
                                    code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                } else {
                                    return Err(Error("lone surrogate".into()));
                                }
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("bad code point {code:#x}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => {
                    // Copy a whole UTF-8 scalar.
                    let len = utf8_len(b);
                    let chunk = rest
                        .get(..len)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| Error(e.to_string()))?);
                    self.pos += len;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
