//! Pins `#[serde(default)]` support in the in-workspace serde stand-in.
//!
//! Bench reports gain fields over time; perf_guard must still parse reports
//! committed before a field existed. A `#[serde(default)]` field therefore has
//! to deserialize to `Default::default()` when absent — and still round-trip
//! normally when present.

use serde::{Deserialize, Serialize};

#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
struct Counters {
    retries: u64,
    failed: u64,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Row {
    label: String,
    value: f64,
    #[serde(default)]
    counters: Counters,
}

#[test]
fn missing_default_field_deserializes_to_default() {
    let old_report = r#"{"label": "arm-a", "value": 1.5}"#;
    let row: Row = serde_json::from_str(old_report).expect("old-format report must parse");
    assert_eq!(row.label, "arm-a");
    assert_eq!(row.counters, Counters::default());
}

#[test]
fn present_default_field_round_trips() {
    let row = Row {
        label: "arm-b".into(),
        value: 2.0,
        counters: Counters {
            retries: 3,
            failed: 1,
        },
    };
    let json = serde_json::to_string(&row).expect("serialize");
    let back: Row = serde_json::from_str(&json).expect("round-trip");
    assert_eq!(back, row);
}

#[test]
fn missing_non_default_field_still_errors() {
    let err = serde_json::from_str::<Row>(r#"{"label": "arm-c"}"#)
        .expect_err("missing `value` has no default and must fail");
    assert!(
        format!("{err:?}").contains("value"),
        "error should name the missing field: {err:?}"
    );
}
