//! Derive macros for the in-workspace `serde` stand-in.
//!
//! Parses the item's token stream directly (no `syn`/`quote` — the build is
//! fully offline) and emits field-by-field `Serialize`/`Deserialize`
//! implementations against the simplified `serde::Value` data model.
//!
//! Supported shapes: structs with named fields, tuple structs, unit structs,
//! and enums whose variants are unit, tuple or struct-like. Generic types are
//! not supported (nothing in the workspace derives on a generic type). The
//! only recognized field attribute is `#[serde(default)]`, which substitutes
//! `Default::default()` when the field is absent during deserialization.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

/// A named field plus whether it carries `#[serde(default)]`.
#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    gen_serialize(&name, &shape).parse().unwrap()
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    gen_deserialize(&name, &shape).parse().unwrap()
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and the visibility qualifier.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            Some(other) => return Err(format!("unexpected token before item: {other}")),
            None => return Err("unexpected end of input".into()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!("derive on generic type `{name}` is not supported"));
        }
    }
    let shape = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Shape::Named(parse_named_fields(g.stream())?)
            } else {
                Shape::Enum(parse_variants(g.stream())?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => return Err(format!("unexpected item body: {other:?}")),
    };
    Ok((name, shape))
}

/// Recognizes the body of a `#[serde(default)]` attribute (the `#` is already
/// consumed; `body` is the bracketed group's stream).
fn attr_is_serde_default(body: TokenStream) -> bool {
    let mut iter = body.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Collects field names from the body of a braced struct (or struct variant).
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) and visibility, noting
        // whether any attribute is `#[serde(default)]`.
        let mut default = false;
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        default |= attr_is_serde_default(g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token in fields: {other}")),
                None => return Ok(fields),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        fields.push(Field { name, default });
        // Skip the type: consume until a comma outside of any `<...>` nesting.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut angle_depth = 0i32;
    let mut pending = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if pending {
                    fields += 1;
                    pending = false;
                }
            }
            _ => pending = true,
        }
    }
    if pending {
        fields += 1;
    }
    fields
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token in enum: {other}")),
                None => return Ok(variants),
            }
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                iter.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        let mut in_discriminant = false;
        while let Some(tok) = iter.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    iter.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '=' => {
                    in_discriminant = true;
                    iter.next();
                }
                _ if in_discriminant => {
                    iter.next();
                }
                other => return Err(format!("unexpected token after variant: {other}")),
            }
        }
        variants.push((name, shape));
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut s = String::from("let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                let f = &f.name;
                let _ = writeln!(
                    s,
                    "obj.push((String::from({f:?}), ::serde::Serialize::to_value(&self.{f})));"
                );
            }
            s.push_str("::serde::Value::Obj(obj)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for (vname, vshape) in variants {
                match vshape {
                    VariantShape::Unit => {
                        let _ = writeln!(
                            s,
                            "{name}::{vname} => ::serde::Value::Str(String::from({vname:?})),"
                        );
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner = String::from(
                            "let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fields {
                            let f = &f.name;
                            let _ = writeln!(
                                inner,
                                "obj.push((String::from({f:?}), ::serde::Serialize::to_value({f})));"
                            );
                        }
                        let _ = writeln!(
                            s,
                            "{name}::{vname} {{ {binds} }} => {{ {inner} \
                             ::serde::Value::Obj(vec![(String::from({vname:?}), ::serde::Value::Obj(obj))]) }},"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                        };
                        let _ = writeln!(
                            s,
                            "{name}::{vname}({}) => ::serde::Value::Obj(vec![(String::from({vname:?}), {payload})]),",
                            binds.join(", ")
                        );
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

/// Emits the deserializer expression for one named field of `src` (an object
/// value binding in scope), honoring `#[serde(default)]`.
fn field_init(f: &Field, src: &str) -> String {
    let name = &f.name;
    if f.default {
        format!("{name}: ::serde::field_or_default({src}, {name:?})?")
    } else {
        format!("{name}: ::serde::field({src}, {name:?})?")
    }
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, "v")).collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::tuple_elems(v, {n})?;\nOk({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut s =
                String::from("let (vname, payload) = ::serde::variant(v)?;\nmatch vname {\n");
            for (vname, vshape) in variants {
                match vshape {
                    VariantShape::Unit => {
                        let _ = writeln!(s, "{vname:?} => Ok({name}::{vname}),");
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> =
                            fields.iter().map(|f| field_init(f, "p")).collect();
                        let _ = writeln!(
                            s,
                            "{vname:?} => {{ let p = payload.ok_or_else(|| ::serde::DeError::new(\
                             format!(\"variant {{}} expects a payload\", vname)))?; \
                             Ok({name}::{vname} {{ {} }}) }},",
                            inits.join(", ")
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let build = if *n == 1 {
                            format!("Ok({name}::{vname}(::serde::Deserialize::from_value(p)?))")
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "let items = ::serde::tuple_elems(p, {n})?; Ok({name}::{vname}({}))",
                                items.join(", ")
                            )
                        };
                        let _ = writeln!(
                            s,
                            "{vname:?} => {{ let p = payload.ok_or_else(|| ::serde::DeError::new(\
                             format!(\"variant {{}} expects a payload\", vname)))?; {build} }},",
                        );
                    }
                }
            }
            let _ = writeln!(
                s,
                "other => Err(::serde::DeError::new(format!(\"unknown variant {{other}} of {name}\"))),"
            );
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
