//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the benches use — groups,
//! `bench_function`, `bench_with_input`, throughput annotations and the
//! `criterion_group!`/`criterion_main!` macros — on a simple wall-clock
//! timer. There is no statistical analysis: each benchmark is warmed up
//! once and then timed over a fixed-duration batch, reporting mean
//! nanoseconds per iteration (plus MiB/s when a byte throughput is set).

use std::time::{Duration, Instant};

/// Measurement budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Re-export matching `criterion::black_box` (deprecated upstream in favour of
/// `std::hint::black_box`, which the benches use directly).
pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&name.into(), None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (kept for API compatibility; the stand-in uses a
    /// fixed time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.throughput, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Work-per-iteration declaration used for derived throughput output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up run, then measure batches until the budget is spent.
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= MEASURE_BUDGET {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label}: no iterations recorded");
        return;
    }
    let nanos_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (1024.0 * 1024.0) / (nanos_per_iter / 1e9);
            println!("{label}: {nanos_per_iter:.0} ns/iter ({mib_s:.1} MiB/s)");
        }
        Some(Throughput::Elements(elems)) => {
            let elems_s = elems as f64 / (nanos_per_iter / 1e9);
            println!("{label}: {nanos_per_iter:.0} ns/iter ({elems_s:.0} elem/s)");
        }
        None => println!("{label}: {nanos_per_iter:.0} ns/iter"),
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark executable.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; a plain run takes
            // no arguments. `--test` means "compile check only" — skip work.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
