//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships a
//! minimal, self-contained replacement that covers exactly what the AlvisP2P
//! reproduction uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, plus JSON round-trips through the sibling `serde_json` stand-in.
//!
//! The data model is a single [`Value`] tree (null, bool, integers, floats,
//! strings, arrays, objects). [`Serialize`] renders a type into a `Value`;
//! [`Deserialize`] rebuilds the type from one. The derive macros live in the
//! `serde_derive` proc-macro crate and generate straightforward field-by-field
//! implementations. Fields marked `#[serde(default)]` fall back to
//! `Default::default()` when absent, so newer row structs still read reports
//! written before a field existed.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// The serialized representation: a JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (preserves full `u64` precision).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Arr(Vec<Value>),
    /// Map with string keys, in insertion order.
    Obj(Vec<(String, Value)>),
}

/// Error produced when rebuilding a type from a [`Value`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Convenience constructor.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code
// ---------------------------------------------------------------------------

/// Looks up `name` in an object value and deserializes it.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Obj(pairs) => match pairs.iter().find(|(k, _)| k == name) {
            Some((_, val)) => T::from_value(val),
            None => Err(DeError::new(format!("missing field `{name}`"))),
        },
        other => Err(DeError::new(format!(
            "expected object with field `{name}`, got {other:?}"
        ))),
    }
}

/// Looks up `name` in an object value and deserializes it, substituting the
/// type's `Default` when the field is absent.
///
/// Backs `#[serde(default)]`: reports written before a field existed still
/// deserialize, with the new field zero-initialized.
pub fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Obj(pairs) => match pairs.iter().find(|(k, _)| k == name) {
            Some((_, val)) => T::from_value(val),
            None => Ok(T::default()),
        },
        other => Err(DeError::new(format!(
            "expected object with field `{name}`, got {other:?}"
        ))),
    }
}

/// Splits an externally-tagged enum value into `(variant_name, payload)`.
///
/// Unit variants serialize as a bare string; data variants as a single-entry
/// object `{"Variant": payload}`.
pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
    match v {
        Value::Str(name) => Ok((name.as_str(), None)),
        Value::Obj(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), Some(&pairs[0].1))),
        other => Err(DeError::new(format!("expected enum value, got {other:?}"))),
    }
}

/// Interprets a value as an array of exactly `n` elements.
pub fn tuple_elems(v: &Value, n: usize) -> Result<&[Value], DeError> {
    match v {
        Value::Arr(items) if items.len() == n => Ok(items),
        other => Err(DeError::new(format!(
            "expected {n}-element array, got {other:?}"
        ))),
    }
}

fn as_u64(v: &Value) -> Result<u64, DeError> {
    match v {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => Ok(*f as u64),
        other => Err(DeError::new(format!(
            "expected unsigned integer, got {other:?}"
        ))),
    }
}

fn as_i64(v: &Value) -> Result<i64, DeError> {
    match v {
        Value::Int(n) => Ok(*n),
        Value::UInt(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
        Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
        other => Err(DeError::new(format!("expected integer, got {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Implementations for primitives and standard containers
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = as_u64(v)?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("{n} out of range")))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = as_i64(v)?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("{n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected {N}-element array, got {n}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = tuple_elems(v, 2)?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = tuple_elems(v, 3)?;
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

/// Renders map entries: an object when every key serializes to a string
/// (including unit enum variants), an array of `[key, value]` pairs otherwise.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)> + Clone,
) -> Value {
    let stringy = entries
        .clone()
        .all(|(k, _)| matches!(k.to_value(), Value::Str(_)));
    if stringy {
        let mut pairs: Vec<(String, Value)> = entries
            .map(|(k, v)| {
                let Value::Str(key) = k.to_value() else {
                    unreachable!()
                };
                (key, v.to_value())
            })
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    } else {
        Value::Arr(
            entries
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

/// Rebuilds map entries from either representation of [`map_to_value`].
fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    match v {
        Value::Obj(pairs) => pairs
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect(),
        Value::Arr(items) => items
            .iter()
            .map(|item| {
                let pair = tuple_elems(item, 2)?;
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect(),
        other => Err(DeError::new(format!("expected map, got {other:?}"))),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        map_to_value(entries.into_iter())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
