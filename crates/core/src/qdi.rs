//! Query-Driven Indexing (QDI).
//!
//! Where HDK chooses keys from document frequencies during an indexing phase, the
//! Query-Driven approach (Skobeltsyn et al., Infoscale/SIGIR 2007) starts from the
//! single-term index only and lets the **query stream** decide which term combinations
//! deserve a posting list:
//!
//! * every probe for a key — indexed or not — updates usage statistics at the key's
//!   responsible peer (decentralised query-popularity monitoring);
//! * when a non-indexed key becomes *popular* (probes reach an activation threshold)
//!   and is *non-redundant* (the results currently obtainable for it are truncated, so
//!   indexing it adds information), the responsible peer acquires a bounded top-k
//!   posting list on demand and activates the key;
//! * keys that stop being queried become *obsolete* and are deactivated, so the index
//!   continuously adapts to the current query popularity distribution.
//!
//! This module holds the pure decision logic and configuration; the acquisition
//! traffic model and orchestration live in [`crate::network`].

use crate::global_index::KeyUsageStats;
use serde::{Deserialize, Serialize};

/// Configuration of the Query-Driven Indexing strategy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QdiConfig {
    /// Number of probes after which a non-indexed key is considered popular enough to
    /// be activated.
    pub activation_threshold: u64,
    /// Truncation bound of acquired posting lists.
    pub truncation_k: usize,
    /// Maximum key length that may be activated on demand.
    pub max_key_len: usize,
    /// A key that has not been probed for this many queries is obsolete.
    pub obsolescence_window: u64,
    /// Responsible peers scan for obsolete keys every this many queries.
    pub eviction_period: u64,
    /// Only activate keys whose currently available results are truncated
    /// (the non-redundancy condition of the paper).
    pub require_nonredundant: bool,
}

impl Default for QdiConfig {
    fn default() -> Self {
        QdiConfig {
            activation_threshold: 3,
            truncation_k: 200,
            max_key_len: 3,
            obsolescence_window: 2_000,
            eviction_period: 500,
            require_nonredundant: true,
        }
    }
}

/// The activation decision for a probed key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivationDecision {
    /// The key should be activated (on-demand indexed) now.
    Activate,
    /// The key is not popular enough yet.
    NotPopularEnough,
    /// The key is already activated.
    AlreadyActive,
    /// The key is redundant: complete results are already available from sub-keys.
    Redundant,
    /// The key is longer than the configured maximum.
    TooLong,
    /// Single-term keys are part of the base index and never activated on demand.
    SingleTerm,
}

impl ActivationDecision {
    /// Whether the decision is to activate.
    pub fn should_activate(&self) -> bool {
        matches!(self, ActivationDecision::Activate)
    }
}

/// Decides whether a probed key should be activated.
///
/// * `usage` — the key's usage statistics after the current probe;
/// * `activated` — whether the key already has a posting list;
/// * `key_len` — number of terms in the key;
/// * `results_truncated` — whether the results currently obtainable for the key (from
///   its best indexed sub-keys) are truncated; `None` means the caller did not check.
pub fn activation_decision(
    usage: &KeyUsageStats,
    activated: bool,
    key_len: usize,
    results_truncated: Option<bool>,
    config: &QdiConfig,
) -> ActivationDecision {
    if activated {
        return ActivationDecision::AlreadyActive;
    }
    if key_len < 2 {
        return ActivationDecision::SingleTerm;
    }
    if key_len > config.max_key_len {
        return ActivationDecision::TooLong;
    }
    if usage.probes < config.activation_threshold {
        return ActivationDecision::NotPopularEnough;
    }
    if config.require_nonredundant && results_truncated == Some(false) {
        return ActivationDecision::Redundant;
    }
    ActivationDecision::Activate
}

/// Whether an activated key has become obsolete (not probed within the obsolescence
/// window) and should be deactivated at the next eviction scan.
pub fn is_obsolete(usage: &KeyUsageStats, current_seq: u64, config: &QdiConfig) -> bool {
    current_seq.saturating_sub(usage.last_probe) > config.obsolescence_window
}

/// Counters describing QDI's behaviour over a query stream (reported by experiment E7).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct QdiReport {
    /// Queries processed.
    pub queries: u64,
    /// Keys activated on demand.
    pub activations: u64,
    /// Keys deactivated as obsolete.
    pub evictions: u64,
    /// Bytes spent acquiring posting lists for activated keys.
    pub acquisition_bytes: u64,
    /// Probes answered from an activated multi-term key (index hits).
    pub multi_term_hits: u64,
}

impl QdiReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: &QdiReport) {
        self.queries += other.queries;
        self.activations += other.activations;
        self.evictions += other.evictions;
        self.acquisition_bytes += other.acquisition_bytes;
        self.multi_term_hits += other.multi_term_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(probes: u64, last_probe: u64) -> KeyUsageStats {
        KeyUsageStats {
            probes,
            hits: 0,
            last_probe,
        }
    }

    #[test]
    fn activation_requires_popularity() {
        let config = QdiConfig::default();
        assert_eq!(
            activation_decision(&usage(1, 0), false, 2, Some(true), &config),
            ActivationDecision::NotPopularEnough
        );
        assert_eq!(
            activation_decision(&usage(3, 0), false, 2, Some(true), &config),
            ActivationDecision::Activate
        );
        assert!(
            activation_decision(&usage(10, 0), false, 2, Some(true), &config).should_activate()
        );
    }

    #[test]
    fn already_active_and_single_terms_are_never_activated() {
        let config = QdiConfig::default();
        assert_eq!(
            activation_decision(&usage(100, 0), true, 2, Some(true), &config),
            ActivationDecision::AlreadyActive
        );
        assert_eq!(
            activation_decision(&usage(100, 0), false, 1, Some(true), &config),
            ActivationDecision::SingleTerm
        );
    }

    #[test]
    fn key_length_bound_is_respected() {
        let config = QdiConfig {
            max_key_len: 2,
            ..Default::default()
        };
        assert_eq!(
            activation_decision(&usage(100, 0), false, 3, Some(true), &config),
            ActivationDecision::TooLong
        );
    }

    #[test]
    fn redundant_keys_are_not_activated() {
        let config = QdiConfig::default();
        assert_eq!(
            activation_decision(&usage(100, 0), false, 2, Some(false), &config),
            ActivationDecision::Redundant
        );
        // Unknown redundancy (None) errs on the side of activating.
        assert_eq!(
            activation_decision(&usage(100, 0), false, 2, None, &config),
            ActivationDecision::Activate
        );
        // With the non-redundancy requirement disabled, complete results don't block.
        let relaxed = QdiConfig {
            require_nonredundant: false,
            ..Default::default()
        };
        assert_eq!(
            activation_decision(&usage(100, 0), false, 2, Some(false), &relaxed),
            ActivationDecision::Activate
        );
    }

    #[test]
    fn obsolescence_depends_on_last_probe() {
        let config = QdiConfig {
            obsolescence_window: 100,
            ..Default::default()
        };
        assert!(!is_obsolete(&usage(5, 950), 1000, &config));
        assert!(!is_obsolete(&usage(5, 900), 1000, &config));
        assert!(is_obsolete(&usage(5, 800), 1000, &config));
        // A key probed "in the future" (clock skew) is never obsolete.
        assert!(!is_obsolete(&usage(5, 2000), 1000, &config));
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = QdiReport {
            queries: 10,
            activations: 2,
            evictions: 1,
            acquisition_bytes: 100,
            multi_term_hits: 5,
        };
        let b = QdiReport {
            queries: 5,
            activations: 1,
            evictions: 0,
            acquisition_bytes: 50,
            multi_term_hits: 2,
        };
        a.merge(&b);
        assert_eq!(a.queries, 15);
        assert_eq!(a.activations, 3);
        assert_eq!(a.evictions, 1);
        assert_eq!(a.acquisition_bytes, 150);
        assert_eq!(a.multi_term_hits, 7);
    }
}
