//! Reference baselines.
//!
//! Two baselines frame the paper's claims:
//!
//! * [`CentralizedEngine`] — a conventional centralized search engine over the whole
//!   collection. It is the **retrieval-quality reference**: the paper claims AlvisP2P's
//!   quality is "fully comparable to state-of-the-art centralized search engines", and
//!   experiment E4 measures precision/overlap against exactly this engine.
//! * The **single-term full-posting-list** distributed strategy of Zhang & Suel
//!   (reference \[11\] of the paper) — the approach AlvisP2P argues against: every term's
//!   complete posting list is stored in the DHT and shipped to the querying peer, so
//!   retrieval traffic grows with the collection. It is implemented as the
//!   [`crate::strategy::SingleTermFull`] strategy; this module holds
//!   the shared scoring helper both use.

use alvisp2p_textindex::bm25::{Bm25Params, Bm25Searcher, ScoredDoc};
use alvisp2p_textindex::{Analyzer, DocId, InvertedIndex};

/// A centralized search engine over the complete global collection.
///
/// Conceptually this is "what Google would do with the same documents": one inverted
/// index, exact global statistics, no truncation anywhere.
#[derive(Clone, Debug)]
pub struct CentralizedEngine {
    index: InvertedIndex,
    analyzer: Analyzer,
    params: Bm25Params,
}

impl CentralizedEngine {
    /// Creates an empty engine.
    pub fn new(params: Bm25Params) -> Self {
        let analyzer = Analyzer::default();
        CentralizedEngine {
            index: InvertedIndex::new(analyzer.clone()),
            analyzer,
            params,
        }
    }

    /// Indexes one document.
    pub fn index_text(&mut self, id: DocId, text: &str) {
        self.index.index_text(id, text);
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.index.doc_count()
    }

    /// The underlying inverted index (read-only).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Answers a raw-text query with the top-`k` BM25 results.
    pub fn search(&self, query: &str, k: usize) -> Vec<ScoredDoc> {
        let terms = self.analyzer.analyze_query(query);
        Bm25Searcher::with_params(&self.index, self.params).search(&terms, k)
    }

    /// Answers an already-analyzed query.
    pub fn search_terms(&self, terms: &[String], k: usize) -> Vec<ScoredDoc> {
        Bm25Searcher::with_params(&self.index, self.params).search(terms, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CentralizedEngine {
        let mut e = CentralizedEngine::new(Bm25Params::default());
        let docs = [
            "peer to peer retrieval with truncated posting lists",
            "centralized search engines use one big inverted index",
            "query driven indexing adapts to query popularity",
            "bm25 ranking uses document frequencies and lengths",
        ];
        for (i, d) in docs.iter().enumerate() {
            e.index_text(DocId::new((i % 2) as u32, i as u32), d);
        }
        e
    }

    #[test]
    fn centralized_engine_answers_queries() {
        let e = engine();
        assert_eq!(e.doc_count(), 4);
        let results = e.search("peer retrieval", 10);
        assert!(!results.is_empty());
        assert_eq!(results[0].doc, DocId::new(0, 0));
        // Raw-text and pre-analyzed queries agree.
        let analyzed = Analyzer::default().analyze_query("peer retrieval");
        assert_eq!(e.search_terms(&analyzed, 10), results);
    }

    #[test]
    fn unknown_query_terms_return_nothing() {
        let e = engine();
        assert!(e.search("zzzz qqqq", 5).is_empty());
        assert!(e.search("", 5).is_empty());
    }

    #[test]
    fn results_are_ranked_and_bounded() {
        let e = engine();
        let all = e.search("query index ranking", 10);
        assert!(all.len() >= 2);
        for w in all.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let one = e.search("query index ranking", 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].doc, all[0].doc);
    }
}
