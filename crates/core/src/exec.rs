//! Plan execution: run a [`QueryPlan`] and observe results incrementally.
//!
//! The second half of the plan → execute pipeline (see [`crate::plan`]). Three
//! ways to consume an execution, from highest to lowest level:
//!
//! * [`crate::network::AlvisNetwork::run`] — run a plan to completion and get the
//!   final [`QueryResponse`] (what `execute` does internally);
//! * [`ExecutionObserver`] — push-style: [`crate::network::AlvisNetwork::run_observed`]
//!   calls [`ExecutionObserver::on_probe`] after every probe with the key, the
//!   outcome, the bytes spent and the running top-k, and the observer may stop the
//!   execution early (e.g. with the built-in [`StableTopK`] once the top-k has
//!   stabilised);
//! * [`QueryStream`] — pull-style: an iterator of [`ProbeEvent`]s that the caller
//!   drains at its own pace and then [`QueryStream::finish`]es into the response.
//!
//! Early termination is loss-free bookkeeping-wise: remaining scheduled probes are
//! recorded as skipped in the trace, the response is assembled from what was
//! retrieved, and adaptive strategies still observe the (partial) query through
//! [`crate::strategy::Strategy::post_query`].

use crate::error::AlvisError;
use crate::fault::{Completeness, FailureCause, ProbeOutcome};
use crate::global_index::ProbeResult;
use crate::key::TermKey;
use crate::lattice::NodeOutcome;
use crate::network::AlvisNetwork;
use crate::plan::{CursorStep, PlanCursor, QueryPlan};
use crate::ranking::{keys_are_laminar, merge_retrieved};
use crate::request::{rank_safe_floor, QueryRequest, QueryResponse, ThresholdMode};
use alvisp2p_dht::DhtError;
use alvisp2p_textindex::bm25::ScoredDoc;
use alvisp2p_textindex::DocId;

/// One executed probe, as seen by observers and streams.
#[derive(Clone, Debug)]
pub struct ProbeEvent {
    /// 0-based index among the probes actually sent.
    pub index: usize,
    /// Number of probes the plan scheduled in total.
    pub planned: usize,
    /// The probed key.
    pub key: TermKey,
    /// What the probe returned.
    pub outcome: NodeOutcome,
    /// Retrieval bytes this probe charged.
    pub bytes: u64,
    /// Overlay hops this probe took.
    pub hops: usize,
    /// Cumulative retrieval bytes of the query so far.
    pub spent_bytes: u64,
    /// Cumulative overlay hops of the query so far.
    pub spent_hops: usize,
    /// The score floor this probe carried (threshold-aware probes: the
    /// responsible peer elided posting entries scoring below it). `None` until
    /// the running top-k is full, or when the request disabled thresholding.
    pub score_floor: Option<f64>,
    /// The peer that served the probe: the key's responsible peer, or the
    /// least-loaded live replica when the key is hot-replicated (see
    /// [`alvisp2p_dht::replica`]).
    pub served_by: usize,
    /// Number of live replica holders the key had at probe time (`0` unless
    /// the key is hot-replicated).
    pub replicas: usize,
    /// Whether the probe was answered from the querier's sketch cache instead
    /// of the network: a fresh [`crate::sketch::KeySketch`] proved the
    /// response useless before it was sent, so [`ProbeEvent::bytes`] is `0`
    /// while budget admission still accounts the bytes the probe would have
    /// cost (see `AlvisNetwork::sketch_prune`).
    pub pruned: bool,
    /// Number of re-sent attempts this probe needed (always `0` under
    /// [`crate::fault::FaultPlane::NoFaults`]). A probe with outcome
    /// [`NodeOutcome::Failed`] exhausted its [`crate::fault::RetryPolicy`];
    /// its [`ProbeEvent::bytes`] and [`ProbeEvent::hops`] are what the failed
    /// attempts really spent.
    pub retries: usize,
    /// The running top-k after merging everything retrieved so far.
    pub top_k: Vec<ScoredDoc>,
}

/// An observer's verdict after each probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionControl {
    /// Keep executing the plan.
    Continue,
    /// Stop: skip the remaining probes and assemble the response from what has
    /// been retrieved.
    Stop,
}

/// Observes a plan execution probe by probe and may terminate it early.
pub trait ExecutionObserver {
    /// Called after every sent probe. Return [`ExecutionControl::Stop`] to
    /// early-terminate (e.g. once the running top-k has stabilised).
    fn on_probe(&mut self, event: &ProbeEvent) -> ExecutionControl {
        let _ = event;
        ExecutionControl::Continue
    }

    /// Called once with the assembled response.
    fn on_complete(&mut self, response: &QueryResponse) {
        let _ = response;
    }
}

/// Built-in observer that stops the execution once the top-k document set has
/// been unchanged for `patience` consecutive probes — the "stop paying once the
/// answer stops moving" policy.
#[derive(Clone, Debug)]
pub struct StableTopK {
    patience: usize,
    stable: usize,
    last: Vec<DocId>,
}

impl StableTopK {
    /// Stops after the top-k has been stable for `patience` consecutive probes
    /// (`patience` is clamped to at least 1).
    pub fn new(patience: usize) -> Self {
        StableTopK {
            patience: patience.max(1),
            stable: 0,
            last: Vec::new(),
        }
    }

    /// How many consecutive probes the top-k has currently been stable for.
    pub fn stable_for(&self) -> usize {
        self.stable
    }
}

impl ExecutionObserver for StableTopK {
    fn on_probe(&mut self, event: &ProbeEvent) -> ExecutionControl {
        let docs: Vec<DocId> = event.top_k.iter().map(|r| r.doc).collect();
        if !docs.is_empty() && docs == self.last {
            self.stable += 1;
        } else {
            self.stable = 0;
            self.last = docs;
        }
        if self.stable >= self.patience {
            ExecutionControl::Stop
        } else {
            ExecutionControl::Continue
        }
    }
}

/// Runs [`QueryPlan`]s against a network. A thin, explicit handle over the same
/// machinery [`AlvisNetwork::execute`] uses — callers that already hold a network
/// can equally call [`AlvisNetwork::run`] / [`AlvisNetwork::run_observed`] /
/// [`AlvisNetwork::stream`] directly.
#[derive(Debug)]
pub struct QueryExecutor<'n> {
    net: &'n mut AlvisNetwork,
}

impl<'n> QueryExecutor<'n> {
    pub(crate) fn new(net: &'n mut AlvisNetwork) -> Self {
        QueryExecutor { net }
    }

    /// Runs a plan to completion.
    pub fn run(
        &mut self,
        plan: &QueryPlan,
        request: &QueryRequest,
    ) -> Result<QueryResponse, AlvisError> {
        self.net.run(plan, request)
    }

    /// Runs a plan under an observer that may early-terminate it.
    pub fn run_observed(
        &mut self,
        plan: &QueryPlan,
        request: &QueryRequest,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<QueryResponse, AlvisError> {
        self.net.run_observed(plan, request, observer)
    }

    /// Turns the executor into a pull-style stream over the execution.
    pub fn stream(
        self,
        plan: QueryPlan,
        request: QueryRequest,
    ) -> Result<QueryStream<'n>, AlvisError> {
        self.net.stream(plan, request)
    }
}

/// A pull-style execution: iterate [`ProbeEvent`]s at your own pace, optionally
/// [`QueryStream::stop`] early, then [`QueryStream::finish`] into the
/// [`QueryResponse`].
///
/// The [`Iterator`] implementation yields events and ends on the first overlay
/// error; [`QueryStream::finish`] surfaces the error. Dropping a stream without
/// finishing abandons the query: the response is never assembled and adaptive
/// strategies do not observe it.
#[derive(Debug)]
pub struct QueryStream<'n> {
    net: &'n mut AlvisNetwork,
    request: QueryRequest,
    query_key: Option<TermKey>,
    cursor: PlanCursor,
    seq: u64,
    planned: usize,
    sent: usize,
    base_bytes: u64,
    base_messages: u64,
    /// Number of terms in the analyzed query (the `m` of the threshold bound).
    query_terms: usize,
    /// The score floor fed into the next probe, recomputed from the running
    /// top-k after every event (see [`QueryStream::next_event`]). Under
    /// [`ThresholdMode::RankSafe`] this is the Conservative-style floor kept
    /// only for stale-cap fallback probes; certified probes derive their own
    /// per-key floor from `rank_safe` and `theta_lb` instead.
    score_floor: Option<f64>,
    /// Rank-safe floor ingredients, present exactly when the request runs
    /// [`ThresholdMode::RankSafe`].
    rank_safe: Option<RankSafePlan>,
    /// Monotone lower bound on the final k-th merged score: the largest
    /// running k-th merged score seen so far, maintained only while the
    /// rank-safe algebra is certified (see [`QueryStream::update_floor`]).
    theta_lb: Option<f64>,
    /// RankSafe only: probes that carried the Conservative fallback floor
    /// because a published maximum they depend on was stale.
    rank_safe_fallbacks: usize,
    /// Bytes the sketch-pruned probes *would* have charged. Budget admission
    /// runs on `spent + virtual_bytes` so the probe schedule is identical with
    /// and without pruning — savings never buy extra probes the sketch-free
    /// execution would not have sent.
    virtual_bytes: u64,
    /// Number of probes answered from the sketch cache instead of the wire.
    pruned: usize,
    /// Total re-sent probe attempts across the query (fault plane active).
    retries: usize,
    /// Probes whose every attempt failed (recorded in the trace, schedule
    /// continued).
    failed: usize,
    /// Probe responses discarded because their frame failed checksum
    /// verification (each one also counts as a failed attempt and is
    /// retryable).
    corrupt: usize,
    /// Probes whose serve was re-routed to a replica holder by failover.
    hedged: usize,
    error: Option<AlvisError>,
}

/// Pre-computed ingredients of the rank-safe floor algebra, snapshotted from
/// the plan at stream construction (see [`QueryStream::probe_floor`]).
///
/// `caps` holds, per scheduled probe key, the key's own published maximum
/// score and the summed maxima of the plan's probe keys *disjoint* from it —
/// the `Σ_{j≠i} max_score(j)` of the floor `θ − Σ_{j≠i} max_score(j)`,
/// sharpened to disjoint keys only (under a laminar family, a document's
/// other maximal covering keys are always disjoint from the probed one, so
/// nested keys never need to be charged). A key's entry is `None` when the
/// algebra could not be certified for it: its own cached maximum, or that of
/// a disjoint key, is stale against the list's publish version (lossy
/// publications, on-demand activation), so the recorded bound may undershoot
/// the real list and eliding against it would be unsound.
///
/// `laminar` is the structural gate: the coverage-weighted merge is only
/// additive — and per-document merged scores only monotone — when the probed
/// key family is laminar (pairwise disjoint or nested, see
/// [`keys_are_laminar`]). Non-laminar families dilute overlapped terms by
/// coverage fractions, which can shrink a merged score mid-stream and breaks
/// both the θ lower bound and the per-key charging argument; the stream then
/// sends every probe floor-free, keeping RankSafe byte-identical to
/// [`ThresholdMode::Off`] rather than silently approximate.
#[derive(Debug)]
struct RankSafePlan {
    caps: Vec<(TermKey, Option<(f64, f64)>)>,
    laminar: bool,
}

/// What [`QueryStream::acquire_probe`] got back from the network for one
/// scheduled probe: a served result, or an exhausted retry policy.
enum ProbeAcquisition {
    /// Some attempt succeeded (after `retries` re-sends; `hedged` when
    /// failover moved the serve off the key's primary).
    Served {
        probe: ProbeResult,
        retries: usize,
        hedged: bool,
    },
    /// Every attempt failed; the probe is recorded and the schedule
    /// continues.
    Failed {
        cause: FailureCause,
        hops: usize,
        retries: usize,
        served_by: usize,
    },
}

impl<'n> QueryStream<'n> {
    pub(crate) fn new(net: &'n mut AlvisNetwork, plan: QueryPlan, request: QueryRequest) -> Self {
        let lattice = net.strategy().lattice_config(&net.config().lattice);
        let (base_bytes, base_messages) = net.retrieval_totals();
        let query_key = plan.query_key.clone();
        let seq = if query_key.is_some() {
            net.begin_query()
        } else {
            0
        };
        let planned = plan.scheduled_probes();
        let query_terms = query_key.as_ref().map_or(0, TermKey::len);
        let cursor = PlanCursor::new(plan, &lattice, request.byte_budget, request.hop_budget);
        let rank_safe = (request.threshold == ThresholdMode::RankSafe)
            .then(|| Self::rank_safe_plan(net, cursor.plan()));
        QueryStream {
            net,
            request,
            query_key,
            cursor,
            seq,
            planned,
            sent: 0,
            base_bytes,
            base_messages,
            query_terms,
            score_floor: None,
            rank_safe,
            theta_lb: None,
            rank_safe_fallbacks: 0,
            virtual_bytes: 0,
            pruned: 0,
            retries: 0,
            failed: 0,
            corrupt: 0,
            hedged: 0,
            error: None,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &QueryPlan {
        self.cursor.plan()
    }

    /// Retrieval bytes the query has charged so far.
    pub fn spent_bytes(&self) -> u64 {
        self.net.retrieval_totals().0 - self.base_bytes
    }

    /// Stops the execution: remaining scheduled probes are skipped.
    pub fn stop(&mut self) {
        self.cursor.stop();
    }

    /// The score floor the next probe will carry, if any. Under
    /// [`ThresholdMode::RankSafe`] this is only the stale-cap fallback floor —
    /// certified probes compute a sharper per-key floor at send time.
    pub fn score_floor(&self) -> Option<f64> {
        self.score_floor
    }

    /// Number of probes that fell back to the Conservative floor because a
    /// published maximum the rank-safe algebra depends on was stale.
    pub fn rank_safe_fallbacks(&self) -> usize {
        self.rank_safe_fallbacks
    }

    /// Snapshots the rank-safe floor ingredients from the plan's scheduled
    /// probes (see [`RankSafePlan`]).
    ///
    /// A key's cap is its published maximum from
    /// [`crate::ranking::GlobalRankingStats::key_max_fresh`], accepted only
    /// when the recorded publish version matches the list's current one — a
    /// stale maximum may undershoot the list that will actually answer the
    /// probe (lossy publications can drop the re-publication that raised it),
    /// and a floor built on an undershooting cap elides entries it has no
    /// right to. A key nothing was ever published under (publish version
    /// still 0 and no recorded maximum) is provably absent from the index:
    /// its probe will miss, it contributes nothing to any merge, and its cap
    /// is exactly 0.
    fn rank_safe_plan(net: &AlvisNetwork, plan: &QueryPlan) -> RankSafePlan {
        let keys: Vec<TermKey> = plan.probes().map(|node| node.key.clone()).collect();
        let laminar = keys_are_laminar(&keys);
        let fresh: Vec<Option<f64>> = keys
            .iter()
            .map(|key| {
                let version = net.global_index().publish_version(key);
                net.ranking_stats().key_max_fresh(key, version).or_else(|| {
                    (version == 0 && net.ranking_stats().key_max_score(key).is_none())
                        .then_some(0.0)
                })
            })
            .collect();
        let disjoint =
            |a: &TermKey, b: &TermKey| a.term_ids().iter().all(|t| !b.term_ids().contains(t));
        let caps = keys
            .iter()
            .enumerate()
            .map(|(i, key)| {
                let cap = fresh[i].and_then(|own| {
                    keys.iter()
                        .enumerate()
                        .filter(|(j, other)| *j != i && disjoint(key, other))
                        .map(|(j, _)| fresh[j])
                        .sum::<Option<f64>>()
                        .map(|disjoint_sum| (own, disjoint_sum))
                });
                (key.clone(), cap)
            })
            .collect();
        RankSafePlan { caps, laminar }
    }

    /// The floor the next probe for `key` will carry.
    ///
    /// Outside [`ThresholdMode::RankSafe`] this is just the running
    /// Conservative/Aggressive floor. Under RankSafe, a certified key `i`
    /// (laminar plan, fresh own and disjoint caps) gets the provably
    /// rank-safe floor `θ_LB − Σ_{j disjoint from i} max_score(j)` minus one
    /// quantization step ([`rank_safe_floor`]): any document of the final
    /// top-k with merged score `≥ θ_LB` can lose at most the disjoint keys'
    /// maxima to its other covering lists, so its entry in list `i` scores at
    /// least the floor and survives elision — making the response
    /// byte-identical in ranking to [`ThresholdMode::Off`] at fewer posting
    /// bytes. A stale-cap key degrades to the Conservative fallback floor for
    /// this probe (counted in `rank_safe_fallbacks`, per-key as published
    /// maxima go stale independently); a non-laminar plan sends every probe
    /// floor-free because no per-key floor can be certified at all.
    fn probe_floor(&mut self, key: &TermKey) -> Option<f64> {
        let Some(rank_safe) = &self.rank_safe else {
            return self.score_floor;
        };
        if !rank_safe.laminar {
            return None;
        }
        let cap = rank_safe
            .caps
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, cap)| *cap);
        match cap {
            Some((own, disjoint_sum)) => {
                let theta = self.theta_lb?;
                rank_safe_floor(theta, own + disjoint_sum, own)
            }
            None => {
                let floor = self.score_floor;
                if floor.is_some() {
                    self.rank_safe_fallbacks += 1;
                }
                floor
            }
        }
    }

    /// Recomputes the threshold fed into subsequent probes from the running
    /// top-k.
    ///
    /// Once the running top-k holds the full `k` documents with k-th merged
    /// score `θ`, the floor is `θ / (2m)` ([`ThresholdMode::Conservative`])
    /// or `θ / m` ([`ThresholdMode::Aggressive`]), `m` being the number of
    /// query terms — see [`ThresholdMode`] for the guarantee each point buys.
    /// The conservative bound: a document whose every posting entry scores
    /// below `θ / (2m)` aggregates to strictly less than `θ / 2` across the
    /// at most `m` lattice keys that can contribute to it (`merge_retrieved`
    /// counts each query term once), so eliding those entries at the
    /// responsible peer cannot lift it into contention. The floor is
    /// recomputed (not ratcheted) after every probe because the
    /// coverage-weighted merge is not monotone in the retrieved set — `θ` can
    /// move in either direction as larger keys arrive.
    fn update_floor(&mut self, top_k: &[ScoredDoc]) {
        let scale = match self.request.threshold {
            ThresholdMode::Off => return,
            ThresholdMode::Conservative => 0.5,
            ThresholdMode::RankSafe => {
                // Maintain the θ lower bound the per-key rank-safe floors are
                // built on; the Conservative-style floor computed below only
                // serves stale-cap fallback probes. Over a *laminar* retrieval
                // (the structural gate) the coverage-weighted merge is exactly
                // additive over each document's maximal covering keys, so
                // per-document merged scores — and with them the running k-th
                // merged score — only grow as lists arrive: the running θ is
                // itself a sound lower bound on the final θ. (For general
                // non-laminar families it is not, which is one of the two
                // reasons the gate exists.) The ratchet keeps the bound
                // monotone against top-k ties resorting below `k`.
                if self.rank_safe.as_ref().is_some_and(|rs| rs.laminar)
                    && top_k.len() >= self.request.top_k
                {
                    if let Some(worst) = top_k.last() {
                        let lb = worst.score;
                        self.theta_lb = Some(self.theta_lb.map_or(lb, |t| t.max(lb)));
                    }
                }
                0.5
            }
            ThresholdMode::Aggressive => 1.0,
        };
        if self.query_terms == 0 {
            return;
        }
        self.score_floor = if top_k.len() >= self.request.top_k {
            top_k
                .last()
                .map(|worst| worst.score * scale / self.query_terms as f64)
        } else {
            None
        };
    }

    /// Acquires one scheduled probe from the network, surviving faults.
    ///
    /// With an inactive [`crate::fault::FaultPlane`] this is a single
    /// [`AlvisNetwork::probe_planned`] call — the exact pre-fault-plane code
    /// path, so the default configuration stays byte-identical. With an
    /// active plane, the attempt loop applies the network's
    /// [`crate::fault::RetryPolicy`]: bounded re-sends with exponential
    /// backoff and deterministic jitter in simulated time, a per-probe
    /// deadline, and — after an unresponsive peer — failover of the serve to
    /// the next live holder in the key's replica set. Every failed attempt's
    /// traffic is really charged, so retries compete against the query's
    /// byte/hop budgets like any other spend.
    ///
    /// A routing-level [`DhtError::LookupFailed`] (the responsible peer is
    /// dead or the routing state is stale) is downgraded to a recorded
    /// per-probe failure on both paths: one dead peer must not zero out an
    /// otherwise-answerable query. `BadOrigin` and `EmptyNetwork` stay fatal
    /// — they mean the *querier* is in no state to run anything.
    fn acquire_probe(
        &mut self,
        key: &TermKey,
        floor: Option<f64>,
        shed: usize,
    ) -> Result<ProbeAcquisition, AlvisError> {
        let origin = self.request.origin;
        if !self.net.fault_plane().is_active() {
            return match self.net.probe_planned(origin, key, self.seq, floor, shed) {
                Ok(probe) => Ok(ProbeAcquisition::Served {
                    probe,
                    retries: 0,
                    hedged: false,
                }),
                Err(DhtError::LookupFailed) => Ok(ProbeAcquisition::Failed {
                    cause: FailureCause::PeerDown,
                    hops: 0,
                    retries: 0,
                    served_by: origin,
                }),
                Err(e) => Err(AlvisError::from(e)),
            };
        }
        let policy = self.net.retry_policy();
        let ring = key.ring_id();
        let mut retries = 0usize;
        let mut hedged = false;
        let mut failed_hops = 0usize;
        let mut elapsed_us = 0u64;
        let mut downed: Vec<usize> = Vec::new();
        let mut serve_override: Option<usize> = None;
        // Assigned by every match arm that falls through to the retry logic.
        let mut last_cause;
        let mut last_server = origin;
        let mut attempt: u32 = 0;
        loop {
            match self.net.probe_attempt(
                origin,
                key,
                self.seq,
                floor,
                shed,
                attempt,
                serve_override,
            ) {
                // Routing exhausted without reaching a responsible peer:
                // lookups are deterministic, so re-sending cannot help.
                Err(DhtError::LookupFailed) => {
                    last_cause = FailureCause::PeerDown;
                    break;
                }
                Err(e) => return Err(AlvisError::from(e)),
                Ok(ProbeOutcome::Ok(mut probe)) => {
                    // Hops the failed attempts spent are part of this probe's
                    // real cost: charge them against the hop budget and the
                    // trace alongside the successful round trip.
                    probe.hops += failed_hops;
                    return Ok(ProbeAcquisition::Served {
                        probe,
                        retries,
                        hedged,
                    });
                }
                Ok(ProbeOutcome::Lost { hops }) => {
                    failed_hops += hops;
                    last_cause = FailureCause::Lost;
                }
                Ok(ProbeOutcome::TimedOut { hops }) => {
                    failed_hops += hops;
                    last_cause = FailureCause::TimedOut;
                }
                // A bit-flipped response caught by the codec's checksum
                // trailer: the full round trip was charged, the payload is
                // unusable, and re-sending may well succeed.
                Ok(ProbeOutcome::Corrupt { hops }) => {
                    failed_hops += hops;
                    last_cause = FailureCause::Corrupt;
                    self.corrupt += 1;
                }
                Ok(ProbeOutcome::PeerDown { peer, hops }) => {
                    failed_hops += hops;
                    last_cause = FailureCause::PeerDown;
                    last_server = peer;
                    if !downed.contains(&peer) {
                        downed.push(peer);
                    }
                }
            }
            if attempt as usize >= policy.max_retries {
                break;
            }
            let backoff = policy.backoff_us(attempt)
                + self
                    .net
                    .fault_plane()
                    .jitter_us(ring, self.seq, attempt, policy.jitter_us);
            elapsed_us += backoff;
            if policy.deadline_us > 0 && elapsed_us > policy.deadline_us {
                break;
            }
            if policy.failover && last_cause == FailureCause::PeerDown {
                // Re-serve from the next live, not-yet-tried holder of the
                // key (primary first, then its replica set).
                let candidates = self.net.global_index().serving_candidates(key);
                let next = candidates.iter().copied().find(|c| {
                    !downed.contains(c) && !self.net.fault_plane().peer_down(*c, self.seq)
                });
                match next {
                    Some(c) => {
                        serve_override = Some(c);
                        if candidates.first() != Some(&c) {
                            hedged = true;
                        }
                    }
                    // Every holder of the key is down: retrying is futile.
                    None => break,
                }
            }
            attempt += 1;
            retries += 1;
        }
        Ok(ProbeAcquisition::Failed {
            cause: last_cause,
            hops: failed_hops,
            retries,
            served_by: last_server,
        })
    }

    /// Executes the next scheduled probe and returns its event, or `None` when
    /// the plan is exhausted (or stopped). The first overlay error is returned
    /// once; subsequent calls return `None`.
    ///
    /// Before touching the wire, each probe is offered to the querier's sketch
    /// cache (`AlvisNetwork::sketch_prune`): when a fresh
    /// sketch proves the response cannot beat the running score floor, the
    /// known all-elided response is recorded for zero traffic and the bytes the
    /// probe would have charged are admitted *virtually* against the byte
    /// budget, keeping the probe schedule identical with and without sketches.
    ///
    /// A probe that exhausts the [`crate::fault::RetryPolicy`] yields an event
    /// with outcome [`NodeOutcome::Failed`] instead of an error: the failure
    /// is recorded in the trace, the key is *not* entered into the excluder
    /// set (so its subset keys stay probeable — the degraded substitution),
    /// and the schedule continues.
    pub fn next_event(&mut self) -> Option<Result<ProbeEvent, AlvisError>> {
        if self.error.is_some() {
            return None;
        }
        self.query_key.as_ref()?;
        let spent = self.spent_bytes() + self.virtual_bytes;
        match self.cursor.next_key(spent) {
            CursorStep::Done => None,
            CursorStep::Probe(key) => {
                let before = self.net.retrieval_totals().0;
                let floor = self.probe_floor(&key);
                let shed = self.cursor.pending_node().map_or(0, |n| n.shed_prefix);
                let (probe, pruned, probe_retries) =
                    match self
                        .net
                        .sketch_prune(self.request.origin, &key, self.seq, floor)
                    {
                        Some((probe, virtual_bytes)) => {
                            self.virtual_bytes += virtual_bytes;
                            self.pruned += 1;
                            (probe, true, 0)
                        }
                        None => match self.acquire_probe(&key, floor, shed) {
                            Err(err) => {
                                self.error = Some(err.clone());
                                return Some(Err(err));
                            }
                            Ok(ProbeAcquisition::Served {
                                probe,
                                retries,
                                hedged,
                            }) => {
                                self.retries += retries;
                                if hedged {
                                    self.hedged += 1;
                                }
                                (probe, false, retries)
                            }
                            Ok(ProbeAcquisition::Failed {
                                cause,
                                hops,
                                retries,
                                served_by,
                            }) => {
                                self.retries += retries;
                                self.failed += 1;
                                let replicas = self.net.global_index().replica_holders_of(&key);
                                self.cursor.record_failure(key.clone(), cause, hops);
                                let bytes = self.net.retrieval_totals().0 - before;
                                let top_k =
                                    merge_retrieved(self.cursor.retrieved(), self.request.top_k);
                                let event = ProbeEvent {
                                    index: self.sent,
                                    planned: self.planned,
                                    key,
                                    outcome: NodeOutcome::Failed { cause },
                                    bytes,
                                    hops,
                                    spent_bytes: self.spent_bytes(),
                                    spent_hops: self.cursor.hops_spent(),
                                    score_floor: floor,
                                    served_by,
                                    replicas: replicas.len(),
                                    pruned: false,
                                    retries,
                                    top_k,
                                };
                                self.sent += 1;
                                return Some(Ok(event));
                            }
                        },
                    };
                let hops = probe.hops;
                let served_by = probe.served_by;
                let replicas = probe.replica_set.len();
                if self.rank_safe.is_some() {
                    // Budget admission must see what the probe would have
                    // cost without elision, so rank-safe savings never buy
                    // extra probes the Off execution would not have sent —
                    // the same counterfactual accounting sketch pruning uses
                    // (a pruned probe reports zero elision for exactly that
                    // reason: its full cost is already virtual).
                    self.virtual_bytes += probe.elided_bytes as u64;
                }
                let outcome = self.cursor.record(probe);
                let bytes = self.net.retrieval_totals().0 - before;
                let top_k = merge_retrieved(self.cursor.retrieved(), self.request.top_k);
                self.update_floor(&top_k);
                let event = ProbeEvent {
                    index: self.sent,
                    planned: self.planned,
                    key,
                    outcome,
                    bytes,
                    hops,
                    spent_bytes: self.spent_bytes(),
                    spent_hops: self.cursor.hops_spent(),
                    score_floor: floor,
                    served_by,
                    replicas,
                    pruned,
                    retries: probe_retries,
                    top_k,
                };
                self.sent += 1;
                Some(Ok(event))
            }
        }
    }

    /// Drains any remaining probes and assembles the final [`QueryResponse`]
    /// (merged ranking, optional refinement, traffic accounting, trace,
    /// completeness report). Runs the strategy's
    /// [`crate::strategy::Strategy::post_query`] hook.
    pub fn finish(mut self) -> Result<QueryResponse, AlvisError> {
        while let Some(event) = self.next_event() {
            event?;
        }
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        let Some(query_key) = self.query_key.take() else {
            return Ok(QueryResponse::default());
        };
        // Planned document-frequency mass per scheduled probe, snapshotted
        // before `finish()` consumes the plan. Completeness compares the DF
        // mass actually served against this plan-time total; budget
        // truncation does not reduce it — only recorded probe failures do.
        let plan_df: Vec<(TermKey, u64)> = self
            .cursor
            .plan()
            .probes()
            .map(|node| (node.key.clone(), node.est_entries as u64))
            .collect();
        let (result, budget_exhausted) = self.cursor.finish();
        let failures: Vec<(String, FailureCause)> = result
            .trace
            .failed_probes()
            .into_iter()
            .map(|(key, cause)| (key.canonical(), cause))
            .collect();
        let planned_df: u64 = plan_df.iter().map(|(_, df)| df).sum();
        let failed_df: u64 = plan_df
            .iter()
            .filter(|(key, _)| {
                result
                    .trace
                    .failed_probes()
                    .iter()
                    .any(|(failed, _)| *failed == key)
            })
            .map(|(_, df)| df)
            .sum();
        let completeness = Completeness {
            planned_df,
            covered_df: planned_df - failed_df,
            failures,
        };
        self.net.post_query_hook(&query_key, &result, self.seq);
        let results = merge_retrieved(&result.retrieved, self.request.top_k);
        // Snapshot the first-step retrieval spend before refinement so
        // `QueryResponse::bytes` means the same thing with and without
        // refinement.
        let (bytes_now, messages_now) = self.net.retrieval_totals();
        let refined = if self.request.refine {
            self.net
                .refine(&self.request.text, &results, self.request.top_k)
        } else {
            Vec::new()
        };
        Ok(QueryResponse {
            results,
            refined,
            hops: result.trace.hops,
            trace: result.trace,
            bytes: bytes_now - self.base_bytes,
            messages: messages_now - self.base_messages,
            budget_exhausted,
            pruned_probes: self.pruned,
            retries: self.retries,
            failed_probes: self.failed,
            corrupt_probes: self.corrupt,
            hedged: self.hedged,
            rank_safe_fallbacks: self.rank_safe_fallbacks,
            completeness,
        })
    }
}

impl Iterator for QueryStream<'_> {
    type Item = ProbeEvent;

    fn next(&mut self) -> Option<ProbeEvent> {
        self.next_event().and_then(Result::ok)
    }
}
