//! Plan execution: run a [`QueryPlan`] and observe results incrementally.
//!
//! The second half of the plan → execute pipeline (see [`crate::plan`]). Three
//! ways to consume an execution, from highest to lowest level:
//!
//! * [`crate::network::AlvisNetwork::run`] — run a plan to completion and get the
//!   final [`QueryResponse`] (what `execute` does internally);
//! * [`ExecutionObserver`] — push-style: [`crate::network::AlvisNetwork::run_observed`]
//!   calls [`ExecutionObserver::on_probe`] after every probe with the key, the
//!   outcome, the bytes spent and the running top-k, and the observer may stop the
//!   execution early (e.g. with the built-in [`StableTopK`] once the top-k has
//!   stabilised);
//! * [`QueryStream`] — pull-style: an iterator of [`ProbeEvent`]s that the caller
//!   drains at its own pace and then [`QueryStream::finish`]es into the response.
//!
//! Early termination is loss-free bookkeeping-wise: remaining scheduled probes are
//! recorded as skipped in the trace, the response is assembled from what was
//! retrieved, and adaptive strategies still observe the (partial) query through
//! [`crate::strategy::Strategy::post_query`].

use crate::error::AlvisError;
use crate::key::TermKey;
use crate::lattice::NodeOutcome;
use crate::network::AlvisNetwork;
use crate::plan::{CursorStep, PlanCursor, QueryPlan};
use crate::ranking::merge_retrieved;
use crate::request::{QueryRequest, QueryResponse, ThresholdMode};
use alvisp2p_textindex::bm25::ScoredDoc;
use alvisp2p_textindex::DocId;

/// One executed probe, as seen by observers and streams.
#[derive(Clone, Debug)]
pub struct ProbeEvent {
    /// 0-based index among the probes actually sent.
    pub index: usize,
    /// Number of probes the plan scheduled in total.
    pub planned: usize,
    /// The probed key.
    pub key: TermKey,
    /// What the probe returned.
    pub outcome: NodeOutcome,
    /// Retrieval bytes this probe charged.
    pub bytes: u64,
    /// Overlay hops this probe took.
    pub hops: usize,
    /// Cumulative retrieval bytes of the query so far.
    pub spent_bytes: u64,
    /// Cumulative overlay hops of the query so far.
    pub spent_hops: usize,
    /// The score floor this probe carried (threshold-aware probes: the
    /// responsible peer elided posting entries scoring below it). `None` until
    /// the running top-k is full, or when the request disabled thresholding.
    pub score_floor: Option<f64>,
    /// The peer that served the probe: the key's responsible peer, or the
    /// least-loaded live replica when the key is hot-replicated (see
    /// [`alvisp2p_dht::replica`]).
    pub served_by: usize,
    /// Number of live replica holders the key had at probe time (`0` unless
    /// the key is hot-replicated).
    pub replicas: usize,
    /// Whether the probe was answered from the querier's sketch cache instead
    /// of the network: a fresh [`crate::sketch::KeySketch`] proved the
    /// response useless before it was sent, so [`ProbeEvent::bytes`] is `0`
    /// while budget admission still accounts the bytes the probe would have
    /// cost (see `AlvisNetwork::sketch_prune`).
    pub pruned: bool,
    /// The running top-k after merging everything retrieved so far.
    pub top_k: Vec<ScoredDoc>,
}

/// An observer's verdict after each probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionControl {
    /// Keep executing the plan.
    Continue,
    /// Stop: skip the remaining probes and assemble the response from what has
    /// been retrieved.
    Stop,
}

/// Observes a plan execution probe by probe and may terminate it early.
pub trait ExecutionObserver {
    /// Called after every sent probe. Return [`ExecutionControl::Stop`] to
    /// early-terminate (e.g. once the running top-k has stabilised).
    fn on_probe(&mut self, event: &ProbeEvent) -> ExecutionControl {
        let _ = event;
        ExecutionControl::Continue
    }

    /// Called once with the assembled response.
    fn on_complete(&mut self, response: &QueryResponse) {
        let _ = response;
    }
}

/// Built-in observer that stops the execution once the top-k document set has
/// been unchanged for `patience` consecutive probes — the "stop paying once the
/// answer stops moving" policy.
#[derive(Clone, Debug)]
pub struct StableTopK {
    patience: usize,
    stable: usize,
    last: Vec<DocId>,
}

impl StableTopK {
    /// Stops after the top-k has been stable for `patience` consecutive probes
    /// (`patience` is clamped to at least 1).
    pub fn new(patience: usize) -> Self {
        StableTopK {
            patience: patience.max(1),
            stable: 0,
            last: Vec::new(),
        }
    }

    /// How many consecutive probes the top-k has currently been stable for.
    pub fn stable_for(&self) -> usize {
        self.stable
    }
}

impl ExecutionObserver for StableTopK {
    fn on_probe(&mut self, event: &ProbeEvent) -> ExecutionControl {
        let docs: Vec<DocId> = event.top_k.iter().map(|r| r.doc).collect();
        if !docs.is_empty() && docs == self.last {
            self.stable += 1;
        } else {
            self.stable = 0;
            self.last = docs;
        }
        if self.stable >= self.patience {
            ExecutionControl::Stop
        } else {
            ExecutionControl::Continue
        }
    }
}

/// Runs [`QueryPlan`]s against a network. A thin, explicit handle over the same
/// machinery [`AlvisNetwork::execute`] uses — callers that already hold a network
/// can equally call [`AlvisNetwork::run`] / [`AlvisNetwork::run_observed`] /
/// [`AlvisNetwork::stream`] directly.
#[derive(Debug)]
pub struct QueryExecutor<'n> {
    net: &'n mut AlvisNetwork,
}

impl<'n> QueryExecutor<'n> {
    pub(crate) fn new(net: &'n mut AlvisNetwork) -> Self {
        QueryExecutor { net }
    }

    /// Runs a plan to completion.
    pub fn run(
        &mut self,
        plan: &QueryPlan,
        request: &QueryRequest,
    ) -> Result<QueryResponse, AlvisError> {
        self.net.run(plan, request)
    }

    /// Runs a plan under an observer that may early-terminate it.
    pub fn run_observed(
        &mut self,
        plan: &QueryPlan,
        request: &QueryRequest,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<QueryResponse, AlvisError> {
        self.net.run_observed(plan, request, observer)
    }

    /// Turns the executor into a pull-style stream over the execution.
    pub fn stream(
        self,
        plan: QueryPlan,
        request: QueryRequest,
    ) -> Result<QueryStream<'n>, AlvisError> {
        self.net.stream(plan, request)
    }
}

/// A pull-style execution: iterate [`ProbeEvent`]s at your own pace, optionally
/// [`QueryStream::stop`] early, then [`QueryStream::finish`] into the
/// [`QueryResponse`].
///
/// The [`Iterator`] implementation yields events and ends on the first overlay
/// error; [`QueryStream::finish`] surfaces the error. Dropping a stream without
/// finishing abandons the query: the response is never assembled and adaptive
/// strategies do not observe it.
#[derive(Debug)]
pub struct QueryStream<'n> {
    net: &'n mut AlvisNetwork,
    request: QueryRequest,
    query_key: Option<TermKey>,
    cursor: PlanCursor,
    seq: u64,
    planned: usize,
    sent: usize,
    base_bytes: u64,
    base_messages: u64,
    /// Number of terms in the analyzed query (the `m` of the threshold bound).
    query_terms: usize,
    /// The score floor fed into the next probe, recomputed from the running
    /// top-k after every event (see [`QueryStream::next_event`]).
    score_floor: Option<f64>,
    /// Bytes the sketch-pruned probes *would* have charged. Budget admission
    /// runs on `spent + virtual_bytes` so the probe schedule is identical with
    /// and without pruning — savings never buy extra probes the sketch-free
    /// execution would not have sent.
    virtual_bytes: u64,
    /// Number of probes answered from the sketch cache instead of the wire.
    pruned: usize,
    error: Option<AlvisError>,
}

impl<'n> QueryStream<'n> {
    pub(crate) fn new(net: &'n mut AlvisNetwork, plan: QueryPlan, request: QueryRequest) -> Self {
        let lattice = net.strategy().lattice_config(&net.config().lattice);
        let (base_bytes, base_messages) = net.retrieval_totals();
        let query_key = plan.query_key.clone();
        let seq = if query_key.is_some() {
            net.begin_query()
        } else {
            0
        };
        let planned = plan.scheduled_probes();
        let query_terms = query_key.as_ref().map_or(0, TermKey::len);
        let cursor = PlanCursor::new(plan, &lattice, request.byte_budget, request.hop_budget);
        QueryStream {
            net,
            request,
            query_key,
            cursor,
            seq,
            planned,
            sent: 0,
            base_bytes,
            base_messages,
            query_terms,
            score_floor: None,
            virtual_bytes: 0,
            pruned: 0,
            error: None,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &QueryPlan {
        self.cursor.plan()
    }

    /// Retrieval bytes the query has charged so far.
    pub fn spent_bytes(&self) -> u64 {
        self.net.retrieval_totals().0 - self.base_bytes
    }

    /// Stops the execution: remaining scheduled probes are skipped.
    pub fn stop(&mut self) {
        self.cursor.stop();
    }

    /// The score floor the next probe will carry, if any.
    pub fn score_floor(&self) -> Option<f64> {
        self.score_floor
    }

    /// Recomputes the threshold fed into subsequent probes from the running
    /// top-k.
    ///
    /// Once the running top-k holds the full `k` documents with k-th merged
    /// score `θ`, the floor is `θ / (2m)` ([`ThresholdMode::Conservative`])
    /// or `θ / m` ([`ThresholdMode::Aggressive`]), `m` being the number of
    /// query terms — see [`ThresholdMode`] for the guarantee each point buys.
    /// The conservative bound: a document whose every posting entry scores
    /// below `θ / (2m)` aggregates to strictly less than `θ / 2` across the
    /// at most `m` lattice keys that can contribute to it (`merge_retrieved`
    /// counts each query term once), so eliding those entries at the
    /// responsible peer cannot lift it into contention. The floor is
    /// recomputed (not ratcheted) after every probe because the
    /// coverage-weighted merge is not monotone in the retrieved set — `θ` can
    /// move in either direction as larger keys arrive.
    fn update_floor(&mut self, top_k: &[ScoredDoc]) {
        let scale = match self.request.threshold {
            ThresholdMode::Off => return,
            ThresholdMode::Conservative => 0.5,
            ThresholdMode::Aggressive => 1.0,
        };
        if self.query_terms == 0 {
            return;
        }
        self.score_floor = if top_k.len() >= self.request.top_k {
            top_k
                .last()
                .map(|worst| worst.score * scale / self.query_terms as f64)
        } else {
            None
        };
    }

    /// Executes the next scheduled probe and returns its event, or `None` when
    /// the plan is exhausted (or stopped). The first overlay error is returned
    /// once; subsequent calls return `None`.
    ///
    /// Before touching the wire, each probe is offered to the querier's sketch
    /// cache (`AlvisNetwork::sketch_prune`): when a fresh
    /// sketch proves the response cannot beat the running score floor, the
    /// known all-elided response is recorded for zero traffic and the bytes the
    /// probe would have charged are admitted *virtually* against the byte
    /// budget, keeping the probe schedule identical with and without sketches.
    pub fn next_event(&mut self) -> Option<Result<ProbeEvent, AlvisError>> {
        if self.error.is_some() {
            return None;
        }
        self.query_key.as_ref()?;
        let spent = self.spent_bytes() + self.virtual_bytes;
        match self.cursor.next_key(spent) {
            CursorStep::Done => None,
            CursorStep::Probe(key) => {
                let before = self.net.retrieval_totals().0;
                let floor = self.score_floor;
                let shed = self.cursor.pending_node().map_or(0, |n| n.shed_prefix);
                let (probe, pruned) =
                    match self
                        .net
                        .sketch_prune(self.request.origin, &key, self.seq, floor)
                    {
                        Some((probe, virtual_bytes)) => {
                            self.virtual_bytes += virtual_bytes;
                            self.pruned += 1;
                            (probe, true)
                        }
                        None => match self.net.probe_planned(
                            self.request.origin,
                            &key,
                            self.seq,
                            floor,
                            shed,
                        ) {
                            Err(e) => {
                                let err = AlvisError::from(e);
                                self.error = Some(err.clone());
                                return Some(Err(err));
                            }
                            Ok(probe) => (probe, false),
                        },
                    };
                let hops = probe.hops;
                let served_by = probe.served_by;
                let replicas = probe.replica_set.len();
                let outcome = self.cursor.record(probe);
                let bytes = self.net.retrieval_totals().0 - before;
                let top_k = merge_retrieved(self.cursor.retrieved(), self.request.top_k);
                self.update_floor(&top_k);
                let event = ProbeEvent {
                    index: self.sent,
                    planned: self.planned,
                    key,
                    outcome,
                    bytes,
                    hops,
                    spent_bytes: self.spent_bytes(),
                    spent_hops: self.cursor.hops_spent(),
                    score_floor: floor,
                    served_by,
                    replicas,
                    pruned,
                    top_k,
                };
                self.sent += 1;
                Some(Ok(event))
            }
        }
    }

    /// Drains any remaining probes and assembles the final [`QueryResponse`]
    /// (merged ranking, optional refinement, traffic accounting, trace). Runs
    /// the strategy's [`crate::strategy::Strategy::post_query`] hook.
    pub fn finish(mut self) -> Result<QueryResponse, AlvisError> {
        while let Some(event) = self.next_event() {
            event?;
        }
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        let Some(query_key) = self.query_key.take() else {
            return Ok(QueryResponse::default());
        };
        let (result, budget_exhausted) = self.cursor.finish();
        self.net.post_query_hook(&query_key, &result, self.seq);
        let results = merge_retrieved(&result.retrieved, self.request.top_k);
        // Snapshot the first-step retrieval spend before refinement so
        // `QueryResponse::bytes` means the same thing with and without
        // refinement.
        let (bytes_now, messages_now) = self.net.retrieval_totals();
        let refined = if self.request.refine {
            self.net
                .refine(&self.request.text, &results, self.request.top_k)
        } else {
            Vec::new()
        };
        Ok(QueryResponse {
            results,
            refined,
            hops: result.trace.hops,
            trace: result.trace,
            bytes: bytes_now - self.base_bytes,
            messages: messages_now - self.base_messages,
            budget_exhausted,
            pruned_probes: self.pruned,
        })
    }
}

impl Iterator for QueryStream<'_> {
    type Item = ProbeEvent;

    fn next(&mut self) -> Option<ProbeEvent> {
        self.next_event().and_then(Result::ok)
    }
}
