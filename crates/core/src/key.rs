//! Indexing keys: term combinations.
//!
//! The central idea of AlvisP2P is to index not only single terms but *carefully
//! chosen term combinations* ("keys"). A [`TermKey`] is a canonicalised (sorted,
//! deduplicated) set of one or more analyzed terms. Keys are hashed onto the DHT ring
//! to find the peer responsible for their posting list, and they are organised in a
//! subset lattice: the query `{a, b, c}` dominates the keys `{a,b}`, `{a,c}`, `{b,c}`,
//! `{a}`, `{b}` and `{c}` (see Figure 1 of the paper).
//!
//! # Representation
//!
//! Keys are built on the process-wide term interner
//! ([`alvisp2p_textindex::intern`]): a key stores the [`TermId`]s of its terms —
//! inline for the dominant 1–3 term case, spilled to a shared `Arc<[TermId]>`
//! beyond that — in **canonical (lexicographic term) order**, together with its
//! 64-bit ring hash and total term byte length, both computed once at
//! construction. Consequences for the hot paths:
//!
//! * [`TermKey::ring_id`] is a field copy — zero hashing, zero allocation;
//! * [`TermKey::clone`] is a `memcpy` (or one atomic increment when spilled);
//! * subset/domination checks compare 4-byte ids, never strings;
//! * [`TermKey::wire_size`] is arithmetic on cached lengths;
//! * the canonical `"a+b"` string only ever materializes for display and serde.
//!
//! Observable behaviour (ordering, equality, hashing onto the ring, lattice
//! enumeration order) is identical to the original `Vec<String>` representation;
//! `tests/proptest_intern.rs` in this crate pins that equivalence against a
//! string-based model.

use alvisp2p_dht::{RingHasher, RingId};
use alvisp2p_netsim::WireSize;
use alvisp2p_textindex::{intern, TermId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::sync::Arc;

/// Number of term ids stored inline (no heap indirection). Queries average 2–3
/// terms and indexed keys are bounded by `max_key_len` (2–3 in the paper), so
/// virtually every key in the system fits inline.
const INLINE_TERMS: usize = 3;

/// Construction scratch capacity kept on the stack; longer inputs fall back to a
/// heap buffer (rare: only hand-built keys exceed it, queries are deduplicated).
const SCRATCH_TERMS: usize = 8;

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        /// Only `ids[..len]` is meaningful; padding repeats the first id so the
        /// array never holds an uninitialised-looking value.
        ids: [TermId; INLINE_TERMS],
    },
    Spilled(Arc<[TermId]>),
}

/// A canonical term combination used as an index key.
///
/// Invariants: terms are sorted lexicographically, deduplicated and non-empty;
/// the cached ring hash and byte length always describe exactly those terms.
#[derive(Clone)]
pub struct TermKey {
    repr: Repr,
    /// Ring identifier of the canonical form, computed at construction.
    hash: u64,
    /// Total byte length of the terms (separators excluded).
    str_len: u32,
    /// Length of the [`crate::codec::encode_key`] wire frame (varint term
    /// count + per-term varint length prefix + bytes), computed at
    /// construction so `wire_size` stays a cached-field read.
    wire_len: u32,
}

/// Scratch buffer for canonicalising `(id, term)` pairs during construction.
struct Scratch {
    inline: [(TermId, &'static str); SCRATCH_TERMS],
    len: usize,
    spill: Vec<(TermId, &'static str)>,
}

impl Scratch {
    fn new() -> Self {
        // `TermId::EMPTY` exists from interner construction: padding a scratch
        // array never locks (crucially, not while a resolver session is open).
        Scratch {
            inline: [(TermId::EMPTY, ""); SCRATCH_TERMS],
            len: 0,
            spill: Vec::new(),
        }
    }

    fn push(&mut self, entry: (TermId, &'static str)) {
        if self.spill.is_empty() && self.len < SCRATCH_TERMS {
            self.inline[self.len] = entry;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill.extend_from_slice(&self.inline[..self.len]);
            }
            self.spill.push(entry);
        }
    }

    fn entries(&mut self) -> &mut [(TermId, &'static str)] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }
}

impl TermKey {
    /// Creates a key from the given terms (they are sorted and deduplicated).
    ///
    /// First use of a term interns it (one allocation, process-wide);
    /// constructing keys over an already-seen vocabulary is allocation-free for
    /// up to 3 distinct terms.
    ///
    /// # Panics
    /// Panics if no terms remain after deduplication.
    pub fn new<I>(terms: I) -> Self
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        Self::fill_and_build(terms.into_iter(), |t| TermId::intern_with_str(t.as_ref()))
    }

    /// Creates a single-term key.
    pub fn single(term: impl AsRef<str>) -> Self {
        let entry = TermId::intern_with_str(term.as_ref());
        Self::from_canonical_entries(&[entry])
    }

    /// Creates a key from already-interned terms (they are sorted into canonical
    /// order and deduplicated). This is the fast path used by the query pipeline,
    /// which analyzes straight to [`TermId`]s.
    ///
    /// # Panics
    /// Panics if no ids remain after deduplication.
    pub fn from_term_ids(ids: impl IntoIterator<Item = TermId>) -> Self {
        let resolver = intern::resolver();
        Self::fill_and_build(ids.into_iter(), |id| (id, resolver.resolve(id)))
    }

    /// Shared constructor body: fills the stack scratch with `(id, term)`
    /// entries (spilling to the heap past [`SCRATCH_TERMS`], which only
    /// hand-built keys reach) and canonicalises. Generic over the entry maker
    /// so both constructors monomorphise to the same fused loop.
    ///
    /// Deliberately does **not** go through [`Scratch`]: keeping the buffer in
    /// locals lets the optimiser promote it to registers, which measured ~1.8x
    /// faster than the struct-indirected push path (`exp_perf`'s
    /// `key_construct`); `Scratch` stays for the interleaved-push callers
    /// (expand/parents/subset enumeration) where that shape fits.
    fn fill_and_build<T>(
        mut iter: impl Iterator<Item = T>,
        mut to_entry: impl FnMut(T) -> (TermId, &'static str),
    ) -> TermKey {
        let mut buf = [(TermId::EMPTY, ""); SCRATCH_TERMS];
        let mut len = 0usize;
        for t in iter.by_ref() {
            if len == SCRATCH_TERMS {
                let mut spill = buf.to_vec();
                spill.push(to_entry(t));
                spill.extend(iter.map(to_entry));
                return Self::build_canonical(&mut spill);
            }
            buf[len] = to_entry(t);
            len += 1;
        }
        Self::build_canonical(&mut buf[..len])
    }

    /// Sorts `entries` into canonical term order, deduplicates in place and
    /// builds the key.
    ///
    /// # Panics
    /// Panics if no entries remain after deduplication.
    fn build_canonical(entries: &mut [(TermId, &'static str)]) -> TermKey {
        if entries.len() > 1 {
            entries.sort_unstable_by(|a, b| a.1.cmp(b.1));
        }
        let mut dedup_len = 0usize;
        for i in 0..entries.len() {
            if dedup_len == 0 || entries[dedup_len - 1].0 != entries[i].0 {
                entries[dedup_len] = entries[i];
                dedup_len += 1;
            }
        }
        assert!(dedup_len > 0, "a TermKey needs at least one term");
        TermKey::from_canonical_entries(&entries[..dedup_len])
    }

    /// Builds a key from `(id, term)` pairs already in canonical order with no
    /// duplicates, computing the cached hash and lengths in one pass.
    fn from_canonical_entries(entries: &[(TermId, &'static str)]) -> Self {
        debug_assert!(!entries.is_empty());
        debug_assert!(entries.windows(2).all(|w| w[0].1 < w[1].1));
        let mut hasher = RingHasher::new();
        let mut str_len = 0u32;
        for (i, (_, s)) in entries.iter().enumerate() {
            if i > 0 {
                hasher.write_byte(b'+');
            }
            hasher.write(s.as_bytes());
            str_len += u32::try_from(s.len()).expect("term length fits u32");
        }
        let wire_len = crate::codec::key_frame_len(entries.iter().map(|(_, s)| s.len()));
        let repr = if entries.len() <= INLINE_TERMS {
            let mut ids = [entries[0].0; INLINE_TERMS];
            for (slot, (id, _)) in ids.iter_mut().zip(entries) {
                *slot = *id;
            }
            Repr::Inline {
                len: entries.len() as u8,
                ids,
            }
        } else {
            Repr::Spilled(entries.iter().map(|(id, _)| *id).collect())
        };
        TermKey {
            repr,
            hash: hasher.finish().0,
            str_len,
            wire_len: u32::try_from(wire_len).expect("key frame length fits u32"),
        }
    }

    /// The interned term identifiers of the key, in canonical (lexicographic
    /// term) order.
    pub fn term_ids(&self) -> &[TermId] {
        match &self.repr {
            Repr::Inline { len, ids } => &ids[..usize::from(*len)],
            Repr::Spilled(ids) => ids,
        }
    }

    /// The terms of the key (sorted). Resolves through the interner; hot paths
    /// should prefer [`TermKey::term_ids`].
    pub fn terms(&self) -> Vec<&'static str> {
        let resolver = intern::resolver();
        self.term_ids()
            .iter()
            .map(|id| resolver.resolve(*id))
            .collect()
    }

    /// Number of terms in the key (its "level" in the lattice).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Spilled(ids) => ids.len(),
        }
    }

    /// Whether the key has exactly one term.
    pub fn is_single(&self) -> bool {
        self.len() == 1
    }

    /// Never true (keys are non-empty by construction); provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical string form used for hashing and display, e.g. `"databas+peer"`.
    ///
    /// This *materializes* the string; the hash of the canonical form is already
    /// cached (see [`TermKey::ring_id`]), so only display/serde paths need it.
    pub fn canonical(&self) -> String {
        let resolver = intern::resolver();
        let ids = self.term_ids();
        let mut out = String::with_capacity(self.str_len as usize + ids.len().saturating_sub(1));
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                out.push('+');
            }
            out.push_str(resolver.resolve(*id));
        }
        out
    }

    /// The DHT ring identifier of this key: a copy of the hash computed at
    /// construction. Zero hashing, zero allocation.
    pub fn ring_id(&self) -> RingId {
        RingId(self.hash)
    }

    /// Whether `self` is a (non-strict) subset of `other`.
    pub fn is_subset_of(&self, other: &TermKey) -> bool {
        // Key lengths are tiny (≤ ~6), so the quadratic id scan beats any
        // merge/binary-search bookkeeping — and it never touches a string.
        self.term_ids()
            .iter()
            .all(|id| other.term_ids().contains(id))
    }

    /// Whether `self` is a strict superset of `other` (i.e. `self` *dominates* `other`
    /// in the query lattice).
    pub fn dominates(&self, other: &TermKey) -> bool {
        self.len() > other.len() && other.is_subset_of(self)
    }

    /// Whether the key contains a term.
    pub fn contains(&self, term: &str) -> bool {
        TermId::get(term).is_some_and(|id| self.contains_id(id))
    }

    /// Whether the key contains an interned term.
    pub fn contains_id(&self, id: TermId) -> bool {
        self.term_ids().contains(&id)
    }

    /// Returns the key extended with one more term, or `None` if the term is already
    /// part of the key. This is the HDK "expansion" operation.
    pub fn expand(&self, term: &str) -> Option<TermKey> {
        let entry = TermId::intern_with_str(term);
        self.expand_entry(entry)
    }

    /// [`TermKey::expand`] for an already-interned term.
    pub fn expand_id(&self, id: TermId) -> Option<TermKey> {
        self.expand_entry((id, id.as_str()))
    }

    fn expand_entry(&self, entry: (TermId, &'static str)) -> Option<TermKey> {
        if self.contains_id(entry.0) {
            return None;
        }
        let resolver = intern::resolver();
        let mut scratch = Scratch::new();
        let mut inserted = false;
        for id in self.term_ids() {
            let s = resolver.resolve(*id);
            if !inserted && entry.1 < s {
                scratch.push(entry);
                inserted = true;
            }
            scratch.push((*id, s));
        }
        if !inserted {
            scratch.push(entry);
        }
        Some(Self::from_canonical_entries(scratch.entries()))
    }

    /// All sub-keys obtained by removing exactly one term (empty when the key is a
    /// single term).
    pub fn parents(&self) -> Vec<TermKey> {
        let ids = self.term_ids();
        if ids.len() <= 1 {
            return Vec::new();
        }
        let resolver = intern::resolver();
        let mut scratch = Scratch::new();
        for id in ids {
            scratch.push((*id, resolver.resolve(*id)));
        }
        let entries: &[(TermId, &'static str)] = scratch.entries();
        (0..entries.len())
            .map(|skip| {
                let mut sub = Scratch::new();
                for (i, e) in entries.iter().enumerate() {
                    if i != skip {
                        sub.push(*e);
                    }
                }
                Self::from_canonical_entries(sub.entries())
            })
            .collect()
    }

    /// All non-empty subsets of the key of exactly `size` terms, in canonical
    /// (lexicographic) order.
    pub fn subsets_of_size(&self, size: usize) -> Vec<TermKey> {
        let mut out = Vec::new();
        self.push_subsets_of_size(size, &intern::resolver(), &mut out);
        out
    }

    /// All non-empty subsets of the key, largest first (the order in which the query
    /// lattice is explored).
    pub fn all_subsets_desc(&self) -> Vec<TermKey> {
        let resolver = intern::resolver();
        let mut out = Vec::new();
        for size in (1..=self.len()).rev() {
            self.push_subsets_of_size(size, &resolver, &mut out);
        }
        out
    }

    /// Appends the `size`-term subsets in canonical order.
    ///
    /// The key's entries are already in canonical term order, so enumerating
    /// index combinations in lexicographic order yields the subsets exactly as
    /// the former sort-by-canonical-string produced them — without building a
    /// string or comparing one.
    fn push_subsets_of_size(
        &self,
        size: usize,
        resolver: &intern::Resolver,
        out: &mut Vec<TermKey>,
    ) {
        let ids = self.term_ids();
        let n = ids.len();
        if size == 0 || size > n {
            return;
        }
        assert!(n <= 32, "subset enumeration supports at most 32 terms");
        let mut scratch = Scratch::new();
        for id in ids {
            scratch.push((*id, resolver.resolve(*id)));
        }
        let entries: &[(TermId, &'static str)] = scratch.entries();
        // Lexicographic k-combination enumeration over entry indices.
        let mut indices = [0usize; 32];
        for (slot, i) in indices.iter_mut().zip(0..size) {
            *slot = i;
        }
        loop {
            let mut sub = Scratch::new();
            for &i in &indices[..size] {
                sub.push(entries[i]);
            }
            out.push(Self::from_canonical_entries(sub.entries()));
            // Advance to the next combination.
            let mut pos = size;
            loop {
                if pos == 0 {
                    return;
                }
                pos -= 1;
                if indices[pos] < n - size + pos {
                    break;
                }
            }
            indices[pos] += 1;
            for i in pos + 1..size {
                indices[i] = indices[i - 1] + 1;
            }
        }
    }
}

impl PartialEq for TermKey {
    fn eq(&self, other: &Self) -> bool {
        // ids determine the terms, so comparing hashes first is a cheap reject.
        self.hash == other.hash && self.term_ids() == other.term_ids()
    }
}

impl Eq for TermKey {}

impl PartialOrd for TermKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TermKey {
    /// Lexicographic by term strings, then by length — exactly the ordering the
    /// original `Vec<String>` representation derived, so sorted reports, lattice
    /// enumeration order and `BTreeSet` iteration are unchanged.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Equal ids short-circuit without touching the interner; the resolver
        // session is only opened at the first differing term.
        let mut resolver = None;
        for (a, b) in self.term_ids().iter().zip(other.term_ids()) {
            if a == b {
                continue;
            }
            let r = resolver.get_or_insert_with(intern::resolver);
            match r.resolve(*a).cmp(r.resolve(*b)) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.len().cmp(&other.len())
    }
}

impl std::hash::Hash for TermKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // The cached ring hash already identifies the term set.
        state.write_u64(self.hash);
    }
}

impl Serialize for TermKey {
    fn to_value(&self) -> Value {
        // Same shape the former `#[derive(Serialize)]` on `{ terms: Vec<String> }`
        // produced: ids are process-local, so the wire form carries the strings.
        let resolver = intern::resolver();
        Value::Obj(vec![(
            "terms".to_string(),
            Value::Arr(
                self.term_ids()
                    .iter()
                    .map(|id| Value::Str(resolver.resolve(*id).to_string()))
                    .collect(),
            ),
        )])
    }
}

impl Deserialize for TermKey {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let terms: Vec<String> = serde::field(v, "terms")?;
        if terms.is_empty() {
            return Err(DeError::new("a TermKey needs at least one term"));
        }
        Ok(TermKey::new(terms))
    }
}

impl fmt::Debug for TermKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TermKey(")?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for TermKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let resolver = intern::resolver();
        for (i, id) in self.term_ids().iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            f.write_str(resolver.resolve(*id))?;
        }
        Ok(())
    }
}

impl WireSize for TermKey {
    /// Exact length of the [`crate::codec::encode_key`] frame (varint term
    /// count, then per term a varint length prefix plus the UTF-8 bytes),
    /// cached at construction: still a field read, but now it is the length of
    /// bytes the codec really produces rather than a fixed-width model.
    fn wire_size(&self) -> usize {
        self.wire_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let k = TermKey::new(["peer", "databas", "peer"]);
        assert_eq!(k.terms(), ["databas", "peer"]);
        assert_eq!(k.len(), 2);
        assert_eq!(k.canonical(), "databas+peer");
        assert!(!k.is_single());
        assert!(TermKey::single("x").is_single());
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn empty_key_panics() {
        let _ = TermKey::new(Vec::<String>::new());
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let a = TermKey::new(["b", "a", "c"]);
        let b = TermKey::new(["c", "b", "a"]);
        assert_eq!(a, b);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.ring_id(), b.ring_id());
    }

    #[test]
    fn ring_ids_differ_between_keys() {
        assert_ne!(
            TermKey::new(["a", "b"]).ring_id(),
            TermKey::new(["a", "c"]).ring_id()
        );
        assert_ne!(
            TermKey::single("ab").ring_id(),
            TermKey::new(["a", "b"]).ring_id()
        );
    }

    #[test]
    fn cached_ring_id_matches_hashing_the_canonical_string() {
        for terms in [vec!["a"], vec!["peer", "databas"], vec!["x", "y", "z", "w"]] {
            let k = TermKey::new(terms);
            assert_eq!(k.ring_id(), RingId::hash_str(&k.canonical()));
        }
    }

    #[test]
    fn subset_and_dominance() {
        let abc = TermKey::new(["a", "b", "c"]);
        let bc = TermKey::new(["b", "c"]);
        let b = TermKey::single("b");
        let d = TermKey::single("d");
        assert!(bc.is_subset_of(&abc));
        assert!(b.is_subset_of(&bc));
        assert!(!abc.is_subset_of(&bc));
        assert!(!d.is_subset_of(&abc));
        assert!(abc.dominates(&bc));
        assert!(abc.dominates(&b));
        assert!(!abc.dominates(&abc));
        assert!(!bc.dominates(&abc));
        assert!(bc.contains("b"));
        assert!(!bc.contains("a"));
    }

    #[test]
    fn expansion_adds_one_term() {
        let k = TermKey::single("peer");
        let e = k.expand("retriev").unwrap();
        assert_eq!(e.terms(), ["peer", "retriev"]);
        assert!(k.expand("peer").is_none());
        assert!(e.dominates(&k));
        // The id-based expansion is equivalent.
        let id = TermId::intern("retriev");
        assert_eq!(k.expand_id(id).unwrap(), e);
        assert!(e.expand_id(id).is_none());
    }

    #[test]
    fn parents_remove_one_term_each() {
        let abc = TermKey::new(["a", "b", "c"]);
        let parents = abc.parents();
        assert_eq!(parents.len(), 3);
        assert!(parents.contains(&TermKey::new(["a", "b"])));
        assert!(parents.contains(&TermKey::new(["a", "c"])));
        assert!(parents.contains(&TermKey::new(["b", "c"])));
        assert!(TermKey::single("x").parents().is_empty());
    }

    #[test]
    fn subsets_enumeration_matches_figure_1() {
        // The query {a,b,c} of Figure 1: lattice = abc, ab, ac, bc, a, b, c.
        let abc = TermKey::new(["a", "b", "c"]);
        let all = abc.all_subsets_desc();
        assert_eq!(all.len(), 7);
        assert_eq!(all[0], abc);
        let pairs = abc.subsets_of_size(2);
        assert_eq!(pairs.len(), 3);
        let singles = abc.subsets_of_size(1);
        assert_eq!(singles.len(), 3);
        assert!(abc.subsets_of_size(0).is_empty());
        assert!(abc.subsets_of_size(4).is_empty());
        // Descending order by size.
        for w in all.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn keys_longer_than_the_inline_bound_behave_identically() {
        let big = TermKey::new(["e", "c", "a", "d", "b"]);
        assert_eq!(big.len(), 5);
        assert_eq!(big.canonical(), "a+b+c+d+e");
        assert_eq!(big.ring_id(), RingId::hash_str("a+b+c+d+e"));
        assert!(big.dominates(&TermKey::new(["b", "d", "e"])));
        let all = big.all_subsets_desc();
        assert_eq!(all.len(), 31);
        assert_eq!(all[0], big);
        let clone = big.clone();
        assert_eq!(clone, big);
        assert_eq!(clone.wire_size(), big.wire_size());
    }

    #[test]
    fn ordering_is_lexicographic_by_terms_then_length() {
        let a = TermKey::single("a");
        let ab = TermKey::new(["a", "b"]);
        let b = TermKey::single("b");
        assert!(a < ab, "prefix sorts first");
        assert!(ab < b, "a+b < b lexicographically");
        let mut v = vec![b.clone(), ab.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, ab, b]);
    }

    #[test]
    fn wire_size_is_the_codec_key_frame_length() {
        let k = TermKey::new(["ab", "cde"]);
        // varint(2 terms) + (varint(2) + "ab") + (varint(3) + "cde") + the
        // 4-byte checksum trailer.
        assert_eq!(
            k.wire_size(),
            1 + (1 + 2) + (1 + 3) + crate::codec::FRAME_TRAILER_LEN
        );
        let mut frame = Vec::new();
        crate::codec::encode_key(&mut frame, &k);
        assert_eq!(k.wire_size(), frame.len());
    }

    #[test]
    fn display_and_debug() {
        let k = TermKey::new(["b", "a"]);
        assert_eq!(format!("{k}"), "a+b");
        assert_eq!(format!("{k:?}"), "TermKey(a+b)");
    }

    #[test]
    fn serde_round_trips_via_term_strings() {
        for key in [
            TermKey::single("solo"),
            TermKey::new(["peer", "retriev"]),
            TermKey::new(["v", "w", "x", "y", "z"]),
        ] {
            let v = key.to_value();
            let back = TermKey::from_value(&v).unwrap();
            assert_eq!(back, key);
            assert_eq!(back.ring_id(), key.ring_id());
        }
        assert!(TermKey::from_value(&Value::Obj(vec![(
            "terms".to_string(),
            Value::Arr(Vec::new())
        )]))
        .is_err());
    }

    #[test]
    fn from_term_ids_canonicalises() {
        let ids = [
            TermId::intern("zeta"),
            TermId::intern("alpha"),
            TermId::intern("zeta"),
        ];
        let k = TermKey::from_term_ids(ids);
        assert_eq!(k, TermKey::new(["alpha", "zeta"]));
        assert_eq!(k.term_ids().len(), 2);
    }
}
