//! Indexing keys: term combinations.
//!
//! The central idea of AlvisP2P is to index not only single terms but *carefully
//! chosen term combinations* ("keys"). A [`TermKey`] is a canonicalised (sorted,
//! deduplicated) set of one or more analyzed terms. Keys are hashed onto the DHT ring
//! to find the peer responsible for their posting list, and they are organised in a
//! subset lattice: the query `{a, b, c}` dominates the keys `{a,b}`, `{a,c}`, `{b,c}`,
//! `{a}`, `{b}` and `{c}` (see Figure 1 of the paper).

use alvisp2p_dht::RingId;
use alvisp2p_netsim::WireSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A canonical term combination used as an index key.
///
/// Invariants: terms are sorted lexicographically, deduplicated and non-empty.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermKey {
    terms: Vec<String>,
}

impl TermKey {
    /// Creates a key from the given terms (they are sorted and deduplicated).
    ///
    /// # Panics
    /// Panics if no terms remain after deduplication.
    pub fn new(terms: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let mut terms: Vec<String> = terms.into_iter().map(Into::into).collect();
        terms.sort_unstable();
        terms.dedup();
        assert!(!terms.is_empty(), "a TermKey needs at least one term");
        TermKey { terms }
    }

    /// Creates a single-term key.
    pub fn single(term: impl Into<String>) -> Self {
        TermKey {
            terms: vec![term.into()],
        }
    }

    /// The terms of the key (sorted).
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Number of terms in the key (its "level" in the lattice).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the key has exactly one term.
    pub fn is_single(&self) -> bool {
        self.terms.len() == 1
    }

    /// Never true (keys are non-empty by construction); provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The canonical string form used for hashing and display, e.g. `"databas+peer"`.
    pub fn canonical(&self) -> String {
        self.terms.join("+")
    }

    /// The DHT ring identifier of this key.
    pub fn ring_id(&self) -> RingId {
        RingId::hash_str(&self.canonical())
    }

    /// Whether `self` is a (non-strict) subset of `other`.
    pub fn is_subset_of(&self, other: &TermKey) -> bool {
        self.terms
            .iter()
            .all(|t| other.terms.binary_search(t).is_ok())
    }

    /// Whether `self` is a strict superset of `other` (i.e. `self` *dominates* `other`
    /// in the query lattice).
    pub fn dominates(&self, other: &TermKey) -> bool {
        self.len() > other.len() && other.is_subset_of(self)
    }

    /// Whether the key contains a term.
    pub fn contains(&self, term: &str) -> bool {
        self.terms
            .binary_search_by(|t| t.as_str().cmp(term))
            .is_ok()
    }

    /// Returns the key extended with one more term, or `None` if the term is already
    /// part of the key. This is the HDK "expansion" operation.
    pub fn expand(&self, term: &str) -> Option<TermKey> {
        if self.contains(term) {
            return None;
        }
        let mut terms = self.terms.clone();
        terms.push(term.to_string());
        terms.sort_unstable();
        Some(TermKey { terms })
    }

    /// All sub-keys obtained by removing exactly one term (empty when the key is a
    /// single term).
    pub fn parents(&self) -> Vec<TermKey> {
        if self.terms.len() <= 1 {
            return Vec::new();
        }
        (0..self.terms.len())
            .map(|skip| {
                let terms: Vec<String> = self
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, t)| t.clone())
                    .collect();
                TermKey { terms }
            })
            .collect()
    }

    /// All non-empty subsets of the key of exactly `size` terms.
    pub fn subsets_of_size(&self, size: usize) -> Vec<TermKey> {
        if size == 0 || size > self.terms.len() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let n = self.terms.len();
        // Enumerate bit masks with `size` bits set; n is small (queries have ≤ ~6 terms).
        for mask in 1u32..(1u32 << n) {
            if mask.count_ones() as usize != size {
                continue;
            }
            let terms: Vec<String> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| self.terms[i].clone())
                .collect();
            out.push(TermKey { terms });
        }
        out.sort();
        out
    }

    /// All non-empty subsets of the key, largest first (the order in which the query
    /// lattice is explored).
    pub fn all_subsets_desc(&self) -> Vec<TermKey> {
        let mut out = Vec::new();
        for size in (1..=self.terms.len()).rev() {
            out.extend(self.subsets_of_size(size));
        }
        out
    }
}

impl fmt::Debug for TermKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TermKey({})", self.canonical())
    }
}

impl fmt::Display for TermKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl WireSize for TermKey {
    fn wire_size(&self) -> usize {
        4 + self.terms.iter().map(|t| 4 + t.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let k = TermKey::new(["peer", "databas", "peer"]);
        assert_eq!(k.terms(), &["databas".to_string(), "peer".to_string()]);
        assert_eq!(k.len(), 2);
        assert_eq!(k.canonical(), "databas+peer");
        assert!(!k.is_single());
        assert!(TermKey::single("x").is_single());
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn empty_key_panics() {
        let _ = TermKey::new(Vec::<String>::new());
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let a = TermKey::new(["b", "a", "c"]);
        let b = TermKey::new(["c", "b", "a"]);
        assert_eq!(a, b);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.ring_id(), b.ring_id());
    }

    #[test]
    fn ring_ids_differ_between_keys() {
        assert_ne!(
            TermKey::new(["a", "b"]).ring_id(),
            TermKey::new(["a", "c"]).ring_id()
        );
        assert_ne!(
            TermKey::single("ab").ring_id(),
            TermKey::new(["a", "b"]).ring_id()
        );
    }

    #[test]
    fn subset_and_dominance() {
        let abc = TermKey::new(["a", "b", "c"]);
        let bc = TermKey::new(["b", "c"]);
        let b = TermKey::single("b");
        let d = TermKey::single("d");
        assert!(bc.is_subset_of(&abc));
        assert!(b.is_subset_of(&bc));
        assert!(!abc.is_subset_of(&bc));
        assert!(!d.is_subset_of(&abc));
        assert!(abc.dominates(&bc));
        assert!(abc.dominates(&b));
        assert!(!abc.dominates(&abc));
        assert!(!bc.dominates(&abc));
        assert!(bc.contains("b"));
        assert!(!bc.contains("a"));
    }

    #[test]
    fn expansion_adds_one_term() {
        let k = TermKey::single("peer");
        let e = k.expand("retriev").unwrap();
        assert_eq!(e.terms(), &["peer".to_string(), "retriev".to_string()]);
        assert!(k.expand("peer").is_none());
        assert!(e.dominates(&k));
    }

    #[test]
    fn parents_remove_one_term_each() {
        let abc = TermKey::new(["a", "b", "c"]);
        let parents = abc.parents();
        assert_eq!(parents.len(), 3);
        assert!(parents.contains(&TermKey::new(["a", "b"])));
        assert!(parents.contains(&TermKey::new(["a", "c"])));
        assert!(parents.contains(&TermKey::new(["b", "c"])));
        assert!(TermKey::single("x").parents().is_empty());
    }

    #[test]
    fn subsets_enumeration_matches_figure_1() {
        // The query {a,b,c} of Figure 1: lattice = abc, ab, ac, bc, a, b, c.
        let abc = TermKey::new(["a", "b", "c"]);
        let all = abc.all_subsets_desc();
        assert_eq!(all.len(), 7);
        assert_eq!(all[0], abc);
        let pairs = abc.subsets_of_size(2);
        assert_eq!(pairs.len(), 3);
        let singles = abc.subsets_of_size(1);
        assert_eq!(singles.len(), 3);
        assert!(abc.subsets_of_size(0).is_empty());
        assert!(abc.subsets_of_size(4).is_empty());
        // Descending order by size.
        for w in all.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn wire_size_counts_terms() {
        let k = TermKey::new(["ab", "cde"]);
        assert_eq!(k.wire_size(), 4 + (4 + 2) + (4 + 3));
    }

    #[test]
    fn display_and_debug() {
        let k = TermKey::new(["b", "a"]);
        assert_eq!(format!("{k}"), "a+b");
        assert_eq!(format!("{k:?}"), "TermKey(a+b)");
    }
}
