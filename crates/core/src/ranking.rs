//! The distributed ranking layer (L4).
//!
//! AlvisP2P ranks with BM25, but the statistics the formula needs — global document
//! frequencies, the global number of documents, the global average document length —
//! describe the *whole* distributed collection, not any single peer's slice. Those
//! statistics are themselves stored in the P2P network: every peer publishes its local
//! collection statistics, the aggregate is available under well-known keys, and
//! publishers fetch it before scoring the posting-list entries they contribute.
//!
//! At query time the querying peer merges the retrieved (truncated) posting lists into
//! a single ranking. Because each entry's score was computed against the same global
//! statistics, merging reduces to summing the contributions of the query-term subsets
//! actually covered by each retrieved key — documents covered by an exact term cover
//! receive exactly their centralized BM25 score, which is why retrieval quality stays
//! comparable to a centralized engine (experiment E4 quantifies the residual loss due
//! to truncation).

use crate::key::TermKey;
use crate::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_netsim::WireSize;
use alvisp2p_textindex::bm25::{bm25_term_score, top_k, Bm25Params, ScoredDoc};
use alvisp2p_textindex::{CollectionStats, DocId, InvertedIndex, TermId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeSet, HashMap};

/// Globally aggregated collection statistics used by the ranking layer.
///
/// Alongside the mergeable string-keyed [`CollectionStats`] (the form peers
/// publish), an interned `TermId → df` side table is maintained so the query
/// planner's per-key document-frequency estimates never touch a string.
#[derive(Clone, Debug, Default)]
pub struct GlobalRankingStats {
    stats: CollectionStats,
    /// Interned mirror of `stats.doc_frequencies`, rebuilt as fragments merge.
    df_by_id: HashMap<TermId, u64>,
    /// Per-key maximum published contribution score (the rank-safety bound of
    /// ROADMAP item 1): each peer publishes the max score of its delta for a
    /// key, and the aggregate keeps the max over all publishers. Because every
    /// document is scored by exactly one owner, this upper-bounds every score
    /// the key's stored posting list can ever return — [`crate::request::ThresholdMode`]
    /// floors and sketch score-histogram pruning share it as one provably-safe
    /// bound.
    key_max: HashMap<TermKey, f64>,
}

impl GlobalRankingStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        GlobalRankingStats::default()
    }

    /// Aggregates the statistics published by all peers.
    pub fn aggregate<'a>(fragments: impl IntoIterator<Item = &'a CollectionStats>) -> Self {
        let mut out = GlobalRankingStats::default();
        for f in fragments {
            out.merge_fragment(f);
        }
        out
    }

    /// Merges one more peer's statistics fragment.
    pub fn merge_fragment(&mut self, fragment: &CollectionStats) {
        self.stats.merge(fragment);
        // Interning here warms the process-wide interner with the whole query
        // vocabulary before the first query arrives.
        for (term, df) in &fragment.doc_frequencies {
            *self.df_by_id.entry(TermId::intern(term)).or_insert(0) += df;
        }
    }

    /// Global number of documents.
    pub fn doc_count(&self) -> u64 {
        self.stats.doc_count
    }

    /// Global average document length.
    pub fn avg_doc_len(&self) -> f64 {
        self.stats.avg_doc_len()
    }

    /// Global document frequency of a term.
    pub fn df(&self, term: &str) -> u64 {
        self.stats.df(term)
    }

    /// Global document frequency of an interned term (allocation-free).
    pub fn df_id(&self, term: TermId) -> u64 {
        self.df_by_id.get(&term).copied().unwrap_or(0)
    }

    /// Size of the aggregated vocabulary.
    pub fn vocabulary_size(&self) -> usize {
        self.stats.vocabulary_size()
    }

    /// Records a published per-key maximum contribution score, keeping the max
    /// over all publishers. Called on the publish path for every key a peer
    /// contributes postings to.
    pub fn record_key_max(&mut self, key: &TermKey, max_score: f64) {
        let slot = self.key_max.entry(key.clone()).or_insert(f64::MIN);
        if max_score > *slot {
            *slot = max_score;
        }
    }

    /// The maximum score any stored posting of `key` can carry (the max over
    /// all published contributions), or `None` if nothing was recorded.
    pub fn key_max_score(&self, key: &TermKey) -> Option<f64> {
        self.key_max.get(key).copied()
    }

    /// Number of keys with a recorded maximum score.
    pub fn key_max_count(&self) -> usize {
        self.key_max.len()
    }

    /// Approximate wire size of one published `(key, max score)` record.
    pub fn key_max_wire_size(key: &TermKey) -> usize {
        key.wire_size() + 8
    }

    /// Approximate wire size of one peer's statistics fragment (what publishing it to
    /// the ranking layer costs). Proportional to the peer's vocabulary.
    pub fn fragment_wire_size(fragment: &CollectionStats) -> usize {
        16 + fragment
            .doc_frequencies
            .keys()
            .map(|t| t.len() + 8 + 4)
            .sum::<usize>()
    }
}

impl Serialize for GlobalRankingStats {
    fn to_value(&self) -> Value {
        // Only the mergeable string-keyed statistics cross process boundaries;
        // the id table is process-local and rebuilt on deserialization. The
        // per-key maxima travel keyed by canonical form, sorted for stability.
        let mut maxima: Vec<(String, Value)> = self
            .key_max
            .iter()
            .map(|(k, v)| (k.canonical(), Value::Float(*v)))
            .collect();
        maxima.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(vec![
            ("stats".to_string(), self.stats.to_value()),
            ("key_max".to_string(), Value::Obj(maxima)),
        ])
    }
}

impl Deserialize for GlobalRankingStats {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let stats: CollectionStats = serde::field(v, "stats")?;
        let mut out = GlobalRankingStats::default();
        out.merge_fragment(&stats);
        // Absent in frames from before the rank-safety bound existed.
        let maxima = match v {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == "key_max").map(|(_, m)| m),
            _ => None,
        };
        if let Some(Value::Obj(maxima)) = maxima {
            for (canonical, value) in maxima {
                let Value::Float(max) = value else {
                    return Err(DeError::new("key_max values must be floats"));
                };
                out.record_key_max(&TermKey::new(canonical.split('+')), *max);
            }
        }
        Ok(out)
    }
}

/// Scores the documents of a peer's local index for `key` against the global
/// statistics, producing the posting-list contribution that peer publishes for the key.
///
/// Only documents containing **all** terms of the key contribute (for a single-term
/// key this is simply the term's local posting list). Each contribution's score is the
/// sum of the BM25 term scores of the key's terms — i.e. exactly the part of the
/// centralized BM25 score attributable to those query terms.
pub fn score_local_postings(
    index: &InvertedIndex,
    key: &TermKey,
    global: &GlobalRankingStats,
    params: Bm25Params,
    capacity: usize,
) -> TruncatedPostingList {
    let matching = index.intersect_ids(key.term_ids());
    let mut list = TruncatedPostingList::new(capacity);
    for doc in matching {
        let doc_len = index.doc_len(doc).unwrap_or(0);
        let mut score = 0.0;
        for term in key.term_ids() {
            let tf = index
                .postings_id(*term)
                .and_then(|l| l.get(doc))
                .map(|p| p.tf)
                .unwrap_or(0);
            score += bm25_term_score(
                tf,
                doc_len,
                global.avg_doc_len(),
                global.df_id(*term),
                global.doc_count(),
                params,
            );
        }
        list.insert(ScoredRef { doc, score });
    }
    list
}

/// Merges the posting lists retrieved by the lattice exploration into a final ranking.
///
/// Retrieved keys are processed largest-first; for every document, each query term is
/// counted at most once: if two retrieved keys overlap (e.g. `a+b` and `a+c`), the
/// overlapping term's contribution is only added once (approximated by scaling the
/// key's aggregate score by the fraction of its terms that are still uncovered for
/// that document).
pub fn merge_retrieved(retrieved: &[(TermKey, TruncatedPostingList)], k: usize) -> Vec<ScoredDoc> {
    let mut ordered: Vec<&(TermKey, TruncatedPostingList)> = retrieved.iter().collect();
    ordered.sort_by_key(|e| std::cmp::Reverse(e.0.len()));

    let mut scores: HashMap<DocId, f64> = HashMap::new();
    let mut covered: HashMap<DocId, BTreeSet<TermId>> = HashMap::new();

    for (key, list) in ordered {
        for r in list.refs() {
            let cov = covered.entry(r.doc).or_default();
            let new_terms = key.term_ids().iter().filter(|t| !cov.contains(t)).count();
            if new_terms == 0 {
                continue;
            }
            let fraction = new_terms as f64 / key.len() as f64;
            *scores.entry(r.doc).or_insert(0.0) += r.score * fraction;
            cov.extend(key.term_ids().iter().copied());
        }
    }

    top_k(
        scores
            .into_iter()
            .map(|(doc, score)| ScoredDoc { doc, score })
            .collect(),
        k,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn global_from(indexes: &[&InvertedIndex]) -> GlobalRankingStats {
        let frags: Vec<CollectionStats> = indexes.iter().map(|i| i.collection_stats()).collect();
        GlobalRankingStats::aggregate(frags.iter())
    }

    fn local_index(peer: u32, docs: &[&str]) -> InvertedIndex {
        let mut idx = InvertedIndex::default();
        for (i, d) in docs.iter().enumerate() {
            idx.index_text(DocId::new(peer, i as u32), d);
        }
        idx
    }

    #[test]
    fn aggregation_matches_a_single_global_index() {
        let a = local_index(0, &["peer to peer retrieval", "distributed hash tables"]);
        let b = local_index(1, &["peer networks", "text retrieval quality"]);
        let global = global_from(&[&a, &b]);
        assert_eq!(global.doc_count(), 4);
        assert_eq!(global.df("peer"), 2);
        assert_eq!(global.df("retriev"), 2);
        assert_eq!(global.df("network"), 1);
        assert!(global.avg_doc_len() > 0.0);
        assert!(global.vocabulary_size() >= 8);
        // Incremental merge gives the same result as one-shot aggregation.
        let mut incremental = GlobalRankingStats::new();
        incremental.merge_fragment(&a.collection_stats());
        incremental.merge_fragment(&b.collection_stats());
        assert_eq!(incremental.doc_count(), global.doc_count());
        assert_eq!(incremental.df("peer"), global.df("peer"));
    }

    #[test]
    fn fragment_wire_size_grows_with_vocabulary() {
        let small = local_index(0, &["one short document"]).collection_stats();
        let large = local_index(
            0,
            &[
                "a much longer document with many different interesting terms appearing here",
                "another document with yet more vocabulary diversity and novel words",
            ],
        )
        .collection_stats();
        assert!(
            GlobalRankingStats::fragment_wire_size(&large)
                > GlobalRankingStats::fragment_wire_size(&small)
        );
    }

    #[test]
    fn score_local_postings_single_term_matches_bm25() {
        let idx = local_index(
            0,
            &[
                "peer retrieval peer systems",
                "web search engines",
                "peer protocols",
            ],
        );
        let global = global_from(&[&idx]);
        let key = TermKey::single("peer");
        let list = score_local_postings(&idx, &key, &global, Bm25Params::default(), 100);
        assert_eq!(list.len(), 2);
        assert!(!list.is_truncated());
        // Doc 0 has tf=2 and should outscore doc 2 (tf=1) despite being longer.
        assert_eq!(list.refs()[0].doc, DocId::new(0, 0));
        assert!(list.refs()[0].score > list.refs()[1].score);
    }

    #[test]
    fn score_local_postings_multi_term_requires_all_terms() {
        let idx = local_index(
            0,
            &[
                "peer retrieval systems",
                "peer networks without the other keyword",
                "retrieval only here",
            ],
        );
        let global = global_from(&[&idx]);
        let key = TermKey::new(["peer", "retriev"]);
        let list = score_local_postings(&idx, &key, &global, Bm25Params::default(), 100);
        assert_eq!(list.len(), 1);
        assert_eq!(list.refs()[0].doc, DocId::new(0, 0));
        // The pair score equals the sum of the two single-term scores for that doc.
        let single_p = score_local_postings(
            &idx,
            &TermKey::single("peer"),
            &global,
            Bm25Params::default(),
            100,
        );
        let single_r = score_local_postings(
            &idx,
            &TermKey::single("retriev"),
            &global,
            Bm25Params::default(),
            100,
        );
        let sp = single_p
            .refs()
            .iter()
            .find(|r| r.doc == DocId::new(0, 0))
            .unwrap()
            .score;
        let sr = single_r
            .refs()
            .iter()
            .find(|r| r.doc == DocId::new(0, 0))
            .unwrap()
            .score;
        assert!((list.refs()[0].score - (sp + sr)).abs() < 1e-9);
    }

    #[test]
    fn truncation_caps_published_contributions() {
        let docs: Vec<String> = (0..50)
            .map(|i| format!("peer document number {i}"))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let idx = local_index(0, &doc_refs);
        let global = global_from(&[&idx]);
        let list = score_local_postings(
            &idx,
            &TermKey::single("peer"),
            &global,
            Bm25Params::default(),
            10,
        );
        assert_eq!(list.len(), 10);
        assert!(list.is_truncated());
        assert_eq!(list.full_df(), 50);
    }

    #[test]
    fn merge_retrieved_reconstructs_exact_scores_for_disjoint_covers() {
        // Query {a, b, c} answered from keys {b, c} and {a}: a document present in
        // both lists must score the sum of both contributions.
        let doc = DocId::new(0, 7);
        let bc = TruncatedPostingList::from_refs([ScoredRef { doc, score: 2.0 }], 10);
        let a = TruncatedPostingList::from_refs(
            [
                ScoredRef { doc, score: 1.5 },
                ScoredRef {
                    doc: DocId::new(0, 9),
                    score: 0.5,
                },
            ],
            10,
        );
        let merged = merge_retrieved(
            &[(TermKey::new(["b", "c"]), bc), (TermKey::single("a"), a)],
            10,
        );
        assert_eq!(merged[0].doc, doc);
        assert!((merged[0].score - 3.5).abs() < 1e-9);
        assert_eq!(merged.len(), 2);
        assert!((merged[1].score - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_retrieved_does_not_double_count_overlapping_keys() {
        // Keys {a,b} and {b} overlap on term b: the single-term list must not add b's
        // contribution again for a document already covered by {a,b}.
        let doc = DocId::new(0, 1);
        let ab = TruncatedPostingList::from_refs([ScoredRef { doc, score: 4.0 }], 10);
        let b = TruncatedPostingList::from_refs([ScoredRef { doc, score: 1.0 }], 10);
        let merged = merge_retrieved(
            &[(TermKey::new(["a", "b"]), ab), (TermKey::single("b"), b)],
            10,
        );
        assert_eq!(merged.len(), 1);
        assert!((merged[0].score - 4.0).abs() < 1e-9);
    }

    #[test]
    fn merge_retrieved_orders_by_score_and_truncates() {
        let lists: Vec<(TermKey, TruncatedPostingList)> = (0..5)
            .map(|i| {
                (
                    TermKey::single(format!("t{i}")),
                    TruncatedPostingList::from_refs(
                        [ScoredRef {
                            doc: DocId::new(0, i),
                            score: f64::from(i),
                        }],
                        10,
                    ),
                )
            })
            .collect();
        let merged = merge_retrieved(&lists, 3);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].doc, DocId::new(0, 4));
        assert!(merged.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn merge_retrieved_empty_input() {
        assert!(merge_retrieved(&[], 10).is_empty());
    }

    #[test]
    fn key_max_keeps_the_max_over_publishers() {
        let mut global = GlobalRankingStats::new();
        let key = TermKey::new(["peer", "retriev"]);
        assert!(global.key_max_score(&key).is_none());
        global.record_key_max(&key, 2.5);
        global.record_key_max(&key, 1.0);
        global.record_key_max(&key, 3.75);
        assert_eq!(global.key_max_score(&key), Some(3.75));
        assert_eq!(global.key_max_count(), 1);
        assert!(GlobalRankingStats::key_max_wire_size(&key) > 8);
    }

    #[test]
    fn key_max_survives_the_serde_round_trip() {
        let idx = local_index(0, &["peer retrieval systems"]);
        let mut global = global_from(&[&idx]);
        global.record_key_max(&TermKey::single("peer"), 1.25);
        global.record_key_max(&TermKey::new(["peer", "retriev"]), 2.5);
        let back = GlobalRankingStats::from_value(&global.to_value()).unwrap();
        assert_eq!(back.doc_count(), global.doc_count());
        assert_eq!(back.key_max_score(&TermKey::single("peer")), Some(1.25));
        assert_eq!(
            back.key_max_score(&TermKey::new(["peer", "retriev"])),
            Some(2.5)
        );
        assert_eq!(back.key_max_count(), 2);
        // Frames without the field (pre-bound peers) still parse.
        let legacy = Value::Obj(vec![(
            "stats".to_string(),
            idx.collection_stats().to_value(),
        )]);
        let parsed = GlobalRankingStats::from_value(&legacy).unwrap();
        assert_eq!(parsed.key_max_count(), 0);
    }

    #[test]
    fn key_max_bounds_every_published_contribution() {
        let a = local_index(0, &["peer retrieval peer systems", "peer protocols"]);
        let b = local_index(1, &["peer networks", "text retrieval quality"]);
        let mut global = global_from(&[&a, &b]);
        let key = TermKey::single("peer");
        // Each peer publishes its delta and records the delta's max score.
        let mut all_scores = Vec::new();
        for idx in [&a, &b] {
            let delta = score_local_postings(idx, &key, &global, Bm25Params::default(), 100);
            if let Some(best) = delta.best_score() {
                global.record_key_max(&key, best);
            }
            all_scores.extend(delta.refs().iter().map(|r| r.score));
        }
        let bound = global.key_max_score(&key).unwrap();
        assert!(all_scores.iter().all(|s| *s <= bound));
        assert!(all_scores.contains(&bound), "the bound is tight");
    }
}
