//! The distributed ranking layer (L4).
//!
//! AlvisP2P ranks with BM25, but the statistics the formula needs — global document
//! frequencies, the global number of documents, the global average document length —
//! describe the *whole* distributed collection, not any single peer's slice. Those
//! statistics are themselves stored in the P2P network: every peer publishes its local
//! collection statistics, the aggregate is available under well-known keys, and
//! publishers fetch it before scoring the posting-list entries they contribute.
//!
//! At query time the querying peer merges the retrieved (truncated) posting lists into
//! a single ranking. Because each entry's score was computed against the same global
//! statistics, merging reduces to summing the contributions of the query-term subsets
//! actually covered by each retrieved key — documents covered by an exact term cover
//! receive exactly their centralized BM25 score, which is why retrieval quality stays
//! comparable to a centralized engine (experiment E4 quantifies the residual loss due
//! to truncation).

use crate::key::TermKey;
use crate::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_netsim::WireSize;
use alvisp2p_textindex::bm25::{bm25_term_score, top_k, Bm25Params, ScoredDoc};
use alvisp2p_textindex::{CollectionStats, DocId, InvertedIndex, TermId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeSet, HashMap};

/// Globally aggregated collection statistics used by the ranking layer.
///
/// Alongside the mergeable string-keyed [`CollectionStats`] (the form peers
/// publish), an interned `TermId → df` side table is maintained so the query
/// planner's per-key document-frequency estimates never touch a string.
#[derive(Clone, Debug, Default)]
pub struct GlobalRankingStats {
    stats: CollectionStats,
    /// Interned mirror of `stats.doc_frequencies`, rebuilt as fragments merge.
    df_by_id: HashMap<TermId, u64>,
    /// Per-key maximum published contribution score (the rank-safety bound of
    /// ROADMAP item 1), versioned by the key's publish version at recording
    /// time: each publication records the stored list's best score, and the
    /// aggregate keeps the newest version (taking the max among same-version
    /// records). Because every document is scored by exactly one owner, a
    /// *fresh* record — one whose version still matches the key's current
    /// publish version — upper-bounds every score the key's stored posting
    /// list can return; [`crate::request::ThresholdMode::RankSafe`] floors and
    /// sketch score-histogram pruning share it as one provably-safe bound. A
    /// stale record (lossy publications can leave the cache behind the list)
    /// bounds nothing, which is why the rank-safe path checks
    /// [`GlobalRankingStats::key_max_fresh`] and falls back rather than trust
    /// it.
    key_max: HashMap<TermKey, (f64, u64)>,
}

impl GlobalRankingStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        GlobalRankingStats::default()
    }

    /// Aggregates the statistics published by all peers.
    pub fn aggregate<'a>(fragments: impl IntoIterator<Item = &'a CollectionStats>) -> Self {
        let mut out = GlobalRankingStats::default();
        for f in fragments {
            out.merge_fragment(f);
        }
        out
    }

    /// Merges one more peer's statistics fragment.
    pub fn merge_fragment(&mut self, fragment: &CollectionStats) {
        self.stats.merge(fragment);
        // Interning here warms the process-wide interner with the whole query
        // vocabulary before the first query arrives.
        for (term, df) in &fragment.doc_frequencies {
            *self.df_by_id.entry(TermId::intern(term)).or_insert(0) += df;
        }
    }

    /// Global number of documents.
    pub fn doc_count(&self) -> u64 {
        self.stats.doc_count
    }

    /// Global average document length.
    pub fn avg_doc_len(&self) -> f64 {
        self.stats.avg_doc_len()
    }

    /// Global document frequency of a term.
    pub fn df(&self, term: &str) -> u64 {
        self.stats.df(term)
    }

    /// Global document frequency of an interned term (allocation-free).
    pub fn df_id(&self, term: TermId) -> u64 {
        self.df_by_id.get(&term).copied().unwrap_or(0)
    }

    /// Size of the aggregated vocabulary.
    pub fn vocabulary_size(&self) -> usize {
        self.stats.vocabulary_size()
    }

    /// Records a published per-key maximum contribution score together with
    /// the key's publish `version` at recording time. A newer version
    /// replaces the stored record outright (each publication reports the
    /// *stored list's* best score, which already subsumes every earlier
    /// contribution); among same-version records the max wins; an older
    /// version is ignored. Called on the publish path for every key a peer
    /// contributes postings to.
    pub fn record_key_max(&mut self, key: &TermKey, max_score: f64, version: u64) {
        use std::collections::hash_map::Entry;
        match self.key_max.entry(key.clone()) {
            Entry::Vacant(slot) => {
                slot.insert((max_score, version));
            }
            Entry::Occupied(mut slot) => {
                let (score, recorded) = *slot.get();
                if version > recorded || (version == recorded && max_score > score) {
                    slot.insert((max_score, version));
                }
            }
        }
    }

    /// The maximum score any stored posting of `key` was known to carry when
    /// the record was made, or `None` if nothing was recorded. Freshness is
    /// *not* checked here — callers needing a sound bound (rather than a
    /// planning estimate) must use [`GlobalRankingStats::key_max_fresh`].
    pub fn key_max_score(&self, key: &TermKey) -> Option<f64> {
        self.key_max.get(key).map(|(score, _)| *score)
    }

    /// The recorded maximum for `key` **iff** it is fresh: recorded at
    /// exactly the key's `current_version` publish version. A record from an
    /// older version may predate stored postings with higher scores (lossy
    /// publications drop the updates that would have refreshed it), so it is
    /// unusable as a rank-safety bound and this returns `None`.
    pub fn key_max_fresh(&self, key: &TermKey, current_version: u64) -> Option<f64> {
        match self.key_max.get(key) {
            Some((score, recorded)) if *recorded == current_version => Some(*score),
            _ => None,
        }
    }

    /// Number of keys with a recorded maximum score.
    pub fn key_max_count(&self) -> usize {
        self.key_max.len()
    }

    /// Approximate wire size of one published `(key, max score)` record.
    pub fn key_max_wire_size(key: &TermKey) -> usize {
        key.wire_size() + 8
    }

    /// Approximate wire size of one peer's statistics fragment (what publishing it to
    /// the ranking layer costs). Proportional to the peer's vocabulary.
    pub fn fragment_wire_size(fragment: &CollectionStats) -> usize {
        16 + fragment
            .doc_frequencies
            .keys()
            .map(|t| t.len() + 8 + 4)
            .sum::<usize>()
    }
}

impl Serialize for GlobalRankingStats {
    fn to_value(&self) -> Value {
        // Only the mergeable string-keyed statistics cross process boundaries;
        // the id table is process-local and rebuilt on deserialization. The
        // per-key maxima travel keyed by canonical form, sorted for stability.
        let mut maxima: Vec<(String, Value)> = self
            .key_max
            .iter()
            .map(|(k, (score, _))| (k.canonical(), Value::Float(*score)))
            .collect();
        maxima.sort_by(|a, b| a.0.cmp(&b.0));
        // Versions travel in a parallel table (same sorted canonical keys) so
        // pre-versioning frames — which carry `key_max` alone — still parse.
        let mut versions: Vec<(String, Value)> = self
            .key_max
            .iter()
            .map(|(k, (_, version))| (k.canonical(), Value::UInt(*version)))
            .collect();
        versions.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(vec![
            ("stats".to_string(), self.stats.to_value()),
            ("key_max".to_string(), Value::Obj(maxima)),
            ("key_max_versions".to_string(), Value::Obj(versions)),
        ])
    }
}

impl Deserialize for GlobalRankingStats {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let stats: CollectionStats = serde::field(v, "stats")?;
        let mut out = GlobalRankingStats::default();
        out.merge_fragment(&stats);
        // Absent in frames from before the rank-safety bound existed.
        let lookup = |field: &str| match v {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == field).map(|(_, m)| m),
            _ => None,
        };
        if let Some(Value::Obj(maxima)) = lookup("key_max") {
            // Frames from before versioning carry no `key_max_versions`
            // table; their records default to version 0, which is always
            // stale against a live index (every publication bumps past 0) —
            // the safe reading of an unversioned bound.
            let versions = match lookup("key_max_versions") {
                Some(Value::Obj(versions)) => Some(versions),
                _ => None,
            };
            for (canonical, value) in maxima {
                let Value::Float(max) = value else {
                    return Err(DeError::new("key_max values must be floats"));
                };
                let version = versions
                    .and_then(|vs| vs.iter().find(|(k, _)| k == canonical))
                    .map(|(_, v)| match v {
                        Value::UInt(n) => Ok(*n),
                        _ => Err(DeError::new("key_max_versions values must be unsigned")),
                    })
                    .transpose()?
                    .unwrap_or(0);
                out.record_key_max(&TermKey::new(canonical.split('+')), *max, version);
            }
        }
        Ok(out)
    }
}

/// Scores the documents of a peer's local index for `key` against the global
/// statistics, producing the posting-list contribution that peer publishes for the key.
///
/// Only documents containing **all** terms of the key contribute (for a single-term
/// key this is simply the term's local posting list). Each contribution's score is the
/// sum of the BM25 term scores of the key's terms — i.e. exactly the part of the
/// centralized BM25 score attributable to those query terms.
pub fn score_local_postings(
    index: &InvertedIndex,
    key: &TermKey,
    global: &GlobalRankingStats,
    params: Bm25Params,
    capacity: usize,
) -> TruncatedPostingList {
    let matching = index.intersect_ids(key.term_ids());
    let mut list = TruncatedPostingList::new(capacity);
    for doc in matching {
        let doc_len = index.doc_len(doc).unwrap_or(0);
        let mut score = 0.0;
        for term in key.term_ids() {
            let tf = index
                .postings_id(*term)
                .and_then(|l| l.get(doc))
                .map(|p| p.tf)
                .unwrap_or(0);
            score += bm25_term_score(
                tf,
                doc_len,
                global.avg_doc_len(),
                global.df_id(*term),
                global.doc_count(),
                params,
            );
        }
        list.insert(ScoredRef { doc, score });
    }
    list
}

/// Merges the posting lists retrieved by the lattice exploration into a final ranking.
///
/// Retrieved keys are processed largest-first; for every document, each query term is
/// counted at most once: if two retrieved keys overlap (e.g. `a+b` and `a+c`), the
/// overlapping term's contribution is only added once (approximated by scaling the
/// key's aggregate score by the fraction of its terms that are still uncovered for
/// that document).
pub fn merge_retrieved(retrieved: &[(TermKey, TruncatedPostingList)], k: usize) -> Vec<ScoredDoc> {
    let mut ordered: Vec<&(TermKey, TruncatedPostingList)> = retrieved.iter().collect();
    ordered.sort_by_key(|e| std::cmp::Reverse(e.0.len()));

    let mut scores: HashMap<DocId, f64> = HashMap::new();
    let mut covered: HashMap<DocId, BTreeSet<TermId>> = HashMap::new();

    for (key, list) in ordered {
        for r in list.refs() {
            let cov = covered.entry(r.doc).or_default();
            let new_terms = key.term_ids().iter().filter(|t| !cov.contains(t)).count();
            if new_terms == 0 {
                continue;
            }
            let fraction = new_terms as f64 / key.len() as f64;
            *scores.entry(r.doc).or_insert(0.0) += r.score * fraction;
            cov.extend(key.term_ids().iter().copied());
        }
    }

    top_k(
        scores
            .into_iter()
            .map(|(doc, score)| ScoredDoc { doc, score })
            .collect(),
        k,
    )
}

/// Whether a set of probeable keys forms a *laminar* family: every pair is
/// either disjoint or nested. This is the structural condition under which
/// the coverage-weighted merge is exactly additive over each document's
/// maximal covering keys — subsets of an already-counted key are skipped
/// whole (`new_terms == 0`) rather than fraction-diluted, so per-document
/// merged scores can only grow as more lists arrive. Non-laminar covers
/// (two overlapping keys, neither containing the other, e.g. `a+b` and
/// `b+c`) re-spread an overlapped term's weight and can *shrink* a merged
/// score mid-stream, which is why the rank-safe executor refuses to derive
/// floors from them.
pub fn keys_are_laminar(keys: &[TermKey]) -> bool {
    keys.iter().enumerate().all(|(i, a)| {
        keys[..i].iter().all(|b| {
            let shared = a
                .term_ids()
                .iter()
                .filter(|&t| b.term_ids().contains(t))
                .count();
            shared == 0 || shared == a.len().min(b.len())
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn global_from(indexes: &[&InvertedIndex]) -> GlobalRankingStats {
        let frags: Vec<CollectionStats> = indexes.iter().map(|i| i.collection_stats()).collect();
        GlobalRankingStats::aggregate(frags.iter())
    }

    fn local_index(peer: u32, docs: &[&str]) -> InvertedIndex {
        let mut idx = InvertedIndex::default();
        for (i, d) in docs.iter().enumerate() {
            idx.index_text(DocId::new(peer, i as u32), d);
        }
        idx
    }

    #[test]
    fn aggregation_matches_a_single_global_index() {
        let a = local_index(0, &["peer to peer retrieval", "distributed hash tables"]);
        let b = local_index(1, &["peer networks", "text retrieval quality"]);
        let global = global_from(&[&a, &b]);
        assert_eq!(global.doc_count(), 4);
        assert_eq!(global.df("peer"), 2);
        assert_eq!(global.df("retriev"), 2);
        assert_eq!(global.df("network"), 1);
        assert!(global.avg_doc_len() > 0.0);
        assert!(global.vocabulary_size() >= 8);
        // Incremental merge gives the same result as one-shot aggregation.
        let mut incremental = GlobalRankingStats::new();
        incremental.merge_fragment(&a.collection_stats());
        incremental.merge_fragment(&b.collection_stats());
        assert_eq!(incremental.doc_count(), global.doc_count());
        assert_eq!(incremental.df("peer"), global.df("peer"));
    }

    #[test]
    fn fragment_wire_size_grows_with_vocabulary() {
        let small = local_index(0, &["one short document"]).collection_stats();
        let large = local_index(
            0,
            &[
                "a much longer document with many different interesting terms appearing here",
                "another document with yet more vocabulary diversity and novel words",
            ],
        )
        .collection_stats();
        assert!(
            GlobalRankingStats::fragment_wire_size(&large)
                > GlobalRankingStats::fragment_wire_size(&small)
        );
    }

    #[test]
    fn score_local_postings_single_term_matches_bm25() {
        let idx = local_index(
            0,
            &[
                "peer retrieval peer systems",
                "web search engines",
                "peer protocols",
            ],
        );
        let global = global_from(&[&idx]);
        let key = TermKey::single("peer");
        let list = score_local_postings(&idx, &key, &global, Bm25Params::default(), 100);
        assert_eq!(list.len(), 2);
        assert!(!list.is_truncated());
        // Doc 0 has tf=2 and should outscore doc 2 (tf=1) despite being longer.
        assert_eq!(list.refs()[0].doc, DocId::new(0, 0));
        assert!(list.refs()[0].score > list.refs()[1].score);
    }

    #[test]
    fn score_local_postings_multi_term_requires_all_terms() {
        let idx = local_index(
            0,
            &[
                "peer retrieval systems",
                "peer networks without the other keyword",
                "retrieval only here",
            ],
        );
        let global = global_from(&[&idx]);
        let key = TermKey::new(["peer", "retriev"]);
        let list = score_local_postings(&idx, &key, &global, Bm25Params::default(), 100);
        assert_eq!(list.len(), 1);
        assert_eq!(list.refs()[0].doc, DocId::new(0, 0));
        // The pair score equals the sum of the two single-term scores for that doc.
        let single_p = score_local_postings(
            &idx,
            &TermKey::single("peer"),
            &global,
            Bm25Params::default(),
            100,
        );
        let single_r = score_local_postings(
            &idx,
            &TermKey::single("retriev"),
            &global,
            Bm25Params::default(),
            100,
        );
        let sp = single_p
            .refs()
            .iter()
            .find(|r| r.doc == DocId::new(0, 0))
            .unwrap()
            .score;
        let sr = single_r
            .refs()
            .iter()
            .find(|r| r.doc == DocId::new(0, 0))
            .unwrap()
            .score;
        assert!((list.refs()[0].score - (sp + sr)).abs() < 1e-9);
    }

    #[test]
    fn truncation_caps_published_contributions() {
        let docs: Vec<String> = (0..50)
            .map(|i| format!("peer document number {i}"))
            .collect();
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let idx = local_index(0, &doc_refs);
        let global = global_from(&[&idx]);
        let list = score_local_postings(
            &idx,
            &TermKey::single("peer"),
            &global,
            Bm25Params::default(),
            10,
        );
        assert_eq!(list.len(), 10);
        assert!(list.is_truncated());
        assert_eq!(list.full_df(), 50);
    }

    #[test]
    fn merge_retrieved_reconstructs_exact_scores_for_disjoint_covers() {
        // Query {a, b, c} answered from keys {b, c} and {a}: a document present in
        // both lists must score the sum of both contributions.
        let doc = DocId::new(0, 7);
        let bc = TruncatedPostingList::from_refs([ScoredRef { doc, score: 2.0 }], 10);
        let a = TruncatedPostingList::from_refs(
            [
                ScoredRef { doc, score: 1.5 },
                ScoredRef {
                    doc: DocId::new(0, 9),
                    score: 0.5,
                },
            ],
            10,
        );
        let merged = merge_retrieved(
            &[(TermKey::new(["b", "c"]), bc), (TermKey::single("a"), a)],
            10,
        );
        assert_eq!(merged[0].doc, doc);
        assert!((merged[0].score - 3.5).abs() < 1e-9);
        assert_eq!(merged.len(), 2);
        assert!((merged[1].score - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_retrieved_does_not_double_count_overlapping_keys() {
        // Keys {a,b} and {b} overlap on term b: the single-term list must not add b's
        // contribution again for a document already covered by {a,b}.
        let doc = DocId::new(0, 1);
        let ab = TruncatedPostingList::from_refs([ScoredRef { doc, score: 4.0 }], 10);
        let b = TruncatedPostingList::from_refs([ScoredRef { doc, score: 1.0 }], 10);
        let merged = merge_retrieved(
            &[(TermKey::new(["a", "b"]), ab), (TermKey::single("b"), b)],
            10,
        );
        assert_eq!(merged.len(), 1);
        assert!((merged[0].score - 4.0).abs() < 1e-9);
    }

    #[test]
    fn merge_retrieved_orders_by_score_and_truncates() {
        let lists: Vec<(TermKey, TruncatedPostingList)> = (0..5)
            .map(|i| {
                (
                    TermKey::single(format!("t{i}")),
                    TruncatedPostingList::from_refs(
                        [ScoredRef {
                            doc: DocId::new(0, i),
                            score: f64::from(i),
                        }],
                        10,
                    ),
                )
            })
            .collect();
        let merged = merge_retrieved(&lists, 3);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].doc, DocId::new(0, 4));
        assert!(merged.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn merge_retrieved_empty_input() {
        assert!(merge_retrieved(&[], 10).is_empty());
    }

    #[test]
    fn key_max_keeps_the_max_over_same_version_publishers() {
        let mut global = GlobalRankingStats::new();
        let key = TermKey::new(["peer", "retriev"]);
        assert!(global.key_max_score(&key).is_none());
        global.record_key_max(&key, 2.5, 1);
        global.record_key_max(&key, 1.0, 1);
        global.record_key_max(&key, 3.75, 1);
        assert_eq!(global.key_max_score(&key), Some(3.75));
        assert_eq!(global.key_max_count(), 1);
        assert!(GlobalRankingStats::key_max_wire_size(&key) > 8);
    }

    #[test]
    fn key_max_newer_version_replaces_older_records_outright() {
        let mut global = GlobalRankingStats::new();
        let key = TermKey::single("peer");
        global.record_key_max(&key, 9.0, 1);
        // A later publication reports the stored list's best, which may be
        // lower (the old top entries were truncated away): it must replace,
        // not max with, the stale record.
        global.record_key_max(&key, 4.0, 2);
        assert_eq!(global.key_max_score(&key), Some(4.0));
        // An out-of-order older record never clobbers a newer one.
        global.record_key_max(&key, 100.0, 1);
        assert_eq!(global.key_max_score(&key), Some(4.0));
    }

    #[test]
    fn key_max_fresh_requires_an_exact_version_match() {
        let mut global = GlobalRankingStats::new();
        let key = TermKey::single("peer");
        assert_eq!(global.key_max_fresh(&key, 0), None, "nothing recorded");
        global.record_key_max(&key, 2.0, 3);
        assert_eq!(global.key_max_fresh(&key, 3), Some(2.0));
        assert_eq!(
            global.key_max_fresh(&key, 4),
            None,
            "a record behind the list's publish version bounds nothing"
        );
        assert_eq!(
            global.key_max_score(&key),
            Some(2.0),
            "planning estimate survives"
        );
    }

    #[test]
    fn key_max_survives_the_serde_round_trip() {
        let idx = local_index(0, &["peer retrieval systems"]);
        let mut global = global_from(&[&idx]);
        global.record_key_max(&TermKey::single("peer"), 1.25, 7);
        global.record_key_max(&TermKey::new(["peer", "retriev"]), 2.5, 2);
        let back = GlobalRankingStats::from_value(&global.to_value()).unwrap();
        assert_eq!(back.doc_count(), global.doc_count());
        assert_eq!(back.key_max_score(&TermKey::single("peer")), Some(1.25));
        assert_eq!(
            back.key_max_score(&TermKey::new(["peer", "retriev"])),
            Some(2.5)
        );
        // Versions ride along: the round-tripped records stay fresh at the
        // versions they were recorded at, and at no other.
        assert_eq!(back.key_max_fresh(&TermKey::single("peer"), 7), Some(1.25));
        assert_eq!(back.key_max_fresh(&TermKey::single("peer"), 8), None);
        assert_eq!(back.key_max_count(), 2);
        // Frames without the field (pre-bound peers) still parse.
        let legacy = Value::Obj(vec![(
            "stats".to_string(),
            idx.collection_stats().to_value(),
        )]);
        let parsed = GlobalRankingStats::from_value(&legacy).unwrap();
        assert_eq!(parsed.key_max_count(), 0);
        // Frames with maxima but no version table (pre-versioning peers)
        // parse with version 0 — always stale against a live index.
        let unversioned = Value::Obj(vec![
            ("stats".to_string(), idx.collection_stats().to_value()),
            (
                "key_max".to_string(),
                Value::Obj(vec![("peer".to_string(), Value::Float(1.5))]),
            ),
        ]);
        let parsed = GlobalRankingStats::from_value(&unversioned).unwrap();
        assert_eq!(parsed.key_max_score(&TermKey::single("peer")), Some(1.5));
        assert_eq!(parsed.key_max_fresh(&TermKey::single("peer"), 0), Some(1.5));
        assert_eq!(parsed.key_max_fresh(&TermKey::single("peer"), 1), None);
    }

    #[test]
    fn key_max_bounds_every_published_contribution() {
        let a = local_index(0, &["peer retrieval peer systems", "peer protocols"]);
        let b = local_index(1, &["peer networks", "text retrieval quality"]);
        let mut global = global_from(&[&a, &b]);
        let key = TermKey::single("peer");
        // Each peer publishes its delta and records the delta's max score.
        let mut all_scores = Vec::new();
        for idx in [&a, &b] {
            let delta = score_local_postings(idx, &key, &global, Bm25Params::default(), 100);
            if let Some(best) = delta.best_score() {
                global.record_key_max(&key, best, 1);
            }
            all_scores.extend(delta.refs().iter().map(|r| r.score));
        }
        let bound = global.key_max_score(&key).unwrap();
        assert!(all_scores.iter().all(|s| *s <= bound));
        assert!(all_scores.contains(&bound), "the bound is tight");
    }

    #[test]
    fn laminar_families_are_recognised() {
        let a = TermKey::single("a");
        let b = TermKey::single("b");
        let c = TermKey::single("c");
        let ab = TermKey::new(["a", "b"]);
        let bc = TermKey::new(["b", "c"]);
        // Disjoint singletons, nesting, and mixtures are laminar.
        assert!(keys_are_laminar(&[]));
        assert!(keys_are_laminar(std::slice::from_ref(&a)));
        assert!(keys_are_laminar(&[a.clone(), b.clone(), c.clone()]));
        assert!(keys_are_laminar(&[ab.clone(), a.clone(), b]));
        assert!(keys_are_laminar(&[ab.clone(), c]));
        // Overlapping without nesting is not.
        assert!(!keys_are_laminar(&[ab.clone(), bc.clone()]));
        assert!(!keys_are_laminar(&[ab, a, bc]));
    }

    /// The property the rank-safe executor's running-θ lower bound stands on:
    /// over a *laminar* key family the coverage-weighted merge is additive
    /// over each document's maximal covering keys, so every document's merged
    /// score — and the running k-th — only grows as lists arrive. The same
    /// prefix walk over a non-laminar family shows the contrast: a merged
    /// score can shrink mid-stream, which is why the executor refuses floors
    /// there.
    #[test]
    fn laminar_merges_are_additive_and_monotone_under_list_arrival() {
        let d1 = DocId::new(0, 1);
        let d2 = DocId::new(0, 2);
        let list = |pairs: &[(DocId, f64)]| {
            TruncatedPostingList::from_refs(
                pairs.iter().map(|&(doc, score)| ScoredRef { doc, score }),
                10,
            )
        };
        // Laminar: {a,b} ⊃ {a}, plus disjoint {c}. d1 appears in every list
        // but its subset-key entry must not dilute the superset's.
        let retrieved = vec![
            (TermKey::new(["a", "b"]), list(&[(d1, 3.0), (d2, 2.0)])),
            (TermKey::single("a"), list(&[(d1, 2.5)])),
            (TermKey::single("c"), list(&[(d1, 1.0), (d2, 4.0)])),
        ];
        let score_of =
            |merged: &[ScoredDoc], doc: DocId| merged.iter().find(|r| r.doc == doc).unwrap().score;
        let full = merge_retrieved(&retrieved, 10);
        // Additivity over maximal covering keys: {a,b} at fraction 1 plus the
        // disjoint {c} at fraction 1; the nested {a} entry is skipped whole.
        assert!((score_of(&full, d1) - 4.0).abs() < 1e-12);
        assert!((score_of(&full, d2) - 6.0).abs() < 1e-12);
        // Monotonicity: per-document merged scores never shrink as lists
        // arrive, so every prefix's k-th merged score lower-bounds the final
        // k-th.
        for upto in 1..retrieved.len() {
            let prefix = merge_retrieved(&retrieved[..upto], 10);
            for r in &prefix {
                assert!(
                    score_of(&full, r.doc) + 1e-12 >= r.score,
                    "a merged score shrank as lists arrived"
                );
            }
            for k in 1..=prefix.len() {
                assert!(
                    prefix[k - 1].score <= full[k - 1].score + 1e-12,
                    "the running k-th merged score exceeded the final k-th"
                );
            }
        }
        // Non-laminar contrast ({a,b} and {b,c} overlap without nesting):
        // d1's merged score *shrinks* when the second list arrives late in
        // the length-sorted order re-spreads the shared term.
        let ab = (TermKey::new(["a", "b"]), list(&[(d1, 1.0)]));
        let bc = (TermKey::new(["b", "c"]), list(&[(d1, 10.0)]));
        let alone = merge_retrieved(std::slice::from_ref(&bc), 10);
        let both = merge_retrieved(&[ab, bc], 10);
        assert!((score_of(&alone, d1) - 10.0).abs() < 1e-12);
        assert!(
            score_of(&both, d1) < 10.0,
            "the non-laminar merge diluted d1 ({})",
            score_of(&both, d1)
        );
    }
}
