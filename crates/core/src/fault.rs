//! Deterministic fault injection for the probe path, and the policy that
//! survives it.
//!
//! The paper's setting is a P2P overlay where message loss and abrupt peer
//! failure are the normal case. This module makes those events a first-class
//! *input* to query execution:
//!
//! * [`FaultPlane`] — a seeded, deterministic source of per-operation fault
//!   decisions: message loss, slow replies past the deadline, crashed or
//!   stalled peers, response bit-flip corruption (caught by the codec's
//!   checksum trailer), lost posting publications, and lost replica-sync /
//!   stats-publication messages. The default, [`FaultPlane::NoFaults`], keeps
//!   every byte of the query path identical to a fault-free network — pinned
//!   by the `fault_equivalence` suite.
//! * [`RetryPolicy`] — how the executor responds: bounded retries with
//!   exponential backoff and deterministic jitter in simulated time, a
//!   per-probe deadline, and failover to a live replica holder of the key
//!   (see [`alvisp2p_dht::replica`]).
//! * [`ProbeOutcome`] / [`FailureCause`] — the fallible-by-design probe
//!   result and the per-key cause recorded when a probe is exhausted.
//! * [`Completeness`] — the degraded-answer report on
//!   [`crate::request::QueryResponse`]: what fraction of the planned document
//!   frequency the answer actually covers, and why the rest is missing.
//!
//! Fault decisions are **stateless**: each one hashes `(plane seed, key ring
//! identifier, query sequence number, attempt index)` into a fresh
//! [`SimRng`] and takes a single draw. No RNG state is carried between
//! probes, so decisions are order-independent, replayable, and — crucially —
//! an inactive plane consumes zero randomness.

use crate::global_index::ProbeResult;
use alvisp2p_dht::RingId;
use alvisp2p_netsim::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Why a probe attempt (or an exhausted probe) failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureCause {
    /// The request or its response was dropped in flight.
    Lost,
    /// The response arrived after the per-probe deadline (the bytes still
    /// crossed the wire and are charged).
    TimedOut,
    /// The peer that would have served the probe is crashed or stalled (or
    /// overlay routing could not reach a responsible peer at all).
    PeerDown,
    /// The response arrived but failed frame-integrity verification (its
    /// checksum trailer disagreed with its bytes); the full round trip was
    /// charged and the payload discarded.
    Corrupt,
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Lost => write!(f, "lost"),
            FailureCause::TimedOut => write!(f, "timed-out"),
            FailureCause::PeerDown => write!(f, "peer-down"),
            FailureCause::Corrupt => write!(f, "corrupt"),
        }
    }
}

/// The result of one fault-aware probe attempt (see
/// [`crate::global_index::GlobalIndex::probe_attempt`]).
///
/// Every variant reports the overlay hops the attempt spent — failed attempts
/// consumed real routing traffic and are charged against hop budgets.
#[derive(Clone, Debug)]
pub enum ProbeOutcome {
    /// The attempt succeeded.
    Ok(ProbeResult),
    /// The message (or its response) was dropped in flight: routing and
    /// request bytes were spent, no response arrived, the serving peer never
    /// observed the request.
    Lost {
        /// Overlay hops the attempt spent.
        hops: usize,
    },
    /// The response arrived past the deadline: the full round trip was
    /// charged and the serving peer observed the request, but the payload is
    /// useless to the querier.
    TimedOut {
        /// Overlay hops the attempt spent.
        hops: usize,
    },
    /// The peer that would have served the probe is crashed or stalled;
    /// routing and request bytes were spent before the failure was apparent.
    PeerDown {
        /// The unresponsive peer.
        peer: usize,
        /// Overlay hops the attempt spent.
        hops: usize,
    },
    /// The response arrived but its frame failed checksum verification (a
    /// bit-flip in flight): the full round trip was charged, the payload is
    /// unusable, and the attempt is retryable like a lost message.
    Corrupt {
        /// Overlay hops the attempt spent.
        hops: usize,
    },
}

/// A window of query sequence numbers during which a peer is unresponsive
/// (a transient stall, as opposed to a [`FaultConfig::crashed`] peer).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallWindow {
    /// The stalled peer.
    pub peer: usize,
    /// First query sequence number of the stall (inclusive).
    pub from_seq: u64,
    /// Last query sequence number of the stall (inclusive).
    pub until_seq: u64,
}

/// The knobs of a seeded fault plane.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the stateless per-decision hash.
    pub seed: u64,
    /// Probability that a probe attempt's message (or response) is dropped.
    pub loss_rate: f64,
    /// Probability that a served response arrives past the per-probe
    /// deadline.
    pub slow_rate: f64,
    /// Probability that a served response frame suffers a bit-flip in flight
    /// (caught by the codec's checksum trailer and surfaced as the retryable
    /// [`ProbeOutcome::Corrupt`]).
    #[serde(default)]
    pub corrupt_rate: f64,
    /// Probability that a posting-publication message is dropped in flight:
    /// the traffic is charged but the responsible peer never applies the
    /// update, leaving the publication un-acked (see
    /// [`crate::global_index::GlobalIndex::republish_round`]).
    #[serde(default)]
    pub publish_loss_rate: f64,
    /// Probability that one replica-sync (or stats/sketch-publication)
    /// message is dropped in flight, leaving that holder's copy stale until
    /// anti-entropy repair pulls a fresh one.
    #[serde(default)]
    pub sync_loss_rate: f64,
    /// Peers that have crashed abruptly: still present in the overlay's
    /// routing state (no graceful departure ran), but unresponsive.
    pub crashed: BTreeSet<usize>,
    /// Transient per-peer stall windows, keyed by query sequence number.
    pub stalls: Vec<StallWindow>,
}

impl FaultConfig {
    /// A config with the given seed and no faults configured.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            loss_rate: 0.0,
            slow_rate: 0.0,
            corrupt_rate: 0.0,
            publish_loss_rate: 0.0,
            sync_loss_rate: 0.0,
            crashed: BTreeSet::new(),
            stalls: Vec::new(),
        }
    }
}

/// Deterministic fault injection for [`crate::global_index::GlobalIndex`]
/// probes. The default, [`FaultPlane::NoFaults`], is structurally inert: the
/// executor never takes the fault-aware probe path, so the query path is
/// byte-identical to a network built before this plane existed.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum FaultPlane {
    /// No faults are ever injected (the default).
    #[default]
    NoFaults,
    /// Faults are injected per the embedded [`FaultConfig`].
    Seeded(FaultConfig),
}

/// Salt of the message-loss draw (distinct per decision type so one decision
/// never influences another).
const SALT_LOSS: u64 = 0x6c6f_7373; // "loss"
/// Salt of the slow-reply draw.
const SALT_SLOW: u64 = 0x736c_6f77; // "slow"
/// Salt of the backoff-jitter draw.
const SALT_JITTER: u64 = 0x6a69_7474; // "jitt"
/// Salt of the response-corruption draw.
const SALT_CORRUPT: u64 = 0x636f_7272; // "corr"
/// Salt of the corrupted-bit-position draw.
const SALT_CORRUPT_BIT: u64 = 0x666c_6970; // "flip"
/// Salt of the publish-loss draw.
const SALT_PUBLISH: u64 = 0x7075_626c; // "publ"
/// Salt of the replica-sync / stats-publication loss draw.
const SALT_SYNC: u64 = 0x7379_6e63; // "sync"

/// Mixes the decision coordinates into one seed (splitmix64-style finalizer
/// over the xor-folded inputs).
fn mix(seed: u64, salt: u64, ring: RingId, seq: u64, attempt: u32) -> u64 {
    let mut z = seed
        ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ ring.0.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ seq.wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ u64::from(attempt).wrapping_mul(0xd6e8_feb8_6659_fd93);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One uniform draw in `[0, 1)` for the decision at these coordinates.
fn draw(seed: u64, salt: u64, ring: RingId, seq: u64, attempt: u32) -> f64 {
    SimRng::new(mix(seed, salt, ring, seq, attempt)).gen_f64()
}

impl FaultPlane {
    /// A seeded plane with no faults configured yet (use the `with_*` and
    /// [`FaultPlane::crash`] / [`FaultPlane::stall`] knobs to add some).
    pub fn seeded(seed: u64) -> Self {
        FaultPlane::Seeded(FaultConfig::new(seed))
    }

    /// Sets the per-attempt message loss probability.
    pub fn with_loss(mut self, rate: f64) -> Self {
        self.config_mut().loss_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the probability that a served response misses the deadline.
    pub fn with_slow(mut self, rate: f64) -> Self {
        self.config_mut().slow_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the probability that a served response frame suffers a bit-flip
    /// in flight (detected by the codec checksum trailer).
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.config_mut().corrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the probability that a posting-publication message is dropped in
    /// flight (the publication stays un-acked and is re-sent by
    /// [`crate::global_index::GlobalIndex::republish_round`]).
    pub fn with_publish_loss(mut self, rate: f64) -> Self {
        self.config_mut().publish_loss_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the probability that one replica-sync (or stats/sketch
    /// publication) message is dropped in flight.
    pub fn with_sync_loss(mut self, rate: f64) -> Self {
        self.config_mut().sync_loss_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Crashes a peer abruptly: it stays in the overlay's routing state (no
    /// graceful departure runs) but stops answering probes. Upgrades a
    /// [`FaultPlane::NoFaults`] plane to a seeded one with zero rates.
    pub fn crash(&mut self, peer: usize) {
        self.config_mut().crashed.insert(peer);
    }

    /// Restores a crashed peer.
    pub fn restore(&mut self, peer: usize) {
        if let FaultPlane::Seeded(cfg) = self {
            cfg.crashed.remove(&peer);
        }
    }

    /// Stalls a peer for the query sequence window `[from_seq, until_seq]`.
    pub fn stall(&mut self, peer: usize, from_seq: u64, until_seq: u64) {
        self.config_mut().stalls.push(StallWindow {
            peer,
            from_seq,
            until_seq,
        });
    }

    /// The crashed-peer set (empty under [`FaultPlane::NoFaults`]).
    pub fn crashed(&self) -> Option<&BTreeSet<usize>> {
        match self {
            FaultPlane::NoFaults => None,
            FaultPlane::Seeded(cfg) => Some(&cfg.crashed),
        }
    }

    fn config_mut(&mut self) -> &mut FaultConfig {
        if let FaultPlane::NoFaults = self {
            *self = FaultPlane::seeded(0);
        }
        match self {
            FaultPlane::Seeded(cfg) => cfg,
            FaultPlane::NoFaults => unreachable!("just upgraded"),
        }
    }

    /// Whether the plane can inject anything at all. The executor only takes
    /// the fault-aware probe path when this is `true`, so an inactive plane
    /// is *structurally* byte-identical to the pre-fault-plane code.
    pub fn is_active(&self) -> bool {
        match self {
            FaultPlane::NoFaults => false,
            FaultPlane::Seeded(cfg) => {
                cfg.loss_rate > 0.0
                    || cfg.slow_rate > 0.0
                    || cfg.corrupt_rate > 0.0
                    || cfg.publish_loss_rate > 0.0
                    || cfg.sync_loss_rate > 0.0
                    || !cfg.crashed.is_empty()
                    || !cfg.stalls.is_empty()
            }
        }
    }

    /// The seed of the plane's stateless decision hash (`None` under
    /// [`FaultPlane::NoFaults`]). Used to wire the replica-sync loss draws
    /// into the dht layer with the same determinism guarantees.
    pub fn seed(&self) -> Option<u64> {
        match self {
            FaultPlane::NoFaults => None,
            FaultPlane::Seeded(cfg) => Some(cfg.seed),
        }
    }

    /// The replica-sync loss probability (`0.0` under
    /// [`FaultPlane::NoFaults`]).
    pub fn sync_loss_rate(&self) -> f64 {
        match self {
            FaultPlane::NoFaults => 0.0,
            FaultPlane::Seeded(cfg) => cfg.sync_loss_rate,
        }
    }

    /// Whether `peer` is unresponsive (crashed, or stalled at `seq`).
    pub fn peer_down(&self, peer: usize, seq: u64) -> bool {
        match self {
            FaultPlane::NoFaults => false,
            FaultPlane::Seeded(cfg) => {
                cfg.crashed.contains(&peer)
                    || cfg
                        .stalls
                        .iter()
                        .any(|s| s.peer == peer && s.from_seq <= seq && seq <= s.until_seq)
            }
        }
    }

    /// Whether the attempt's message is lost in flight.
    pub fn message_lost(&self, ring: RingId, seq: u64, attempt: u32) -> bool {
        match self {
            FaultPlane::NoFaults => false,
            FaultPlane::Seeded(cfg) => {
                cfg.loss_rate > 0.0 && draw(cfg.seed, SALT_LOSS, ring, seq, attempt) < cfg.loss_rate
            }
        }
    }

    /// Whether the attempt's served response misses the deadline.
    pub fn reply_timed_out(&self, ring: RingId, seq: u64, attempt: u32) -> bool {
        match self {
            FaultPlane::NoFaults => false,
            FaultPlane::Seeded(cfg) => {
                cfg.slow_rate > 0.0 && draw(cfg.seed, SALT_SLOW, ring, seq, attempt) < cfg.slow_rate
            }
        }
    }

    /// Whether the attempt's served response suffers a bit-flip in flight; if
    /// so, returns the (deterministically drawn) bit index to flip in the
    /// `frame_len`-byte response frame. `None` when the fault does not fire
    /// (or the frame is empty, or under [`FaultPlane::NoFaults`]).
    pub fn response_corrupt_bit(
        &self,
        ring: RingId,
        seq: u64,
        attempt: u32,
        frame_len: usize,
    ) -> Option<usize> {
        match self {
            FaultPlane::NoFaults => None,
            FaultPlane::Seeded(cfg) => {
                if frame_len == 0
                    || cfg.corrupt_rate == 0.0
                    || draw(cfg.seed, SALT_CORRUPT, ring, seq, attempt) >= cfg.corrupt_rate
                {
                    return None;
                }
                let bits = frame_len * 8;
                Some((mix(cfg.seed, SALT_CORRUPT_BIT, ring, seq, attempt) % bits as u64) as usize)
            }
        }
    }

    /// Whether a posting-publication message is dropped in flight.
    /// `seq` is the publisher's publish sequence number; `attempt` counts
    /// re-publications of the same pending publication.
    pub fn publish_lost(&self, ring: RingId, seq: u64, attempt: u32) -> bool {
        match self {
            FaultPlane::NoFaults => false,
            FaultPlane::Seeded(cfg) => {
                cfg.publish_loss_rate > 0.0
                    && draw(cfg.seed, SALT_PUBLISH, ring, seq, attempt) < cfg.publish_loss_rate
            }
        }
    }

    /// Whether one replica-sync or stats/sketch-publication message is
    /// dropped in flight. `seq` identifies the sync operation and `attempt`
    /// the recipient within it.
    pub fn sync_lost(&self, ring: RingId, seq: u64, attempt: u32) -> bool {
        match self {
            FaultPlane::NoFaults => false,
            FaultPlane::Seeded(cfg) => {
                cfg.sync_loss_rate > 0.0
                    && draw(cfg.seed, SALT_SYNC, ring, seq, attempt) < cfg.sync_loss_rate
            }
        }
    }

    /// Deterministic backoff jitter in `[0, span]` microseconds for the given
    /// retry coordinates (`0` under [`FaultPlane::NoFaults`]).
    pub fn jitter_us(&self, ring: RingId, seq: u64, attempt: u32, span: u64) -> u64 {
        match self {
            FaultPlane::NoFaults => 0,
            FaultPlane::Seeded(cfg) => {
                if span == 0 {
                    0
                } else {
                    (draw(cfg.seed, SALT_JITTER, ring, seq, attempt) * span as f64) as u64
                }
            }
        }
    }
}

/// How the executor responds to probe-attempt failures: bounded retries with
/// exponential backoff (deterministic jitter, simulated time), a per-probe
/// deadline, and failover to a live replica holder of the key.
///
/// The default policy retries twice with failover enabled — and is
/// byte-identical to no policy at all when the [`FaultPlane`] is inactive,
/// because retries only happen after a failed attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum number of re-sends after the first attempt (`0` = no retries).
    pub max_retries: usize,
    /// Backoff before retry `i` (0-based) is `base_backoff_us << i` plus
    /// jitter, in simulated microseconds.
    pub base_backoff_us: u64,
    /// Upper bound of the deterministic jitter added to each backoff.
    pub jitter_us: u64,
    /// Per-probe deadline in simulated microseconds: once the accumulated
    /// backoff exceeds it, the probe is abandoned (`0` = no deadline).
    pub deadline_us: u64,
    /// Whether retries may re-route the serve to another live holder in the
    /// key's replica set (see [`alvisp2p_dht::replica`]).
    pub failover: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_us: 500,
            jitter_us: 250,
            deadline_us: 50_000,
            failover: true,
        }
    }
}

impl RetryPolicy {
    /// The give-up-immediately policy: no retries, no failover.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_us: 0,
            jitter_us: 0,
            deadline_us: 0,
            failover: false,
        }
    }

    /// Retries without failover (re-send to the same serve selection).
    pub fn retry_only(max_retries: usize) -> Self {
        RetryPolicy {
            max_retries,
            failover: false,
            ..RetryPolicy::default()
        }
    }

    /// The base (jitter-free) backoff before 0-based retry `attempt`.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        self.base_backoff_us
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
    }
}

/// The degraded-answer report of a [`crate::request::QueryResponse`]: how
/// much of the *planned* document frequency the answer actually covers, and
/// which keys failed with what cause.
///
/// Coverage is measured against the plan's own per-key DF estimates
/// ([`crate::plan::PlanNode::est_entries`]): `planned_df` sums the estimates
/// of every scheduled probe, `covered_df` subtracts the estimates of the
/// probes that failed exhaustively. Budget truncation and lattice pruning do
/// **not** reduce completeness — they are deliberate scheduling decisions
/// reported elsewhere (`budget_exhausted`, the trace) — so a fault-free query
/// always reports a fraction of `1.0`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Completeness {
    /// Estimated document frequency the plan scheduled probes for.
    pub planned_df: u64,
    /// Estimated document frequency actually covered (planned minus failed).
    pub covered_df: u64,
    /// `(canonical key, cause)` of every exhausted probe, in schedule order.
    pub failures: Vec<(String, FailureCause)>,
}

impl Completeness {
    /// Fraction of the planned DF the answer covers (`1.0` when nothing was
    /// planned — an empty query is complete, not degraded).
    pub fn fraction(&self) -> f64 {
        if self.planned_df == 0 {
            1.0
        } else {
            self.covered_df as f64 / self.planned_df as f64
        }
    }

    /// Whether the answer is degraded (some planned DF was not covered).
    pub fn is_degraded(&self) -> bool {
        self.covered_df < self.planned_df
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(v: u64) -> RingId {
        RingId(v)
    }

    #[test]
    fn no_faults_is_inert() {
        let plane = FaultPlane::default();
        assert!(!plane.is_active());
        assert!(!plane.peer_down(0, 1));
        assert!(!plane.message_lost(ring(42), 1, 0));
        assert!(!plane.reply_timed_out(ring(42), 1, 0));
        assert!(plane.response_corrupt_bit(ring(42), 1, 0, 64).is_none());
        assert!(!plane.publish_lost(ring(42), 1, 0));
        assert!(!plane.sync_lost(ring(42), 1, 0));
        assert_eq!(plane.seed(), None);
        assert_eq!(plane.sync_loss_rate(), 0.0);
        assert_eq!(plane.jitter_us(ring(42), 1, 0, 1000), 0);
    }

    #[test]
    fn control_plane_rates_activate_the_plane() {
        assert!(FaultPlane::seeded(1).with_corruption(0.1).is_active());
        assert!(FaultPlane::seeded(1).with_publish_loss(0.1).is_active());
        assert!(FaultPlane::seeded(1).with_sync_loss(0.1).is_active());
        assert!(!FaultPlane::seeded(1).is_active());
    }

    #[test]
    fn corruption_draw_is_deterministic_and_in_range() {
        let plane = FaultPlane::seeded(13).with_corruption(0.5);
        let mut fired = 0usize;
        for seq in 0..512u64 {
            let bit = plane.response_corrupt_bit(ring(4), seq, 0, 100);
            assert_eq!(plane.response_corrupt_bit(ring(4), seq, 0, 100), bit);
            if let Some(b) = bit {
                assert!(b < 800, "bit index within the 100-byte frame");
                fired += 1;
            }
        }
        assert!((150..360).contains(&fired), "~50% of 512, got {fired}");
        // Empty frames are never corrupted even when the draw fires.
        assert!(plane.response_corrupt_bit(ring(4), 0, 0, 0).is_none());
    }

    #[test]
    fn publish_and_sync_loss_are_independent_salted_draws() {
        let plane = FaultPlane::seeded(21)
            .with_publish_loss(0.5)
            .with_sync_loss(0.5);
        let disagree = (0..512u64)
            .filter(|s| plane.publish_lost(ring(9), *s, 0) != plane.sync_lost(ring(9), *s, 0))
            .count();
        assert!(disagree > 100, "salted draws should frequently disagree");
        let lost = (0..10_000u64)
            .filter(|s| plane.publish_lost(ring(5), *s, 0))
            .count();
        assert!((4600..5400).contains(&lost), "~50% of 10k, got {lost}");
    }

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let plane = FaultPlane::seeded(7).with_loss(0.5).with_slow(0.5);
        let a = plane.message_lost(ring(1), 3, 0);
        let b = plane.message_lost(ring(2), 3, 0);
        // Re-asking in any order gives the same answers: no hidden state.
        assert_eq!(plane.message_lost(ring(2), 3, 0), b);
        assert_eq!(plane.message_lost(ring(1), 3, 0), a);
        // Distinct coordinates are distinct decisions.
        let distinct = (0..64u32)
            .map(|attempt| plane.message_lost(ring(9), 5, attempt))
            .collect::<Vec<_>>();
        assert!(distinct.iter().any(|l| *l) && distinct.iter().any(|l| !*l));
        // Loss and slow draws at the same coordinates are independent salts.
        let seq_hits = (0..512u64)
            .filter(|s| plane.message_lost(ring(9), *s, 0) != plane.reply_timed_out(ring(9), *s, 0))
            .count();
        assert!(seq_hits > 100, "salted draws should frequently disagree");
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let plane = FaultPlane::seeded(11).with_loss(0.1);
        let lost = (0..10_000u64)
            .filter(|s| plane.message_lost(ring(5), *s, 0))
            .count();
        assert!((800..1200).contains(&lost), "~10% of 10k, got {lost}");
    }

    #[test]
    fn crash_stall_and_restore_track_peers() {
        let mut plane = FaultPlane::default();
        plane.crash(3);
        assert!(plane.is_active());
        assert!(plane.peer_down(3, 1) && !plane.peer_down(4, 1));
        plane.restore(3);
        assert!(!plane.peer_down(3, 1));
        plane.stall(5, 10, 20);
        assert!(!plane.peer_down(5, 9));
        assert!(plane.peer_down(5, 10) && plane.peer_down(5, 20));
        assert!(!plane.peer_down(5, 21));
    }

    #[test]
    fn retry_policy_backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_us(0), 500);
        assert_eq!(p.backoff_us(1), 1000);
        assert_eq!(p.backoff_us(2), 2000);
        assert_eq!(RetryPolicy::none().max_retries, 0);
        assert!(!RetryPolicy::none().failover);
        assert!(!RetryPolicy::retry_only(2).failover);
        assert_eq!(RetryPolicy::retry_only(2).max_retries, 2);
    }

    #[test]
    fn completeness_fraction_handles_empty_and_degraded() {
        let c = Completeness::default();
        assert_eq!(c.fraction(), 1.0);
        assert!(!c.is_degraded());
        let c = Completeness {
            planned_df: 100,
            covered_df: 75,
            failures: vec![("a+b".into(), FailureCause::Lost)],
        };
        assert_eq!(c.fraction(), 0.75);
        assert!(c.is_degraded());
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let plane = FaultPlane::seeded(3).with_loss(0.01);
        for attempt in 0..8 {
            let j = plane.jitter_us(ring(77), 9, attempt, 250);
            assert!(j <= 250);
            assert_eq!(plane.jitter_us(ring(77), 9, attempt, 250), j);
        }
    }
}
