//! The global distributed index.
//!
//! The global index maps [`TermKey`]s to [`TruncatedPostingList`]s and is physically
//! scattered over all peers: the peer responsible (in DHT terms) for a key's ring
//! identifier stores its posting list, merges the contributions published by the
//! document-owning peers, and — for Query-Driven Indexing — maintains the usage
//! statistics of the key (how often it was requested) that drive on-demand indexing
//! and eviction.
//!
//! [`GlobalIndex`] wraps the [`Dht`] with typed, traffic-accounted operations; every
//! byte that would cross the network in the deployed system is charged to the
//! appropriate [`TrafficCategory`].

use crate::key::TermKey;
use crate::posting::TruncatedPostingList;
use alvisp2p_dht::{Dht, DhtConfig, DhtError, RingId};
use alvisp2p_netsim::{TrafficCategory, TrafficStats, WireSize};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Usage statistics of a key, maintained by its responsible peer.
///
/// These statistics implement the "decentralized monitoring of query statistics" of
/// the Query-Driven approach: every probe for the key — whether or not the key is
/// indexed — is observed by exactly the peer that would store it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyUsageStats {
    /// Number of times the key was requested by some querying peer.
    pub probes: u64,
    /// Number of requests answered from an activated (indexed) posting list.
    pub hits: u64,
    /// Global query sequence number of the most recent probe (used for eviction).
    pub last_probe: u64,
}

/// The entry stored in the DHT for one key.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KeyIndexEntry {
    /// The key itself (kept alongside the hashed identifier for introspection).
    pub key: TermKey,
    /// The (truncated) posting list, meaningful only when `activated` is true.
    pub postings: TruncatedPostingList,
    /// Whether the key is actually indexed. Query-Driven Indexing creates entries with
    /// `activated == false` purely to accumulate usage statistics.
    pub activated: bool,
    /// Usage statistics maintained by the responsible peer.
    pub usage: KeyUsageStats,
}

impl KeyIndexEntry {
    /// Creates a statistics-only (not yet activated) entry.
    pub fn stats_only(key: TermKey, capacity: usize) -> Self {
        KeyIndexEntry {
            key,
            postings: TruncatedPostingList::new(capacity),
            activated: false,
            usage: KeyUsageStats::default(),
        }
    }

    /// Creates an activated entry with the given posting list.
    pub fn activated(key: TermKey, postings: TruncatedPostingList) -> Self {
        KeyIndexEntry {
            key,
            postings,
            activated: true,
            usage: KeyUsageStats::default(),
        }
    }
}

impl WireSize for KeyIndexEntry {
    fn wire_size(&self) -> usize {
        self.key.wire_size() + self.postings.wire_size() + 1 + 24
    }

    /// FNV-1a over the entry's *replicated content*: the key identity, the
    /// activation flag, and every posting reference. Usage statistics are
    /// deliberately excluded — they advance at the primary on every probe
    /// without bumping the publish version, so including them would make
    /// perfectly healthy replica copies look corrupt to anti-entropy repair.
    fn content_digest(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut put = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        };
        put(self.key.ring_id().0);
        put(u64::from(self.activated));
        put(self.postings.full_df());
        for r in self.postings.refs() {
            put(r.doc.as_u64());
            put(r.score.to_bits());
        }
        h
    }
}

/// The result of probing the global index for a key.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeResult {
    /// The key that was probed.
    pub key: TermKey,
    /// The posting list, if the key is indexed.
    pub postings: Option<TruncatedPostingList>,
    /// Overlay hops the probe took.
    pub hops: usize,
    /// Index of the peer responsible for the key (the primary copy).
    pub responsible: usize,
    /// Index of the peer that actually served the response — the primary, or
    /// the least-loaded live replica when the key is hot-replicated.
    pub served_by: usize,
    /// The peers currently holding replica copies of the key (empty unless a
    /// [`alvisp2p_dht::replica::ReplicationPolicy`] has replicated it).
    pub replica_set: Vec<usize>,
    /// The probe was never sent: the caller pruned it (e.g. a strategy without
    /// multi-term keys, or an exhausted byte/hop budget). Recorded as
    /// [`crate::lattice::NodeOutcome::Skipped`] and excluded from probe counts.
    pub skipped: bool,
    /// Whole codec blocks the probe's score floor elided from the response
    /// frame (see [`crate::codec::ElisionStats`]). `0` for unfloored probes.
    pub skipped_blocks: usize,
    /// Response-frame bytes the probe's score floor saved versus shipping the
    /// full stored list. `0` for unfloored probes.
    pub elided_bytes: usize,
}

impl ProbeResult {
    /// A probe the caller declined to send for `key`.
    pub fn skipped(key: TermKey) -> Self {
        ProbeResult {
            key,
            postings: None,
            hops: 0,
            responsible: 0,
            served_by: 0,
            replica_set: Vec::new(),
            skipped: true,
            skipped_blocks: 0,
            elided_bytes: 0,
        }
    }

    /// Whether the key was found in the global index.
    pub fn found(&self) -> bool {
        self.postings.is_some()
    }
}

/// One un-acked publication: its publish message was dropped in flight, the
/// delta never applied at the responsible peer, and the publisher retries it
/// on a bounded-backoff schedule (see [`GlobalIndex::republish_round`]).
#[derive(Clone, Debug)]
struct PendingPublish {
    from: usize,
    key: TermKey,
    delta: TruncatedPostingList,
    capacity: usize,
    /// The publish sequence number the original publication carried (the
    /// coordinates of its deterministic loss draws).
    seq: u64,
    /// Re-publication attempts so far (the original send is attempt `0`).
    attempts: u32,
    /// First [`GlobalIndex::republish_round`] round allowed to retry this
    /// entry (exponential backoff, capped).
    due_round: u64,
}

/// Cap of the exponential re-publication backoff, in rounds.
const MAX_REPUBLISH_BACKOFF_ROUNDS: u64 = 8;

/// A typed, traffic-accounted view of the distributed index.
pub struct GlobalIndex {
    dht: Dht<KeyIndexEntry>,
    /// Size in bytes of a probe request (key + originator address).
    probe_request_bytes: usize,
    /// Monotonic per-key publish versions, bumped on every mutation of a
    /// key's stored entry (publish, on-demand store, deactivation, eviction).
    /// Cached evidence about an entry — a [`crate::sketch::KeySketch`] — is
    /// only valid while its recorded version matches the current one.
    versions: HashMap<RingId, u64>,
    /// Publications whose application at the responsible peer has not been
    /// acknowledged, awaiting re-publication. Always empty under
    /// [`crate::fault::FaultPlane::NoFaults`].
    pending: Vec<PendingPublish>,
    /// Monotonic sequence number carried by every publication (versioned,
    /// acknowledged publications — the coordinates of loss draws).
    publish_seq: u64,
    /// Logical round counter of the bounded-backoff re-publication schedule.
    republish_rounds: u64,
}

impl GlobalIndex {
    /// Creates a global index over a freshly built overlay of `n_peers` peers.
    pub fn new(dht_config: DhtConfig, seed: u64, n_peers: usize) -> Self {
        GlobalIndex {
            dht: Dht::with_peers(dht_config, seed, n_peers),
            probe_request_bytes: 48,
            versions: HashMap::new(),
            pending: Vec::new(),
            publish_seq: 0,
            republish_rounds: 0,
        }
    }

    /// Wraps an existing overlay.
    pub fn from_dht(dht: Dht<KeyIndexEntry>) -> Self {
        GlobalIndex {
            dht,
            probe_request_bytes: 48,
            versions: HashMap::new(),
            pending: Vec::new(),
            publish_seq: 0,
            republish_rounds: 0,
        }
    }

    /// The underlying overlay (read-only).
    pub fn dht(&self) -> &Dht<KeyIndexEntry> {
        &self.dht
    }

    /// The underlying overlay (mutable; used by churn experiments).
    pub fn dht_mut(&mut self) -> &mut Dht<KeyIndexEntry> {
        &mut self.dht
    }

    /// Number of live peers in the overlay.
    pub fn peer_count(&self) -> usize {
        self.dht.live_peers()
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &TrafficStats {
        self.dht.stats()
    }

    /// Snapshot of the traffic statistics (for per-phase differencing).
    pub fn stats_snapshot(&self) -> TrafficStats {
        self.dht.stats_snapshot()
    }

    /// Resets the traffic statistics.
    pub fn reset_stats(&mut self) {
        self.dht.reset_stats();
    }

    // ------------------------------------------------------------------
    // Publication (indexing phase)
    // ------------------------------------------------------------------

    /// Publishes a delta posting list for `key` from peer `from`. The responsible peer
    /// merges the delta into its stored entry (activating it). The delta's bytes plus
    /// the routing messages are charged to [`TrafficCategory::Indexing`].
    ///
    /// The charge is the exact [`crate::codec`] frame length of the delta, but —
    /// unlike [`GlobalIndex::probe`], which round-trips through the codec so
    /// queriers observe quantized scores — the merge keeps the publisher's
    /// `f64` scores. This is a deliberate modelling simplification: stored
    /// lists are merged from many deltas over time, and re-quantizing at every
    /// publish would compound one grid-step of error per hop without changing
    /// any byte count; the retrieval path (the paper's cost metric) is where
    /// the quantization is made observable.
    pub fn publish_postings(
        &mut self,
        from: usize,
        key: &TermKey,
        delta: &TruncatedPostingList,
        capacity: usize,
    ) -> Result<usize, DhtError> {
        let ring_key = key.ring_id();
        let request_bytes = key.wire_size() + delta.wire_size();
        // The closure borrows `key` and `delta`: no copy of the key or of the
        // delta posting list is made to cross the (simulated) wire.
        let info = self.dht.update(
            from,
            ring_key,
            request_bytes,
            TrafficCategory::Indexing,
            |slot| {
                let entry =
                    slot.get_or_insert_with(|| KeyIndexEntry::stats_only(key.clone(), capacity));
                entry.postings.merge(delta);
                entry.activated = true;
            },
        )?;
        // Keep any replica copies identical to the primary (no-op unless the
        // key is hot-replicated).
        self.dht.sync_replicas(ring_key, TrafficCategory::Indexing);
        *self.versions.entry(ring_key).or_insert(0) += 1;
        Ok(info.hops)
    }

    /// Like [`GlobalIndex::publish_postings`], but the publication crosses a
    /// faulty wire: with the plane's `publish_loss_rate` probability the
    /// message is dropped in flight. A lost publish still charges its routing
    /// and request bytes (the publisher cannot know in advance), the
    /// responsible peer never applies the delta, the publish version does not
    /// advance, and the publication is queued un-acked for
    /// [`GlobalIndex::republish_round`]. Every publication — lost or not —
    /// consumes one monotonic publish sequence number, the coordinates of its
    /// deterministic loss draws.
    ///
    /// Under [`crate::fault::FaultPlane::NoFaults`] (or a zero
    /// `publish_loss_rate`) this is exactly `publish_postings`.
    pub fn publish_postings_faulty(
        &mut self,
        from: usize,
        key: &TermKey,
        delta: &TruncatedPostingList,
        capacity: usize,
        plane: &crate::fault::FaultPlane,
    ) -> Result<usize, DhtError> {
        let seq = self.publish_seq;
        self.publish_seq += 1;
        let ring_key = key.ring_id();
        if plane.publish_lost(ring_key, seq, 0) {
            let info = self.dht.route(from, ring_key, TrafficCategory::Indexing)?;
            self.dht.charge_external(
                TrafficCategory::Indexing,
                key.wire_size() + delta.wire_size(),
            );
            self.pending.push(PendingPublish {
                from,
                key: key.clone(),
                delta: delta.clone(),
                capacity,
                seq,
                attempts: 0,
                due_round: self.republish_rounds + 1,
            });
            return Ok(info.hops);
        }
        self.publish_postings(from, key, delta, capacity)
    }

    /// Number of publications still awaiting acknowledgement (`0` unless
    /// publish loss is being injected).
    pub fn pending_publishes(&self) -> usize {
        self.pending.len()
    }

    /// One round of the bounded-backoff re-publication schedule: every due
    /// un-acked publication is re-sent; a re-send that survives the loss draw
    /// is applied at the responsible peer (merging the delta, syncing
    /// replicas, bumping the publish version) and acknowledged, one that is
    /// lost again backs off exponentially (capped at
    /// 2⁸ rounds). All re-publication traffic is charged to
    /// [`TrafficCategory::Overlay`] — control-plane repair, never Retrieval
    /// or first-publication Indexing.
    ///
    /// Returns `(resent, applied)`. A no-op (both zero) when nothing is
    /// pending — in particular always under
    /// [`crate::fault::FaultPlane::NoFaults`].
    pub fn republish_round(&mut self, plane: &crate::fault::FaultPlane) -> (usize, usize) {
        self.republish_rounds += 1;
        let round = self.republish_rounds;
        let mut resent = 0usize;
        let mut applied = 0usize;
        let mut still_pending = Vec::new();
        for mut p in std::mem::take(&mut self.pending) {
            if p.due_round > round {
                still_pending.push(p);
                continue;
            }
            p.attempts += 1;
            resent += 1;
            let ring_key = p.key.ring_id();
            let backoff = (1u64 << p.attempts.min(8)).min(MAX_REPUBLISH_BACKOFF_ROUNDS);
            if plane.publish_lost(ring_key, p.seq, p.attempts) {
                // Lost again: the failed re-send still crossed part of the
                // wire, so its routing and request bytes are charged.
                if self
                    .dht
                    .route(p.from, ring_key, TrafficCategory::Overlay)
                    .is_ok()
                {
                    self.dht.charge_external(
                        TrafficCategory::Overlay,
                        p.key.wire_size() + p.delta.wire_size(),
                    );
                }
                p.due_round = round + backoff;
                still_pending.push(p);
                continue;
            }
            let request_bytes = p.key.wire_size() + p.delta.wire_size();
            let key = p.key.clone();
            let capacity = p.capacity;
            let delta = &p.delta;
            let result = self.dht.update(
                p.from,
                ring_key,
                request_bytes,
                TrafficCategory::Overlay,
                |slot| {
                    let entry = slot
                        .get_or_insert_with(|| KeyIndexEntry::stats_only(key.clone(), capacity));
                    entry.postings.merge(delta);
                    entry.activated = true;
                },
            );
            match result {
                Ok(_) => {
                    self.dht.sync_replicas(ring_key, TrafficCategory::Overlay);
                    *self.versions.entry(ring_key).or_insert(0) += 1;
                    applied += 1;
                }
                Err(_) => {
                    // Routing failed (overlay churn): keep the publication
                    // pending and try again after the backoff.
                    p.due_round = round + backoff;
                    still_pending.push(p);
                }
            }
        }
        self.pending = still_pending;
        (resent, applied)
    }

    /// Stores a complete, already-merged posting list for `key` (used by the
    /// Query-Driven on-demand indexing step once the responsible peer has acquired the
    /// list). Charged to [`TrafficCategory::Indexing`].
    pub fn store_acquired(
        &mut self,
        responsible: usize,
        key: &TermKey,
        postings: TruncatedPostingList,
    ) {
        // The acquired list is stored locally at the responsible peer; only the
        // acquisition itself (modelled by the caller) crosses the network.
        let ring_key = key.ring_id();
        let entry = KeyIndexEntry {
            key: key.clone(),
            usage: self
                .dht
                .peer(responsible)
                .store
                .get(&ring_key)
                .map(|e| e.usage)
                .unwrap_or_default(),
            postings,
            activated: true,
        };
        self.dht.peer_mut(responsible).store.insert(ring_key, entry);
        self.dht.sync_replicas(ring_key, TrafficCategory::Indexing);
        *self.versions.entry(ring_key).or_insert(0) += 1;
    }

    // ------------------------------------------------------------------
    // Probing (retrieval phase)
    // ------------------------------------------------------------------

    /// Probes the global index for `key` on behalf of peer `from`.
    ///
    /// The probe is routed over the overlay (hops charged to
    /// [`TrafficCategory::Retrieval`]); the responsible peer updates the key's usage
    /// statistics (creating a statistics-only entry if the key is unknown, exactly as
    /// QDI prescribes) and returns the posting list if the key is activated. The
    /// response **round-trips through the wire codec** ([`crate::codec`]): the
    /// responsible peer encodes its stored list, the encoded length is charged
    /// to [`TrafficCategory::Retrieval`], and the querier decodes it back —
    /// so the returned scores carry the codec's `u16` quantization and the
    /// simulator charges exactly what the codec produced.
    ///
    /// With a `score_floor` (the threshold-aware probe path: the executor
    /// feeds the running k-th merged score back, see
    /// [`crate::exec::QueryStream`]), the responsible peer encodes only the
    /// prefix of entries scoring at least the floor. The elided tail is
    /// subtracted from the decoded list's `full_df`, which preserves the
    /// original truncation status — lattice domination pruning behaves
    /// identically with and without thresholding.
    pub fn probe(
        &mut self,
        from: usize,
        key: &TermKey,
        query_seq: u64,
        stats_capacity: usize,
        score_floor: Option<f64>,
    ) -> Result<ProbeResult, DhtError> {
        self.probe_with(from, key, query_seq, stats_capacity, score_floor, None)
    }

    /// Like [`GlobalIndex::probe`] with an optional load-shedding instruction:
    /// with `shed_prefix = Some(p)` the serving peer degrades the answer to
    /// the top-`p` prefix of the stored list (by raising the effective score
    /// floor to the `p`-th entry's score) instead of queueing the full
    /// response — the overload escape hatch the `ReplicaAware` planner engages
    /// when every live holder of the key is saturated. Prefix elision, like
    /// floor elision, does not mark the list truncated, so domination pruning
    /// is unchanged.
    ///
    /// Replication changes *placement only*: the probe is routed to the key
    /// exactly as before (same hops — primary and replicas sit in the same
    /// ring neighbourhood), the usage statistics and the response bytes always
    /// come from the primary's canonical copy (replicas are kept
    /// byte-identical by [`alvisp2p_dht::Dht::sync_replicas`]), and only the
    /// *serve* — who spends the request-handling capacity — moves to the
    /// least-loaded live holder. Replication management traffic is charged to
    /// [`TrafficCategory::Overlay`], never to Retrieval.
    pub fn probe_with(
        &mut self,
        from: usize,
        key: &TermKey,
        query_seq: u64,
        stats_capacity: usize,
        score_floor: Option<f64>,
        shed_prefix: Option<usize>,
    ) -> Result<ProbeResult, DhtError> {
        let ring_key = key.ring_id();
        let info = self.dht.route(from, ring_key, TrafficCategory::Retrieval)?;
        let primary = info.responsible;
        self.dht.charge_external(
            TrafficCategory::Retrieval,
            self.probe_request_bytes + key.wire_size(),
        );
        // Usage statistics and response encoding happen at the primary's
        // canonical copy, whoever ends up serving.
        let mut encoded: Option<Vec<u8>> = None;
        let mut elision = crate::codec::ElisionStats::default();
        {
            let encoded_ref = &mut encoded;
            let elision_ref = &mut elision;
            self.dht
                .peer_mut(primary)
                .store
                .upsert_with(ring_key, |slot| {
                    let entry = slot.get_or_insert_with(|| {
                        KeyIndexEntry::stats_only(key.clone(), stats_capacity)
                    });
                    entry.usage.probes += 1;
                    entry.usage.last_probe = query_seq;
                    if entry.activated {
                        entry.usage.hits += 1;
                        let floor = shed_floor(&entry.postings, score_floor, shed_prefix);
                        *elision_ref = crate::codec::elision_stats(&entry.postings, floor);
                        *encoded_ref = Some(crate::codec::encode_list(&entry.postings, floor));
                    }
                });
        }
        let replica_set = self.dht.replica_holders(ring_key);
        let served_by = if replica_set.is_empty() {
            primary
        } else {
            self.dht.least_loaded_holder(ring_key).unwrap_or(primary)
        };
        self.dht.peer_mut(served_by).served_requests += 1;
        self.dht.record_probe(ring_key, served_by);
        // Response: the encoded posting list travels directly back to the
        // requester (or a one-byte miss notice).
        let response_bytes = encoded.as_ref().map(Vec::len).unwrap_or(1);
        self.charge(TrafficCategory::Retrieval, response_bytes);
        let postings = encoded.map(|bytes| {
            crate::codec::decode_list(&bytes).expect("probe response frames are well-formed")
        });
        Ok(ProbeResult {
            key: key.clone(),
            postings,
            hops: info.hops,
            responsible: primary,
            served_by,
            replica_set,
            skipped: false,
            skipped_blocks: elision.skipped_blocks,
            elided_bytes: elision.elided_bytes,
        })
    }

    /// One attempt of a fault-aware probe: like [`GlobalIndex::probe_with`],
    /// but consults a [`crate::fault::FaultPlane`] before the serve and may
    /// fail with a non-fatal [`crate::fault::ProbeOutcome`] instead of an
    /// answer. This path is only taken when the plane is active (or a
    /// failover `serve_override` is in play) — the executor keeps calling
    /// [`GlobalIndex::probe_with`] under
    /// [`crate::fault::FaultPlane::NoFaults`], so the default query path is
    /// *structurally* byte-identical to a fault-free network.
    ///
    /// Per-attempt accounting mirrors what would really cross the wire:
    ///
    /// * routing + request bytes are charged on **every** attempt (the
    ///   querier cannot know in advance that the serve will fail);
    /// * [`crate::fault::ProbeOutcome::Lost`] /
    ///   [`crate::fault::ProbeOutcome::PeerDown`] charge **no** response
    ///   bytes and leave the serving side untouched — the request never
    ///   reached a live peer (or vanished with its response);
    /// * [`crate::fault::ProbeOutcome::TimedOut`] charges the full round
    ///   trip and advances
    ///   the serving side's statistics — the response crossed the wire but
    ///   arrived past the deadline;
    /// * [`crate::fault::ProbeOutcome::Corrupt`] charges the full round trip
    ///   and advances the serving side's statistics — the response crossed
    ///   the wire with a flipped bit, the codec's checksum trailer rejected
    ///   the frame at the querier, and the payload is discarded.
    ///
    /// `serve_override` re-routes the serve to an explicit peer (the
    /// executor's failover target, a live holder in the key's replica set).
    /// An override that is not the primary serves from its synchronized
    /// replica copy (see [`alvisp2p_dht::Dht::sync_replicas`]); when the
    /// primary itself is down, its canonical usage statistics cannot advance
    /// — exactly as in a real deployment.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_attempt(
        &mut self,
        from: usize,
        key: &TermKey,
        query_seq: u64,
        stats_capacity: usize,
        score_floor: Option<f64>,
        shed_prefix: Option<usize>,
        plane: &crate::fault::FaultPlane,
        attempt: u32,
        serve_override: Option<usize>,
    ) -> Result<crate::fault::ProbeOutcome, DhtError> {
        use crate::fault::ProbeOutcome;
        let ring_key = key.ring_id();
        let info = self.dht.route(from, ring_key, TrafficCategory::Retrieval)?;
        let primary = info.responsible;
        self.dht.charge_external(
            TrafficCategory::Retrieval,
            self.probe_request_bytes + key.wire_size(),
        );
        let replica_set = self.dht.replica_holders(ring_key);
        let served_by = match serve_override {
            Some(s) => s,
            None if replica_set.is_empty() => primary,
            None => self.dht.least_loaded_holder(ring_key).unwrap_or(primary),
        };
        if plane.peer_down(served_by, query_seq) {
            return Ok(ProbeOutcome::PeerDown {
                peer: served_by,
                hops: info.hops,
            });
        }
        if plane.message_lost(ring_key, query_seq, attempt) {
            return Ok(ProbeOutcome::Lost { hops: info.hops });
        }
        let mut encoded: Option<Vec<u8>> = None;
        let mut elision = crate::codec::ElisionStats::default();
        if served_by == primary || !plane.peer_down(primary, query_seq) {
            // The primary is reachable: canonical statistics and response
            // encoding happen there, exactly as in `probe_with`.
            let encoded_ref = &mut encoded;
            let elision_ref = &mut elision;
            self.dht
                .peer_mut(primary)
                .store
                .upsert_with(ring_key, |slot| {
                    let entry = slot.get_or_insert_with(|| {
                        KeyIndexEntry::stats_only(key.clone(), stats_capacity)
                    });
                    entry.usage.probes += 1;
                    entry.usage.last_probe = query_seq;
                    if entry.activated {
                        entry.usage.hits += 1;
                        let floor = shed_floor(&entry.postings, score_floor, shed_prefix);
                        *elision_ref = crate::codec::elision_stats(&entry.postings, floor);
                        *encoded_ref = Some(crate::codec::encode_list(&entry.postings, floor));
                    }
                });
        } else if let Some(entry) = self.dht.peer(served_by).replica_store.get(&ring_key) {
            // Failover serve: the primary is down, so the holder answers from
            // its replica copy — kept byte-identical to the primary's list by
            // `sync_replicas`, so the degraded path never changes the answer.
            if entry.activated {
                let floor = shed_floor(&entry.postings, score_floor, shed_prefix);
                elision = crate::codec::elision_stats(&entry.postings, floor);
                encoded = Some(crate::codec::encode_list(&entry.postings, floor));
            }
        }
        self.dht.peer_mut(served_by).served_requests += 1;
        self.dht.record_probe(ring_key, served_by);
        let response_bytes = encoded.as_ref().map(Vec::len).unwrap_or(1);
        self.charge(TrafficCategory::Retrieval, response_bytes);
        if plane.reply_timed_out(ring_key, query_seq, attempt) {
            return Ok(ProbeOutcome::TimedOut { hops: info.hops });
        }
        if let Some(bytes) = encoded.as_mut() {
            if let Some(bit) = plane.response_corrupt_bit(ring_key, query_seq, attempt, bytes.len())
            {
                // A bit flips in flight; the codec's checksum trailer catches
                // it at decode below.
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
        }
        let postings = match encoded {
            None => None,
            Some(bytes) => match crate::codec::decode_list(&bytes) {
                Ok(list) => Some(list),
                Err(_) => return Ok(ProbeOutcome::Corrupt { hops: info.hops }),
            },
        };
        Ok(ProbeOutcome::Ok(ProbeResult {
            key: key.clone(),
            postings,
            hops: info.hops,
            responsible: primary,
            served_by,
            replica_set,
            skipped: false,
            skipped_blocks: elision.skipped_blocks,
            elided_bytes: elision.elided_bytes,
        }))
    }

    /// The current publish version of `key`: bumped on every mutation of the
    /// key's stored entry (publish, on-demand store, deactivation, eviction),
    /// `0` for a never-touched key. A cached [`crate::sketch::KeySketch`]
    /// built at version `v` is valid evidence exactly while
    /// `publish_version(key) == v`.
    pub fn publish_version(&self, key: &TermKey) -> u64 {
        self.versions.get(&key.ring_id()).copied().unwrap_or(0)
    }

    /// Records interest in `key` exactly as a probe would — usage statistics
    /// at the responsible peer (creating a statistics-only entry if the key is
    /// unknown), with **zero traffic and zero serve load**.
    ///
    /// This is the bookkeeping counterpart of a sketch-pruned probe: the
    /// querier proved the response useless and never sent the request, but
    /// QDI's decentralized monitoring must still observe the demand, or
    /// pruning would starve activation/eviction decisions. The update is
    /// modelled as piggybacked on existing sketch-maintenance traffic.
    /// Deliberately *not* updated: `served_requests` and the replication
    /// load tracker — a pruned probe loads nobody, which is the point.
    pub fn note_interest(&mut self, key: &TermKey, query_seq: u64, stats_capacity: usize) {
        let ring_key = key.ring_id();
        let Ok(responsible) = self.dht.responsible_for(ring_key) else {
            return;
        };
        self.dht
            .peer_mut(responsible)
            .store
            .upsert_with(ring_key, |slot| {
                let entry = slot
                    .get_or_insert_with(|| KeyIndexEntry::stats_only(key.clone(), stats_capacity));
                entry.usage.probes += 1;
                entry.usage.last_probe = query_seq;
                if entry.activated {
                    entry.usage.hits += 1;
                }
            });
    }

    /// Estimates the overlay hops a probe for `key` from peer `from` would take,
    /// without sending anything (see [`Dht::estimate_hops`]). Planners use this to
    /// cost-annotate probe schedules before spending bandwidth.
    pub fn estimate_hops(&self, from: usize, key: &TermKey) -> Result<usize, DhtError> {
        self.dht.estimate_hops(from, key.ring_id())
    }

    /// Size in bytes of a probe request (key excluded).
    pub fn probe_request_bytes(&self) -> usize {
        self.probe_request_bytes
    }

    /// Upper bound on the retrieval bytes one probe for `key` can charge, given its
    /// hop count and an upper bound on the number of posting references the response
    /// can carry (`max_entries`, e.g. `min(df, truncation_k)`).
    ///
    /// The bound mirrors [`GlobalIndex::probe`]'s accounting exactly: per-hop routing
    /// messages, the routed probe request, and the posting-list response — each with
    /// its wire envelope. The actual charge is never larger as long as the response
    /// really carries at most `max_entries` references (a miss response of 1 byte is
    /// always within the bound).
    pub fn estimate_probe_bytes(&self, key: &TermKey, hops: usize, max_entries: usize) -> u64 {
        use alvisp2p_netsim::wire::ENVELOPE_OVERHEAD;
        let routing = hops * (self.dht.config().lookup_request_bytes + ENVELOPE_OVERHEAD);
        let request = self.probe_request_bytes + key.wire_size() + ENVELOPE_OVERHEAD;
        // The response-size model is the codec's worst case for a frame
        // carrying `max_entries` references (it also covers the 1-byte miss
        // notice), so Reserve admission reserves against what the codec can
        // actually produce.
        let response = crate::codec::max_encoded_list_len(max_entries) + ENVELOPE_OVERHEAD;
        (routing + request + response) as u64
    }

    /// The peer currently responsible for `key` (no routing, no traffic) —
    /// where a probe for it would land.
    pub fn responsible_for(&self, key: &TermKey) -> Result<usize, DhtError> {
        self.dht.responsible_for(key.ring_id())
    }

    /// Exact bytes a probe for `key` would have charged had it been sent and
    /// answered with a `response_bytes`-byte frame: per-hop routing messages,
    /// the routed probe request and the response, each with its wire envelope.
    /// Unlike [`GlobalIndex::estimate_probe_bytes`] (which bounds the response
    /// by the codec's worst case) this mirrors [`GlobalIndex::probe`]'s
    /// accounting to the byte, so a sketch-pruned probe can report the traffic
    /// it avoided without perturbing budget admission.
    pub fn virtual_probe_bytes(&self, key: &TermKey, hops: usize, response_bytes: usize) -> u64 {
        use alvisp2p_netsim::wire::ENVELOPE_OVERHEAD;
        let routing = hops * (self.dht.config().lookup_request_bytes + ENVELOPE_OVERHEAD);
        let request = self.probe_request_bytes + key.wire_size() + ENVELOPE_OVERHEAD;
        (routing + request + response_bytes + ENVELOPE_OVERHEAD) as u64
    }

    /// Reads a key's entry without routing or traffic (ground truth for tests and
    /// experiment verification).
    pub fn peek(&self, key: &TermKey) -> Option<&KeyIndexEntry> {
        self.dht.peek(key.ring_id())
    }

    /// Reads a key's usage statistics without traffic.
    pub fn usage(&self, key: &TermKey) -> Option<KeyUsageStats> {
        self.peek(key).map(|e| e.usage)
    }

    /// Evicts a key from the index at its responsible peer (a local decision of that
    /// peer, so no network traffic is charged). Returns `true` if something was removed.
    pub fn evict(&mut self, key: &TermKey) -> bool {
        let ring_key = key.ring_id();
        let Ok(responsible) = self.dht.responsible_for(ring_key) else {
            return false;
        };
        self.dht.withdraw_replicas(ring_key);
        let removed = self
            .dht
            .peer_mut(responsible)
            .store
            .remove(&ring_key)
            .is_some();
        if removed {
            *self.versions.entry(ring_key).or_insert(0) += 1;
        }
        removed
    }

    /// Deactivates a key but keeps its usage statistics (QDI's "remove obsolete key"
    /// operation: the statistics keep accumulating so the key can be re-activated).
    pub fn deactivate(&mut self, key: &TermKey) -> bool {
        let ring_key = key.ring_id();
        let Ok(responsible) = self.dht.responsible_for(ring_key) else {
            return false;
        };
        self.dht.withdraw_replicas(ring_key);
        let peer = self.dht.peer_mut(responsible);
        let deactivated = match peer.store.get_mut(&ring_key) {
            Some(entry) if entry.activated => {
                entry.activated = false;
                entry.postings = TruncatedPostingList::new(entry.postings.capacity());
                true
            }
            _ => false,
        };
        if deactivated {
            *self.versions.entry(ring_key).or_insert(0) += 1;
        }
        deactivated
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Total number of **activated** keys in the global index.
    pub fn activated_keys(&self) -> usize {
        self.entries().filter(|e| e.activated).count()
    }

    /// Total number of entries (activated + statistics-only).
    pub fn total_entries(&self) -> usize {
        self.entries().count()
    }

    /// Total number of stored posting references across all activated keys.
    pub fn total_postings(&self) -> usize {
        self.entries()
            .filter(|e| e.activated)
            .map(|e| e.postings.len())
            .sum()
    }

    /// Approximate storage bytes of the whole global index.
    pub fn total_storage_bytes(&self) -> usize {
        self.dht.total_storage_bytes()
    }

    /// Per-peer `(activated keys, storage bytes)` — the load-balancing view.
    pub fn per_peer_load(&self) -> Vec<(usize, usize)> {
        self.dht
            .live_peer_indices()
            .into_iter()
            .map(|i| {
                let peer = self.dht.peer(i);
                let keys = peer.store.iter().filter(|(_, e)| e.activated).count();
                (keys, peer.store.storage_bytes())
            })
            .collect()
    }

    /// Iterates over all index entries (activated and statistics-only).
    pub fn entries(&self) -> impl Iterator<Item = &KeyIndexEntry> {
        self.dht
            .live_peer_indices()
            .into_iter()
            .flat_map(move |i| self.dht.peer(i).store.iter().map(|(_, e)| e))
    }

    /// All activated keys, sorted by canonical form (used by reports and tests).
    pub fn activated_key_list(&self) -> Vec<TermKey> {
        let mut keys: Vec<TermKey> = self
            .entries()
            .filter(|e| e.activated)
            .map(|e| e.key.clone())
            .collect();
        keys.sort();
        keys
    }

    /// Charges `bytes` of traffic in `category` without routing (used for responses
    /// and for modelled exchanges whose routing is already accounted).
    pub fn charge(&mut self, category: TrafficCategory, bytes: usize) {
        self.dht.charge_external(category, bytes);
    }

    /// Hashes a key to its ring identifier (helper for tests).
    pub fn ring_id_of(key: &TermKey) -> RingId {
        key.ring_id()
    }

    // ------------------------------------------------------------------
    // Replication (skew-aware hot-key replicas)
    // ------------------------------------------------------------------

    /// Replaces the overlay's replication policy (see
    /// [`alvisp2p_dht::Dht::set_replication_policy`]).
    pub fn set_replication_policy(
        &mut self,
        policy: std::sync::Arc<dyn alvisp2p_dht::ReplicationPolicy>,
    ) {
        self.dht.set_replication_policy(policy);
    }

    /// The live peers currently holding a replica of `key` (primary excluded).
    pub fn replica_holders_of(&self, key: &TermKey) -> Vec<usize> {
        self.dht.replica_holders(key.ring_id())
    }

    /// The peers that can currently serve `key`: the primary first, followed
    /// by the live replica holders. Empty only on an empty overlay.
    pub fn serving_candidates(&self, key: &TermKey) -> Vec<usize> {
        let ring_key = key.ring_id();
        let Ok(primary) = self.dht.responsible_for(ring_key) else {
            return Vec::new();
        };
        let mut out = vec![primary];
        out.extend(self.dht.replica_holders(ring_key));
        out
    }

    /// A peer's current EWMA probe-serve load (see
    /// [`alvisp2p_dht::replica::LoadTracker`]).
    pub fn peer_probe_load(&self, peer: usize) -> f64 {
        self.dht.replication().peer_load(peer)
    }

    /// Estimates the overlay hops from peer `from` to a specific peer (used by
    /// the `ReplicaAware` planner to cost probe routes to replica holders).
    pub fn estimate_hops_to_peer(&self, from: usize, peer: usize) -> Result<usize, DhtError> {
        self.dht.estimate_hops(from, self.dht.peer(peer).id)
    }
}

/// Raises the effective score floor to the `p`-th stored score when a shed
/// prefix is requested, so the encoded response carries at most `p` entries.
fn shed_floor(
    postings: &TruncatedPostingList,
    score_floor: Option<f64>,
    shed_prefix: Option<usize>,
) -> Option<f64> {
    let Some(prefix) = shed_prefix else {
        return score_floor;
    };
    if prefix == 0 || postings.len() <= prefix {
        return score_floor;
    }
    let cut = postings.refs()[prefix - 1].score;
    Some(match score_floor {
        Some(f) => f.max(cut),
        None => cut,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::ScoredRef;
    use alvisp2p_textindex::DocId;

    fn refs(n: u32) -> TruncatedPostingList {
        TruncatedPostingList::from_refs(
            (0..n).map(|i| ScoredRef {
                doc: DocId::new(0, i),
                score: f64::from(n - i),
            }),
            usize::MAX / 2,
        )
    }

    fn index(peers: usize) -> GlobalIndex {
        GlobalIndex::new(DhtConfig::default(), 5, peers)
    }

    #[test]
    fn publish_then_probe_round_trips() {
        let mut gi = index(16);
        let key = TermKey::new(["peer", "retriev"]);
        gi.publish_postings(0, &key, &refs(5), 100).unwrap();
        let probe = gi.probe(3, &key, 1, 100, None).unwrap();
        assert!(probe.found());
        assert_eq!(probe.postings.unwrap().len(), 5);
        assert_eq!(gi.activated_keys(), 1);
        // Usage statistics were recorded at the responsible peer.
        let usage = gi.usage(&key).unwrap();
        assert_eq!(usage.probes, 1);
        assert_eq!(usage.hits, 1);
        assert_eq!(usage.last_probe, 1);
    }

    #[test]
    fn probing_unknown_key_records_statistics_only() {
        let mut gi = index(8);
        let key = TermKey::new(["never", "indexed"]);
        let probe = gi.probe(2, &key, 7, 50, None).unwrap();
        assert!(!probe.found());
        assert_eq!(gi.activated_keys(), 0);
        assert_eq!(gi.total_entries(), 1);
        let usage = gi.usage(&key).unwrap();
        assert_eq!(usage.probes, 1);
        assert_eq!(usage.hits, 0);
        assert_eq!(usage.last_probe, 7);
        // Probing again accumulates.
        gi.probe(3, &key, 9, 50, None).unwrap();
        assert_eq!(gi.usage(&key).unwrap().probes, 2);
    }

    #[test]
    fn contributions_from_many_peers_merge() {
        let mut gi = index(16);
        let key = TermKey::single("databas");
        for p in 0..4u32 {
            let delta = TruncatedPostingList::from_refs(
                (0..3).map(|i| ScoredRef {
                    doc: DocId::new(p, i),
                    score: f64::from(p * 10 + i),
                }),
                100,
            );
            gi.publish_postings(p as usize, &key, &delta, 100).unwrap();
        }
        let entry = gi.peek(&key).unwrap();
        assert_eq!(entry.postings.len(), 12);
        assert_eq!(entry.postings.full_df(), 12);
        assert!(entry.activated);
        assert_eq!(gi.total_postings(), 12);
    }

    #[test]
    fn truncation_capacity_is_enforced_at_the_responsible_peer() {
        let mut gi = index(8);
        let key = TermKey::single("frequent");
        for p in 0..10u32 {
            let delta = TruncatedPostingList::from_refs(
                (0..10).map(|i| ScoredRef {
                    doc: DocId::new(p, i),
                    score: f64::from(p * 100 + i),
                }),
                10,
            );
            gi.publish_postings(0, &key, &delta, 20).unwrap();
        }
        let entry = gi.peek(&key).unwrap();
        assert_eq!(entry.postings.len(), 20);
        assert_eq!(entry.postings.full_df(), 100);
        assert!(entry.postings.is_truncated());
    }

    #[test]
    fn traffic_is_charged_to_the_right_categories() {
        let mut gi = index(32);
        let key = TermKey::new(["scalabl", "network"]);
        gi.publish_postings(1, &key, &refs(50), 100).unwrap();
        let after_publish = gi.stats_snapshot();
        assert!(after_publish.category(TrafficCategory::Indexing).bytes > 0);
        assert_eq!(after_publish.category(TrafficCategory::Retrieval).bytes, 0);
        gi.probe(9, &key, 1, 100, None).unwrap();
        let delta = gi.stats_snapshot().since(&after_publish);
        // The probe charges at least the codec frame of the stored list (plus
        // request + routing), and never more than the planner's worst case.
        let frame = gi.peek(&key).unwrap().postings.wire_size() as u64;
        assert!(delta.category(TrafficCategory::Retrieval).bytes > frame);
        assert_eq!(delta.category(TrafficCategory::Indexing).bytes, 0);
    }

    #[test]
    fn probe_round_trips_through_the_codec() {
        let mut gi = index(16);
        let key = TermKey::new(["codec", "probe"]);
        gi.publish_postings(0, &key, &refs(30), 100).unwrap();
        let stored = gi.peek(&key).unwrap().postings.clone();
        let probe = gi.probe(3, &key, 1, 100, None).unwrap();
        let got = probe.postings.unwrap();
        // Same documents in the same order; scores within one quantization step.
        assert_eq!(got.len(), stored.len());
        assert_eq!(got.full_df(), stored.full_df());
        let step = crate::codec::quantization_step(
            stored.worst_score().unwrap(),
            stored.best_score().unwrap(),
        ) + 1e-9;
        for (a, b) in stored.refs().iter().zip(got.refs()) {
            assert_eq!(a.doc, b.doc);
            assert!((a.score - b.score).abs() <= step);
        }
    }

    #[test]
    fn score_floor_elides_the_tail_and_charges_fewer_bytes() {
        let mut gi = index(16);
        let key = TermKey::new(["floor", "probe"]);
        // Scores 30.0 down to 1.0, complete list.
        gi.publish_postings(0, &key, &refs(30), 100).unwrap();
        let before = gi.stats_snapshot();
        let full = gi.probe(3, &key, 1, 100, None).unwrap().postings.unwrap();
        let full_bytes = gi
            .stats_snapshot()
            .since(&before)
            .category(TrafficCategory::Retrieval)
            .bytes;
        let before = gi.stats_snapshot();
        let floored = gi
            .probe(3, &key, 2, 100, Some(20.0))
            .unwrap()
            .postings
            .unwrap();
        let floored_bytes = gi
            .stats_snapshot()
            .since(&before)
            .category(TrafficCategory::Retrieval)
            .bytes;
        assert_eq!(full.len(), 30);
        assert!(!full.is_truncated());
        assert_eq!(floored.len(), 11, "scores 30..=20 survive the floor");
        assert!(floored.refs().iter().all(|r| r.score >= 19.9));
        // Floor elision is not capacity truncation: the list stays "complete"
        // so domination pruning is unchanged.
        assert!(!floored.is_truncated());
        assert!(floored_bytes < full_bytes);
    }

    #[test]
    fn deactivate_keeps_statistics_but_drops_postings() {
        let mut gi = index(8);
        let key = TermKey::new(["old", "popular"]);
        gi.publish_postings(0, &key, &refs(5), 100).unwrap();
        gi.probe(1, &key, 1, 100, None).unwrap();
        assert!(gi.deactivate(&key));
        assert!(!gi.deactivate(&key), "already deactivated");
        assert_eq!(gi.activated_keys(), 0);
        let probe = gi.probe(2, &key, 2, 100, None).unwrap();
        assert!(!probe.found());
        assert_eq!(gi.usage(&key).unwrap().probes, 2);
    }

    #[test]
    fn evict_removes_the_entry_entirely() {
        let mut gi = index(8);
        let key = TermKey::single("gone");
        gi.publish_postings(0, &key, &refs(2), 10).unwrap();
        assert!(gi.evict(&key));
        assert!(!gi.evict(&key));
        assert_eq!(gi.total_entries(), 0);
        assert!(gi.peek(&key).is_none());
    }

    #[test]
    fn store_acquired_places_list_at_responsible_peer() {
        let mut gi = index(16);
        let key = TermKey::new(["on", "demand"]);
        // Build up some probe statistics first.
        gi.probe(0, &key, 1, 50, None).unwrap();
        gi.probe(1, &key, 2, 50, None).unwrap();
        let responsible = gi.dht().responsible_for(key.ring_id()).unwrap();
        gi.store_acquired(responsible, &key, refs(7));
        let entry = gi.peek(&key).unwrap();
        assert!(entry.activated);
        assert_eq!(entry.postings.len(), 7);
        // The usage statistics survived the activation.
        assert_eq!(entry.usage.probes, 2);
    }

    #[test]
    fn estimate_probe_bytes_bounds_the_actual_probe_charge() {
        let mut gi = index(32);
        let found = TermKey::new(["cost", "model"]);
        gi.publish_postings(0, &found, &refs(9), 16).unwrap();
        for (key, max_entries) in [(found, 9usize), (TermKey::single("miss"), 0)] {
            let hops = gi.estimate_hops(3, &key).unwrap();
            let bound = gi.estimate_probe_bytes(&key, hops, max_entries);
            let before = gi.stats_snapshot();
            gi.probe(3, &key, 1, 16, None).unwrap();
            let spent = gi
                .stats_snapshot()
                .since(&before)
                .category(TrafficCategory::Retrieval)
                .bytes;
            assert!(spent <= bound, "probe {key} spent {spent} > bound {bound}");
        }
    }

    #[test]
    fn shed_prefix_degrades_to_a_truncated_prefix_answer() {
        let mut gi = index(16);
        let key = TermKey::new(["shed", "probe"]);
        gi.publish_postings(0, &key, &refs(30), 100).unwrap();
        let full = gi
            .probe_with(3, &key, 1, 100, None, None)
            .unwrap()
            .postings
            .unwrap();
        assert_eq!(full.len(), 30);
        let shed = gi
            .probe_with(3, &key, 2, 100, None, Some(5))
            .unwrap()
            .postings
            .unwrap();
        assert_eq!(shed.len(), 5, "top-5 prefix under shedding");
        assert_eq!(
            shed.refs().iter().map(|r| r.doc).collect::<Vec<_>>(),
            full.refs()
                .iter()
                .take(5)
                .map(|r| r.doc)
                .collect::<Vec<_>>()
        );
        // Prefix elision is not capacity truncation: pruning is unchanged.
        assert!(!shed.is_truncated());
        // A shed prefix wider than the list changes nothing.
        let wide = gi
            .probe_with(3, &key, 3, 100, None, Some(100))
            .unwrap()
            .postings
            .unwrap();
        assert_eq!(wide.len(), 30);
        // The stricter of (score floor, shed floor) wins.
        let both = gi
            .probe_with(3, &key, 4, 100, Some(28.0), Some(10))
            .unwrap()
            .postings
            .unwrap();
        assert_eq!(both.len(), 3, "scores 30, 29, 28 survive");
    }

    #[test]
    fn replicated_probes_move_the_serve_but_not_the_answer() {
        use alvisp2p_dht::HotKeyReplication;
        use std::sync::Arc;
        let mut gi = index(24);
        gi.set_replication_policy(Arc::new(HotKeyReplication::new(3)));
        let key = TermKey::new(["hot", "head"]);
        gi.publish_postings(0, &key, &refs(20), 100).unwrap();
        let baseline = gi.probe(1, &key, 0, 100, None).unwrap();
        let primary = baseline.responsible;
        let mut served = std::collections::BTreeSet::new();
        for seq in 1..60u64 {
            let p = gi.probe((seq as usize) % 24, &key, seq, 100, None).unwrap();
            // The answer never changes with placement.
            assert_eq!(p.postings, baseline.postings);
            assert_eq!(p.responsible, primary);
            served.insert(p.served_by);
        }
        assert!(
            served.len() >= 3,
            "hot probes spread over primary + replicas: {served:?}"
        );
        let holders = gi.replica_holders_of(&key);
        assert_eq!(holders.len(), 3);
        assert_eq!(gi.serving_candidates(&key)[0], primary);
        assert!(gi.peer_probe_load(primary) > 0.0);
        // Usage statistics stay canonical at the primary.
        assert_eq!(gi.usage(&key).unwrap().probes, 60);
    }

    #[test]
    fn publish_versions_track_every_entry_mutation() {
        let mut gi = index(16);
        let key = TermKey::new(["version", "track"]);
        assert_eq!(gi.publish_version(&key), 0);
        gi.publish_postings(0, &key, &refs(3), 100).unwrap();
        assert_eq!(gi.publish_version(&key), 1);
        gi.publish_postings(1, &key, &refs(2), 100).unwrap();
        assert_eq!(gi.publish_version(&key), 2);
        // Probes are reads: no version change.
        gi.probe(2, &key, 1, 100, None).unwrap();
        assert_eq!(gi.publish_version(&key), 2);
        assert!(gi.deactivate(&key));
        assert_eq!(gi.publish_version(&key), 3);
        assert!(!gi.deactivate(&key), "no-op deactivation does not bump");
        assert_eq!(gi.publish_version(&key), 3);
        let responsible = gi.dht().responsible_for(key.ring_id()).unwrap();
        gi.store_acquired(responsible, &key, refs(4));
        assert_eq!(gi.publish_version(&key), 4);
        assert!(gi.evict(&key));
        assert_eq!(gi.publish_version(&key), 5);
        assert!(!gi.evict(&key), "no-op eviction does not bump");
        assert_eq!(gi.publish_version(&key), 5);
    }

    #[test]
    fn note_interest_matches_probe_statistics_without_traffic() {
        let mut gi = index(16);
        let known = TermKey::new(["noted", "key"]);
        gi.publish_postings(0, &known, &refs(3), 100).unwrap();
        let before = gi.stats_snapshot();
        gi.note_interest(&known, 5, 100);
        gi.note_interest(&TermKey::single("unknown"), 6, 100);
        let delta = gi.stats_snapshot().since(&before);
        assert_eq!(delta.category(TrafficCategory::Retrieval).bytes, 0);
        assert_eq!(delta.category(TrafficCategory::Overlay).bytes, 0);
        // Statistics advanced exactly as a probe would have advanced them.
        let usage = gi.usage(&known).unwrap();
        assert_eq!((usage.probes, usage.hits, usage.last_probe), (1, 1, 5));
        let usage = gi.usage(&TermKey::single("unknown")).unwrap();
        assert_eq!((usage.probes, usage.hits, usage.last_probe), (1, 0, 6));
        assert_eq!(gi.total_entries(), 2, "stats-only entry was created");
    }

    #[test]
    fn lost_publishes_stay_pending_until_republished() {
        use crate::fault::FaultPlane;
        let mut gi = index(16);
        let plane = FaultPlane::seeded(7).with_publish_loss(1.0);
        let key = TermKey::new(["lost", "publish"]);
        let before = gi.stats_snapshot();
        gi.publish_postings_faulty(0, &key, &refs(5), 100, &plane)
            .unwrap();
        // The message crossed (part of) the wire: Indexing bytes charged,
        // but nothing applied and no version bump.
        let delta = gi.stats_snapshot().since(&before);
        assert!(delta.category(TrafficCategory::Indexing).bytes > 0);
        assert_eq!(gi.activated_keys(), 0);
        assert_eq!(gi.publish_version(&key), 0);
        assert_eq!(gi.pending_publishes(), 1);
        // Re-publication under a now-clean wire applies and acknowledges.
        let clean = FaultPlane::seeded(7);
        let before = gi.stats_snapshot();
        let (resent, applied) = gi.republish_round(&clean);
        assert_eq!((resent, applied), (1, 1));
        assert_eq!(gi.pending_publishes(), 0);
        assert_eq!(gi.activated_keys(), 1);
        assert_eq!(gi.publish_version(&key), 1);
        assert_eq!(gi.peek(&key).unwrap().postings.len(), 5);
        // Re-publication traffic is Overlay, never Retrieval/Indexing.
        let delta = gi.stats_snapshot().since(&before);
        assert!(delta.category(TrafficCategory::Overlay).bytes > 0);
        assert_eq!(delta.category(TrafficCategory::Indexing).bytes, 0);
        assert_eq!(delta.category(TrafficCategory::Retrieval).bytes, 0);
    }

    #[test]
    fn republish_backs_off_while_the_wire_stays_lossy() {
        use crate::fault::FaultPlane;
        let mut gi = index(16);
        let lossy = FaultPlane::seeded(3).with_publish_loss(1.0);
        let key = TermKey::single("unlucky");
        gi.publish_postings_faulty(0, &key, &refs(2), 10, &lossy)
            .unwrap();
        let mut resent_total = 0;
        for _ in 0..20 {
            let (resent, applied) = gi.republish_round(&lossy);
            assert_eq!(applied, 0);
            resent_total += resent;
        }
        // Exponential backoff: far fewer re-sends than rounds, but retries
        // never stop entirely.
        assert!((3..10).contains(&resent_total), "got {resent_total}");
        assert_eq!(gi.pending_publishes(), 1);
    }

    #[test]
    fn faultless_publish_path_matches_publish_postings() {
        use crate::fault::FaultPlane;
        let mut gi = index(16);
        let key = TermKey::new(["clean", "publish"]);
        gi.publish_postings_faulty(0, &key, &refs(4), 100, &FaultPlane::NoFaults)
            .unwrap();
        assert_eq!(gi.pending_publishes(), 0);
        assert_eq!(gi.publish_version(&key), 1);
        assert_eq!(gi.peek(&key).unwrap().postings.len(), 4);
        assert_eq!(gi.republish_round(&FaultPlane::NoFaults), (0, 0));
    }

    #[test]
    fn corrupted_probe_responses_are_rejected_not_decoded() {
        use crate::fault::{FaultPlane, ProbeOutcome};
        let mut gi = index(16);
        let key = TermKey::new(["bit", "flip"]);
        gi.publish_postings(0, &key, &refs(10), 100).unwrap();
        let plane = FaultPlane::seeded(5).with_corruption(1.0);
        let outcome = gi
            .probe_attempt(2, &key, 1, 100, None, None, &plane, 0, None)
            .unwrap();
        assert!(
            matches!(outcome, ProbeOutcome::Corrupt { .. }),
            "single-bit flips are always caught by the trailer: {outcome:?}"
        );
        // The serve happened (full round trip): statistics advanced.
        assert_eq!(gi.usage(&key).unwrap().probes, 1);
        // A clean attempt at other coordinates still answers.
        let clean = FaultPlane::seeded(5).with_corruption(0.0).with_loss(0.0);
        let mut active = clean;
        active.crash(usize::MAX); // keep the plane active without touching live peers
        let outcome = gi
            .probe_attempt(2, &key, 2, 100, None, None, &active, 0, None)
            .unwrap();
        assert!(matches!(outcome, ProbeOutcome::Ok(_)));
    }

    #[test]
    fn content_digest_tracks_postings_not_usage() {
        let mut gi = index(16);
        let key = TermKey::new(["digest", "key"]);
        gi.publish_postings(0, &key, &refs(5), 100).unwrap();
        let d1 = gi.peek(&key).unwrap().content_digest();
        // Probes advance usage but not the replicated content.
        gi.probe(1, &key, 1, 100, None).unwrap();
        assert_eq!(gi.peek(&key).unwrap().content_digest(), d1);
        // Publishing more postings changes the digest.
        gi.publish_postings(1, &key, &refs(7), 100).unwrap();
        assert_ne!(gi.peek(&key).unwrap().content_digest(), d1);
    }

    #[test]
    fn per_peer_load_reports_activated_keys() {
        let mut gi = index(8);
        for i in 0..20 {
            let key = TermKey::single(format!("term{i}"));
            gi.publish_postings(0, &key, &refs(3), 10).unwrap();
        }
        let load = gi.per_peer_load();
        assert_eq!(load.iter().map(|(k, _)| k).sum::<usize>(), 20);
        assert!(load.iter().map(|(_, b)| b).sum::<usize>() > 0);
        assert_eq!(gi.activated_key_list().len(), 20);
    }
}
