//! Budget-aware query planning: choose *which* lattice keys to probe **before**
//! paying network cost.
//!
//! PR 1 enforced [`crate::request::QueryRequest`] byte/hop budgets by chopping the
//! lattice walk off mid-flight: probes were sent in fixed lattice order until the
//! budget ran dry, so under tight budgets the spend went to whatever happened to come
//! first. Cost-based selection (Liu, "Cost-based Selection of Provenance Sketches")
//! and skew-aware placement (Beame et al.) argue the opposite discipline: estimate
//! what each candidate costs and buys, then spend the budget on the best ones.
//!
//! This module splits retrieval into an explicit **plan → execute** pipeline:
//!
//! * [`QueryPlan`] — an ordered, cost-annotated probe schedule over the query's term
//!   lattice. Every lattice node appears exactly once, either as a scheduled probe
//!   (with hop/byte estimates and a priority) or as a planned skip, so executing a
//!   plan still yields a complete [`crate::lattice::LatticeTrace`].
//! * [`Planner`] — the object-safe seam producing plans. Built-ins:
//!   [`BestEffort`] reproduces PR 1's fixed-order cutoff semantics key-for-key (the
//!   comparability baseline), while [`GreedyCost`] uses per-key posting-size/DF
//!   estimates from [`GlobalRankingStats`] plus traffic-free DHT hop estimates
//!   ([`crate::global_index::GlobalIndex::estimate_hops`]) to drop provably useless
//!   probes, prioritise cost-effective ones, and admit probes against the budget so
//!   the spend **never** exceeds it.
//! * [`PlanHints`] — what a [`crate::strategy::Strategy`] tells planners about the
//!   index shape (longest indexed key, whether probing missing keys has value).
//! * [`PlanCursor`] — the deterministic execution state machine shared by
//!   [`crate::exec::QueryStream`] / [`crate::network::AlvisNetwork::run`] and the
//!   experiment harness: it walks a plan, applies dynamic domination pruning and
//!   budget admission, and accumulates the trace.

use crate::global_index::{GlobalIndex, ProbeResult};
use crate::key::TermKey;
use crate::lattice::{LatticeConfig, LatticeResult, LatticeTrace, NodeOutcome};
use crate::posting::TruncatedPostingList;
use crate::ranking::GlobalRankingStats;
use crate::sketch::{KeySketch, SketchCache};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Hints from the strategy
// ---------------------------------------------------------------------------

/// What an indexing strategy tells query planners about the shape of its index,
/// via [`crate::strategy::Strategy::plan_hints`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanHints {
    /// The longest key length the strategy may have indexed. Probing longer
    /// combinations can never return postings.
    pub max_indexed_len: usize,
    /// Whether probing a key that is *not* indexed still has value. Query-driven
    /// strategies say `true`: every probe feeds the responsible peer's usage
    /// statistics, which is what triggers on-demand activation.
    pub probe_unindexed: bool,
    /// Prior probability that a multi-term candidate within `max_indexed_len` is
    /// actually indexed (single terms with non-zero df always are). Cost-based
    /// planners use it to discount the expected benefit of multi-term probes.
    pub multi_term_prior: f64,
}

impl Default for PlanHints {
    fn default() -> Self {
        PlanHints {
            max_indexed_len: usize::MAX,
            probe_unindexed: false,
            multi_term_prior: 0.5,
        }
    }
}

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// What the planner decided to do with one lattice node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanDecision {
    /// Send the probe (subject to run-time pruning and budget admission).
    Probe,
    /// Do not probe: the combination exceeds the probe-length bound. Recorded as
    /// [`NodeOutcome::TooLong`] in the trace.
    SkipTooLong,
    /// Do not probe for a planner-specific reason (cannot be indexed, zero
    /// document-frequency upper bound, strategy probes single terms only).
    /// Recorded as [`NodeOutcome::Skipped`] in the trace.
    Skip,
}

/// One lattice node in a [`QueryPlan`]: the key, the planner's decision and the
/// cost annotation backing it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// The lattice key.
    pub key: TermKey,
    /// What to do with it.
    pub decision: PlanDecision,
    /// Estimated overlay hops of the probe (exact while routing tables are
    /// converged; see [`GlobalIndex::estimate_hops`]).
    pub est_hops: usize,
    /// Upper bound on the retrieval bytes the probe can charge
    /// (see [`GlobalIndex::estimate_probe_bytes`]).
    pub est_bytes: u64,
    /// Upper bound on the posting references the response can carry
    /// (`min(df upper bound, truncation capacity)`).
    pub est_entries: usize,
    /// The planner's benefit/cost score (higher = scheduled earlier). Zero for
    /// planners that keep the fixed lattice order.
    pub priority: f64,
    /// Load-shedding instruction: when non-zero, the serving peer degrades the
    /// response to the top-`shed_prefix` entries of its stored list instead of
    /// queueing the full answer. Set by [`ReplicaAware`] when every live
    /// holder of the key is saturated; `0` (the default) means a full answer.
    pub shed_prefix: usize,
}

/// How the executor enforces the request's byte/hop budgets while running a plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetPolicy {
    /// PR 1 semantics: keep probing while the budget is not yet exhausted. The
    /// last probe may overshoot the budget (it is sent as long as *any* budget
    /// remains beforehand).
    #[default]
    Cutoff,
    /// Admission control: a probe is sent only if its worst-case cost still fits
    /// into the remaining budget, so the actual spend never exceeds the budget.
    /// Unaffordable probes are skipped individually — a later, cheaper probe may
    /// still fit.
    Reserve,
}

/// An ordered, cost-annotated probe schedule over a query's term lattice.
///
/// Produced by a [`Planner`], executed by
/// [`crate::network::AlvisNetwork::run`] / [`crate::exec::QueryStream`]. The
/// schedule covers the **whole** lattice: nodes the planner declined to probe are
/// kept as planned skips so traces stay complete and comparable across planners.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The analyzed query key, or `None` when the query text analyzed to nothing
    /// (the plan is then empty and executing it returns an empty response).
    pub query_key: Option<TermKey>,
    /// The peer the query originates from.
    pub origin: usize,
    /// The schedule, in execution order.
    pub nodes: Vec<PlanNode>,
    /// How budgets are enforced at run time.
    pub budget_policy: BudgetPolicy,
    /// Label of the planner that produced the plan.
    pub planner: String,
    /// Sum of the scheduled probes' byte upper bounds.
    pub est_total_bytes: u64,
    /// Sum of the scheduled probes' hop estimates.
    pub est_total_hops: usize,
}

impl QueryPlan {
    /// An empty plan (used for queries that analyze to nothing).
    pub fn empty(planner: &str, origin: usize) -> Self {
        QueryPlan {
            query_key: None,
            origin,
            nodes: Vec::new(),
            budget_policy: BudgetPolicy::Cutoff,
            planner: planner.to_string(),
            est_total_bytes: 0,
            est_total_hops: 0,
        }
    }

    /// Whether the plan schedules no probes at all.
    pub fn is_empty(&self) -> bool {
        self.scheduled_probes() == 0
    }

    /// The nodes the planner scheduled for probing, in execution order.
    pub fn probes(&self) -> impl Iterator<Item = &PlanNode> {
        self.nodes
            .iter()
            .filter(|n| n.decision == PlanDecision::Probe)
    }

    /// Number of scheduled probes.
    pub fn scheduled_probes(&self) -> usize {
        self.probes().count()
    }
}

// ---------------------------------------------------------------------------
// The planner seam
// ---------------------------------------------------------------------------

/// Everything a planner may consult: the query, the origin, the strategy's view
/// of the lattice, global ranking statistics for document-frequency estimates,
/// and the global index for traffic-free hop estimation.
pub struct PlanCtx<'a> {
    /// The analyzed query key.
    pub query_key: &'a TermKey,
    /// The originating peer.
    pub origin: usize,
    /// The strategy-resolved lattice exploration bounds.
    pub lattice: LatticeConfig,
    /// The strategy's hints about the index shape.
    pub hints: PlanHints,
    /// The posting-list truncation capacity of the strategy.
    pub capacity: usize,
    /// Aggregated global collection statistics (per-term document frequencies).
    pub ranking: &'a GlobalRankingStats,
    /// The global index (hop estimation and cost constants only — planning must
    /// not probe).
    pub global: &'a GlobalIndex,
    /// The request's byte budget, if any.
    pub byte_budget: Option<u64>,
    /// The request's hop budget, if any.
    pub hop_budget: Option<usize>,
    /// The querier's cached per-key sketches (see [`crate::sketch`]), or
    /// `None` when the network maintains none
    /// ([`crate::sketch::SketchPolicy::NoSketches`]). Only [`SketchAware`]
    /// consults this; every other planner ignores it.
    pub sketches: Option<&'a SketchCache>,
}

impl PlanCtx<'_> {
    /// Upper bound on the number of documents matching every term of `key`: the
    /// smallest global document frequency among its terms (an intersection can
    /// never be larger than its smallest member).
    pub fn df_upper_bound(&self, key: &TermKey) -> u64 {
        key.term_ids()
            .iter()
            .map(|t| self.ranking.df_id(*t))
            .min()
            .unwrap_or(0)
    }

    /// Cost-annotates `key`: traffic-free hop estimate plus the worst-case byte
    /// charge of probing it.
    pub fn annotate(&self, key: &TermKey) -> (usize, u64, usize) {
        let hops = self.global.estimate_hops(self.origin, key).unwrap_or(0);
        let entries = (self.df_upper_bound(key) as usize).min(self.capacity);
        let bytes = self.global.estimate_probe_bytes(key, hops, entries);
        (hops, bytes, entries)
    }
}

/// A query planner: turns a query into a [`QueryPlan`].
///
/// Object safe — networks hold planners as `Arc<dyn Planner>`, so user crates can
/// implement their own scheduling policies and hand them to
/// [`crate::network::AlvisNetworkBuilder::planner`].
pub trait Planner: std::fmt::Debug + Send + Sync {
    /// A short label used in reports and experiment output.
    fn label(&self) -> &str;

    /// Produces the probe schedule for one query.
    fn plan(&self, ctx: &PlanCtx<'_>) -> QueryPlan;
}

fn finalize(mut plan: QueryPlan) -> QueryPlan {
    plan.est_total_bytes = plan.probes().map(|n| n.est_bytes).sum();
    plan.est_total_hops = plan.probes().map(|n| n.est_hops).sum();
    plan
}

// ---------------------------------------------------------------------------
// Built-in planners
// ---------------------------------------------------------------------------

/// The comparability baseline: schedules the lattice in the exact order and with
/// the exact skip/probe decisions of the PR 1 `execute` path, and enforces
/// budgets with the same mid-flight [`BudgetPolicy::Cutoff`]. Budget-free
/// executions reproduce PR 1 traces key-for-key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BestEffort;

impl Planner for BestEffort {
    fn label(&self) -> &str {
        "best-effort"
    }

    fn plan(&self, ctx: &PlanCtx<'_>) -> QueryPlan {
        let query = ctx.query_key;
        let single_term_only = ctx.lattice.max_probe_len == 1;
        let mut nodes = Vec::new();
        for key in query.all_subsets_desc() {
            let decision = if ctx.lattice.max_probe_len > 0
                && key.len() > ctx.lattice.max_probe_len
                && key != *query
            {
                // Never probe over-long combinations — except the query itself,
                // which is always tried first per the paper.
                PlanDecision::SkipTooLong
            } else if single_term_only && key.len() > 1 {
                // Only the single terms exist in the index, each complete.
                PlanDecision::Skip
            } else {
                PlanDecision::Probe
            };
            let (est_hops, est_bytes, est_entries) = if decision == PlanDecision::Probe {
                ctx.annotate(&key)
            } else {
                (0, 0, 0)
            };
            nodes.push(PlanNode {
                key,
                decision,
                est_hops,
                est_bytes,
                est_entries,
                priority: 0.0,
                shed_prefix: 0,
            });
        }
        finalize(QueryPlan {
            query_key: Some(query.clone()),
            origin: ctx.origin,
            nodes,
            budget_policy: BudgetPolicy::Cutoff,
            planner: self.label().to_string(),
            est_total_bytes: 0,
            est_total_hops: 0,
        })
    }
}

/// Cost-based greedy planner: spends the budget on the probes that buy the most.
///
/// Compared to [`BestEffort`] it
///
/// 1. **drops provably useless probes** — keys containing a term with global
///    document frequency 0 cannot match anything, keys longer than the strategy's
///    [`PlanHints::max_indexed_len`] cannot be indexed (they are still scheduled
///    when the strategy is query-driven, because those probes feed activation
///    statistics);
/// 2. **orders the schedule by benefit/cost** — benefit is the expected posting
///    count (an independence estimate of the key's term intersection, capped by
///    the truncation capacity) weighted by the key's summed inverse document
///    frequency and the strategy's multi-term prior; cost is the probe's
///    worst-case bytes. Under a budget the whole schedule is sorted by this
///    ratio, so the budget goes to the most valuable probes first. Without a
///    budget there is nothing to ration and the planner keeps the lattice's
///    largest-first level order (within-level reordering only), which preserves
///    the full power of the paper's domination pruning;
/// 3. **enforces budgets by admission** ([`BudgetPolicy::Reserve`]): a probe is
///    sent only when its worst-case cost still fits, so planned executions never
///    exceed `byte_budget`/`hop_budget`.
#[derive(Clone, Debug, PartialEq)]
pub struct GreedyCost {
    /// Benefit discount applied per multi-term key (multiplied with
    /// [`PlanHints::multi_term_prior`]). 1.0 trusts the strategy's prior as is.
    pub risk_aversion: f64,
}

impl Default for GreedyCost {
    fn default() -> Self {
        GreedyCost { risk_aversion: 1.0 }
    }
}

impl GreedyCost {
    /// Expected number of postings a probe for `key` returns if the key is
    /// indexed: an independence estimate of the intersection size
    /// (`N · Π df_t/N`), capped by the worst-case entry bound.
    fn expected_entries(ctx: &PlanCtx<'_>, key: &TermKey, entries_upper_bound: usize) -> f64 {
        let n = ctx.ranking.doc_count() as f64;
        if n <= 0.0 {
            return 0.0;
        }
        let mut expected = n;
        for t in key.term_ids() {
            expected *= ctx.ranking.df_id(*t) as f64 / n;
        }
        expected.min(entries_upper_bound as f64)
    }

    /// The planner's benefit estimate for probing `key`: expected retrieved
    /// score mass, approximated as (expected posting count) × (per-entry score
    /// estimate) × (probability the key is indexed).
    ///
    /// The per-entry estimate prefers the key's published maximum score when
    /// one is cached (the same `GlobalRankingStats` maxima the rank-safe
    /// floors are derived from): an actual bound on what the key's entries
    /// score, measured over the real stored list. Only keys never published —
    /// where no measurement exists — fall back to the original DF-and-
    /// independence proxy (summed idf of the key's terms). Staleness is
    /// irrelevant here: a somewhat-outdated measurement still beats the
    /// blind proxy, and planning priorities need no soundness guarantee.
    fn benefit(&self, ctx: &PlanCtx<'_>, key: &TermKey, entries_upper_bound: usize) -> f64 {
        let n = ctx.ranking.doc_count() as f64;
        let per_entry = match ctx.ranking.key_max_score(key) {
            Some(max) if max > 0.0 => max,
            _ => key
                .term_ids()
                .iter()
                .map(|t| (1.0 + n / (1.0 + ctx.ranking.df_id(*t) as f64)).ln())
                .sum(),
        };
        let p_indexed = if key.is_single() {
            1.0
        } else {
            (ctx.hints.multi_term_prior * self.risk_aversion).clamp(0.0, 1.0)
        };
        Self::expected_entries(ctx, key, entries_upper_bound) * per_entry * p_indexed
    }
}

impl Planner for GreedyCost {
    fn label(&self) -> &str {
        "greedy-cost"
    }

    fn plan(&self, ctx: &PlanCtx<'_>) -> QueryPlan {
        let query = ctx.query_key;
        let single_term_only = ctx.lattice.max_probe_len == 1;
        let mut nodes = Vec::new();
        for key in query.all_subsets_desc() {
            let too_long = ctx.lattice.max_probe_len > 0 && key.len() > ctx.lattice.max_probe_len;
            if too_long && key != *query {
                nodes.push(PlanNode {
                    key,
                    decision: PlanDecision::SkipTooLong,
                    est_hops: 0,
                    est_bytes: 0,
                    est_entries: 0,
                    priority: 0.0,
                    shed_prefix: 0,
                });
                continue;
            }
            let df_ub = ctx.df_upper_bound(&key);
            // A key longer than the strategy's indexable bound can neither be
            // indexed nor activated on demand (QDI rejects over-long keys), so
            // probing it buys nothing — not even usage statistics. This is also
            // the cost-based criterion for the paper's query-first probe: the
            // over-long query key is kept exactly when the strategy could still
            // index or activate it (unlike BestEffort, which always probes it).
            let useless = df_ub == 0                   // nothing can match
                || (single_term_only && key.len() > 1) // strategy has singles only
                || key.len() > ctx.hints.max_indexed_len; // cannot exist or activate
            if useless {
                nodes.push(PlanNode {
                    key,
                    decision: PlanDecision::Skip,
                    est_hops: 0,
                    est_bytes: 0,
                    est_entries: 0,
                    priority: 0.0,
                    shed_prefix: 0,
                });
                continue;
            }
            let (est_hops, est_bytes, est_entries) = ctx.annotate(&key);
            let priority = self.benefit(ctx, &key, est_entries.max(1)) / est_bytes.max(1) as f64;
            nodes.push(PlanNode {
                key,
                decision: PlanDecision::Probe,
                est_hops,
                est_bytes,
                est_entries,
                priority,
                shed_prefix: 0,
            });
        }
        // Under a budget, rank the whole schedule by benefit/cost so the budget
        // goes to the most valuable probes first. Without one, keep the lattice's
        // largest-first level order (within-level reordering only: same-length
        // keys can never prune each other, so it is semantics-preserving) to
        // retain the full power of domination pruning. Canonical order as the
        // tiebreak keeps plans deterministic.
        let budgeted = ctx.byte_budget.is_some() || ctx.hop_budget.is_some();
        nodes.sort_by(|a, b| {
            let level = if budgeted {
                std::cmp::Ordering::Equal
            } else {
                b.key.len().cmp(&a.key.len())
            };
            level
                .then(b.priority.total_cmp(&a.priority))
                .then(a.key.cmp(&b.key))
        });
        finalize(QueryPlan {
            query_key: Some(query.clone()),
            origin: ctx.origin,
            nodes,
            budget_policy: BudgetPolicy::Reserve,
            planner: self.label().to_string(),
            est_total_bytes: 0,
            est_total_hops: 0,
        })
    }
}

/// Replica-aware planner wrapper: delegates scheduling to an inner planner,
/// then adjusts the schedule for the replication subsystem
/// ([`alvisp2p_dht::replica`]).
///
/// For every scheduled probe whose key currently has live replicas, the
/// wrapper
///
/// 1. **routes by hop estimate to each holder** — the probe can be served by
///    any live holder, so its effective latency is the hop estimate to the
///    *nearest* one. The improvement raises the node's `priority` (under a
///    budget, Reserve-policy plans are re-ranked so cheap replicated probes
///    are admitted first); `est_hops`/`est_bytes` deliberately stay the inner
///    planner's worst-case bounds, so [`BudgetPolicy::Reserve`]'s
///    never-exceed-the-budget guarantee is untouched;
/// 2. **sheds load when every holder is saturated** — if all serving
///    candidates (primary + replicas) are above `saturation_threshold` EWMA
///    serve load, the node's [`PlanNode::shed_prefix`] is set, so the serving
///    peer degrades to a truncated-prefix answer instead of queueing the full
///    response (see [`GlobalIndex::probe_with`]). Disabled by default
///    (`shed_prefix == 0`).
///
/// Wrapping a planner on an overlay without replication (or before any key
/// has become hot) changes nothing but the plan's label.
#[derive(Clone, Debug)]
pub struct ReplicaAware {
    inner: std::sync::Arc<dyn Planner>,
    label: String,
    /// EWMA serve load (see [`alvisp2p_dht::replica::LoadTracker`]) above
    /// which a holder counts as saturated.
    pub saturation_threshold: f64,
    /// Prefix length served when all holders are saturated (`0` disables
    /// shedding).
    pub shed_prefix: usize,
}

impl ReplicaAware {
    /// Wraps `inner` with replica-aware routing (shedding disabled).
    pub fn new(inner: impl Planner + 'static) -> Self {
        Self::from_arc(std::sync::Arc::new(inner))
    }

    /// Wraps an already-shared planner.
    pub fn from_arc(inner: std::sync::Arc<dyn Planner>) -> Self {
        let label = format!("replica-aware+{}", inner.label());
        ReplicaAware {
            inner,
            label,
            saturation_threshold: f64::INFINITY,
            shed_prefix: 0,
        }
    }

    /// Enables load shedding: when every live holder of a key is above
    /// `saturation_threshold`, probes for it are degraded to the top-`prefix`
    /// entries.
    pub fn with_shedding(mut self, saturation_threshold: f64, prefix: usize) -> Self {
        self.saturation_threshold = saturation_threshold;
        self.shed_prefix = prefix;
        self
    }
}

impl Planner for ReplicaAware {
    fn label(&self) -> &str {
        &self.label
    }

    fn plan(&self, ctx: &PlanCtx<'_>) -> QueryPlan {
        let mut plan = self.inner.plan(ctx);
        plan.planner = self.label.clone();
        let mut reranked = false;
        for node in &mut plan.nodes {
            if node.decision != PlanDecision::Probe {
                continue;
            }
            let candidates = ctx.global.serving_candidates(&node.key);
            if candidates.len() > 1 {
                // Nearest-holder routing estimate: any live holder can serve.
                let mut best_hops = node.est_hops;
                for &holder in &candidates[1..] {
                    if let Ok(h) = ctx.global.estimate_hops_to_peer(ctx.origin, holder) {
                        best_hops = best_hops.min(h);
                    }
                }
                if best_hops < node.est_hops {
                    node.priority *= (node.est_hops + 1) as f64 / (best_hops + 1) as f64;
                    reranked = true;
                }
            }
            if self.shed_prefix > 0
                && !candidates.is_empty()
                && candidates
                    .iter()
                    .all(|&p| ctx.global.peer_probe_load(p) >= self.saturation_threshold)
            {
                node.shed_prefix = self.shed_prefix;
            }
        }
        // Under a budget a Reserve-policy inner planner ordered the schedule by
        // priority; re-rank with the replica-adjusted priorities (the same
        // comparator GreedyCost uses when budgeted). Cutoff planners keep
        // their fixed order — it is part of their semantics.
        let budgeted = ctx.byte_budget.is_some() || ctx.hop_budget.is_some();
        if reranked && budgeted && plan.budget_policy == BudgetPolicy::Reserve {
            plan.nodes
                .sort_by(|a, b| b.priority.total_cmp(&a.priority).then(a.key.cmp(&b.key)));
        }
        plan
    }
}

/// Sketch-aware planner wrapper: delegates scheduling to an inner planner,
/// then sharpens the schedule with the querier's cached per-key sketches
/// ([`crate::sketch::SketchCache`], via [`PlanCtx::sketches`]).
///
/// For every scheduled probe with fresh sketch evidence (the cached sketch's
/// version matches the key's current
/// [`GlobalIndex::publish_version`]), the wrapper
///
/// 1. **replaces independence estimates with real histogram mass** — a
///    single-term key's priority becomes its sketch's quantized score mass
///    per estimated byte; a multi-term key whose singleton sketches are all
///    fresh, complete and membership-bearing gets its intersection benefit
///    from the Bloom-filter intersection estimate instead of the
///    `N · Π df/N` independence model [`GreedyCost`] uses;
/// 2. **zeroes provably-empty intersections** — if any two of those singleton
///    sketches are *proven* disjoint ([`KeySketch::may_intersect`] is
///    `false`, sound because complete lists witness all matching documents),
///    the multi-term key cannot hold any document and its priority drops to
///    zero, so under a budget its slot goes to a probe that can still buy
///    something.
///
/// Like [`ReplicaAware`], the wrapper only ever adjusts `priority`:
/// decisions, `est_hops` and `est_bytes` stay the inner planner's, so
/// [`BudgetPolicy::Reserve`]'s never-exceed-the-budget guarantee and the
/// trace shape are untouched. Wrapping a planner with no cached sketches
/// (the [`crate::sketch::SketchPolicy::NoSketches`] default) changes nothing
/// but the plan's label. The *pre-send proof* that drops probes outright
/// lives in the executor ([`crate::exec::QueryStream`]), where the running
/// score floor is known — the planner seam only re-ranks.
#[derive(Clone, Debug)]
pub struct SketchAware {
    inner: std::sync::Arc<dyn Planner>,
    label: String,
}

impl SketchAware {
    /// Wraps `inner` with sketch-aware priority sharpening.
    pub fn new(inner: impl Planner + 'static) -> Self {
        Self::from_arc(std::sync::Arc::new(inner))
    }

    /// Wraps an already-shared planner.
    pub fn from_arc(inner: std::sync::Arc<dyn Planner>) -> Self {
        let label = format!("sketch-aware+{}", inner.label());
        SketchAware { inner, label }
    }

    /// The fresh singleton-subset sketches of `key`, provided **every**
    /// single-term subset has one that can witness membership (complete, and
    /// either empty or Bloom-bearing). `None` as soon as one is missing or
    /// stale — partial evidence proves nothing about an intersection.
    fn singleton_witnesses<'s>(
        ctx: &PlanCtx<'_>,
        cache: &'s SketchCache,
        key: &TermKey,
    ) -> Option<Vec<&'s KeySketch>> {
        key.term_ids()
            .iter()
            .map(|t| {
                let single = TermKey::from_term_ids([*t]);
                cache
                    .fresh(&single, ctx.global.publish_version(&single))
                    .filter(|s| s.is_complete() && (s.is_empty() || s.membership().is_some()))
            })
            .collect()
    }
}

impl Planner for SketchAware {
    fn label(&self) -> &str {
        &self.label
    }

    fn plan(&self, ctx: &PlanCtx<'_>) -> QueryPlan {
        let mut plan = self.inner.plan(ctx);
        plan.planner = self.label.clone();
        let Some(cache) = ctx.sketches.filter(|c| !c.is_empty()) else {
            return plan;
        };
        let mut reranked = false;
        for node in &mut plan.nodes {
            if node.decision != PlanDecision::Probe {
                continue;
            }
            let sharpened = if node.key.is_single() {
                cache
                    .fresh(&node.key, ctx.global.publish_version(&node.key))
                    .and_then(KeySketch::score_mass)
                    .map(|mass| mass / node.est_bytes.max(1) as f64)
            } else if let Some(singles) = Self::singleton_witnesses(ctx, cache, &node.key) {
                let disjoint = singles
                    .iter()
                    .enumerate()
                    .any(|(i, a)| singles[i + 1..].iter().any(|b| !a.may_intersect(b)));
                if disjoint {
                    // Proven empty: the probe cannot return any document.
                    Some(0.0)
                } else {
                    // Real intersection benefit: the tightest pairwise Bloom
                    // estimate times the summed per-document score mass of
                    // the member terms, per estimated byte.
                    let est_inter = singles
                        .iter()
                        .enumerate()
                        .flat_map(|(i, a)| {
                            singles[i + 1..]
                                .iter()
                                .filter_map(|b| a.estimate_intersection(b))
                        })
                        .fold(f64::INFINITY, f64::min);
                    let per_doc: Option<f64> = singles
                        .iter()
                        .map(|s| Some(s.score_mass()? / s.len().max(1) as f64))
                        .sum::<Option<f64>>();
                    match per_doc {
                        Some(per_doc) if est_inter.is_finite() => {
                            Some(est_inter * per_doc / node.est_bytes.max(1) as f64)
                        }
                        _ => None,
                    }
                }
            } else {
                None
            };
            if let Some(p) = sharpened {
                if p != node.priority {
                    node.priority = p;
                    reranked = true;
                }
            }
        }
        // Same re-rank discipline as ReplicaAware: only budgeted Reserve
        // plans are priority-ordered; Cutoff planners keep their fixed order.
        let budgeted = ctx.byte_budget.is_some() || ctx.hop_budget.is_some();
        if reranked && budgeted && plan.budget_policy == BudgetPolicy::Reserve {
            plan.nodes
                .sort_by(|a, b| b.priority.total_cmp(&a.priority).then(a.key.cmp(&b.key)));
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// Plan execution state machine
// ---------------------------------------------------------------------------

/// What [`PlanCursor::next_key`] decided.
#[derive(Clone, Debug, PartialEq)]
pub enum CursorStep {
    /// Send a probe for this key (then feed the result to [`PlanCursor::record`]).
    Probe(TermKey),
    /// The plan is exhausted (or the execution was stopped).
    Done,
}

/// The deterministic state machine that executes a [`QueryPlan`]: walks the
/// schedule, applies dynamic domination pruning, the probe cap and budget
/// admission, and accumulates the [`LatticeTrace`].
///
/// The cursor is transport-agnostic: callers alternate [`PlanCursor::next_key`]
/// (handing it the retrieval bytes spent so far) with the actual probe and
/// [`PlanCursor::record`]. This is what [`crate::exec::QueryStream`] and the
/// experiment harness share.
#[derive(Debug)]
pub struct PlanCursor {
    plan: QueryPlan,
    byte_budget: Option<u64>,
    hop_budget: Option<usize>,
    prune_below_truncated: bool,
    max_probes: usize,
    index: usize,
    excluders: Vec<TermKey>,
    result: LatticeResult,
    hops_spent: usize,
    budget_exhausted: bool,
    stopped: bool,
}

impl PlanCursor {
    /// Starts executing `plan` under the given lattice bounds and budgets.
    pub fn new(
        plan: QueryPlan,
        lattice: &LatticeConfig,
        byte_budget: Option<u64>,
        hop_budget: Option<usize>,
    ) -> Self {
        PlanCursor {
            plan,
            byte_budget,
            hop_budget,
            prune_below_truncated: lattice.prune_below_truncated,
            max_probes: lattice.max_probes,
            index: 0,
            excluders: Vec::new(),
            result: LatticeResult::default(),
            hops_spent: 0,
            budget_exhausted: false,
            stopped: false,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The node the cursor currently points at: after [`PlanCursor::next_key`]
    /// returned [`CursorStep::Probe`], this is that probe's plan node (whose
    /// result [`PlanCursor::record`] expects next) — executors read per-probe
    /// instructions like [`PlanNode::shed_prefix`] from it. `None` once the
    /// plan is exhausted.
    pub fn pending_node(&self) -> Option<&PlanNode> {
        self.plan.nodes.get(self.index)
    }

    /// Stops the execution: every remaining scheduled probe is recorded as
    /// skipped (used for observer-driven early termination).
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Overlay hops spent so far.
    pub fn hops_spent(&self) -> usize {
        self.hops_spent
    }

    /// Whether a budget has already truncated the plan.
    pub fn budget_exhausted(&self) -> bool {
        self.budget_exhausted
    }

    /// The retrieved `(key, postings)` pairs so far.
    pub fn retrieved(&self) -> &[(TermKey, TruncatedPostingList)] {
        &self.result.retrieved
    }

    /// Advances to the next probe that should actually be sent, recording every
    /// skipped node on the way. `spent_bytes` is the retrieval bytes this query
    /// has charged so far (live counter — budgets are enforced against it).
    pub fn next_key(&mut self, spent_bytes: u64) -> CursorStep {
        while self.index < self.plan.nodes.len() {
            let node = &self.plan.nodes[self.index];
            let outcome = match node.decision {
                PlanDecision::SkipTooLong => Some(NodeOutcome::TooLong),
                PlanDecision::Skip => Some(NodeOutcome::Skipped),
                PlanDecision::Probe => {
                    if self.stopped
                        || self.excluders.iter().any(|e| e.dominates(&node.key))
                        || self.result.trace.probes >= self.max_probes
                    {
                        Some(NodeOutcome::Skipped)
                    } else if !self.budget_admits(node, spent_bytes) {
                        // A budget withheld a probe that would otherwise have
                        // been sent: the plan was truly truncated.
                        self.budget_exhausted = true;
                        Some(NodeOutcome::Skipped)
                    } else {
                        None
                    }
                }
            };
            match outcome {
                Some(o) => {
                    let key = node.key.clone();
                    self.index += 1;
                    self.result.trace.nodes.push((key, o));
                }
                None => return CursorStep::Probe(node.key.clone()),
            }
        }
        CursorStep::Done
    }

    fn budget_admits(&self, node: &PlanNode, spent_bytes: u64) -> bool {
        match self.plan.budget_policy {
            BudgetPolicy::Cutoff => {
                self.byte_budget.is_none_or(|b| spent_bytes < b)
                    && self.hop_budget.is_none_or(|b| self.hops_spent < b)
            }
            BudgetPolicy::Reserve => {
                self.byte_budget
                    .is_none_or(|b| spent_bytes.saturating_add(node.est_bytes) <= b)
                    && self
                        .hop_budget
                        .is_none_or(|b| self.hops_spent + node.est_hops <= b)
            }
        }
    }

    /// Records the result of the probe [`PlanCursor::next_key`] handed out and
    /// returns the outcome entered into the trace.
    pub fn record(&mut self, probe: ProbeResult) -> NodeOutcome {
        let node = &self.plan.nodes[self.index];
        debug_assert_eq!(probe.key, node.key);
        self.index += 1;
        self.result.trace.probes += 1;
        self.result.trace.hops += probe.hops;
        self.result.trace.skipped_blocks += probe.skipped_blocks;
        self.result.trace.elided_bytes += probe.elided_bytes as u64;
        self.hops_spent += probe.hops;
        let key = probe.key;
        let outcome = match probe.postings {
            Some(list) => {
                let truncated = list.is_truncated();
                if !truncated || self.prune_below_truncated {
                    self.excluders.push(key.clone());
                }
                self.result.retrieved.push((key.clone(), list));
                NodeOutcome::Found { truncated }
            }
            None => NodeOutcome::Missing,
        };
        self.result.trace.nodes.push((key, outcome.clone()));
        outcome
    }

    /// Records a probe whose every attempt failed (see [`crate::fault`]): the
    /// node enters the trace as [`NodeOutcome::Failed`] and the hops its
    /// attempts spent are charged against the hop budget, but the key is
    /// **not** pushed onto the excluder set — so [`PlanCursor::next_key`]'s
    /// runtime domination check still hands out the failed key's subset keys,
    /// which is exactly the degraded-substitution behaviour the lattice gives
    /// for free.
    pub fn record_failure(&mut self, key: TermKey, cause: crate::fault::FailureCause, hops: usize) {
        let node = &self.plan.nodes[self.index];
        debug_assert_eq!(key, node.key);
        self.index += 1;
        self.result.trace.probes += 1;
        self.result.trace.hops += hops;
        self.hops_spent += hops;
        self.result
            .trace
            .nodes
            .push((key, NodeOutcome::Failed { cause }));
    }

    /// Finishes the execution: drains any remaining nodes as skipped and returns
    /// the accumulated result plus whether a budget truncated the plan.
    pub fn finish(mut self) -> (LatticeResult, bool) {
        self.stopped = true;
        let step = self.next_key(u64::MAX);
        debug_assert!(matches!(step, CursorStep::Done));
        (self.result, self.budget_exhausted)
    }

    /// The trace accumulated so far.
    pub fn trace(&self) -> &LatticeTrace {
        &self.result.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::{ScoredRef, TruncatedPostingList};
    use alvisp2p_dht::DhtConfig;
    use alvisp2p_textindex::{CollectionStats, DocId};
    use std::collections::BTreeMap;

    fn stats(dfs: &[(&str, u64)]) -> GlobalRankingStats {
        let fragment = CollectionStats {
            doc_count: 100,
            total_terms: 10_000,
            doc_frequencies: dfs
                .iter()
                .map(|(t, d)| (t.to_string(), *d))
                .collect::<BTreeMap<String, u64>>(),
        };
        GlobalRankingStats::aggregate([&fragment])
    }

    fn ctx<'a>(
        query: &'a TermKey,
        ranking: &'a GlobalRankingStats,
        global: &'a GlobalIndex,
        lattice: LatticeConfig,
        hints: PlanHints,
    ) -> PlanCtx<'a> {
        PlanCtx {
            query_key: query,
            origin: 0,
            lattice,
            hints,
            capacity: 10,
            ranking,
            global,
            byte_budget: None,
            hop_budget: None,
            sketches: None,
        }
    }

    #[test]
    fn best_effort_schedules_the_full_lattice_in_order() {
        let query = TermKey::new(["a", "b", "c"]);
        let ranking = stats(&[("a", 3), ("b", 4), ("c", 4)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        let plan = BestEffort.plan(&ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig::default(),
            PlanHints::default(),
        ));
        assert_eq!(plan.nodes.len(), 7);
        assert_eq!(plan.scheduled_probes(), 7);
        assert_eq!(plan.budget_policy, BudgetPolicy::Cutoff);
        // Exact lattice order: abc, ab, ac, bc, a, b, c.
        let order: Vec<String> = plan.nodes.iter().map(|n| n.key.canonical()).collect();
        assert_eq!(order, vec!["a+b+c", "a+b", "a+c", "b+c", "a", "b", "c"]);
        assert!(plan.est_total_bytes > 0);
    }

    #[test]
    fn best_effort_respects_single_term_and_length_bounds() {
        let query = TermKey::new(["a", "b", "c", "d"]);
        let ranking = stats(&[("a", 3), ("b", 4), ("c", 4), ("d", 1)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        // max_probe_len = 1: only the singles are probed, the rest planned-skipped.
        let plan = BestEffort.plan(&ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig {
                max_probe_len: 1,
                ..Default::default()
            },
            PlanHints::default(),
        ));
        assert_eq!(plan.scheduled_probes(), 4);
        for n in &plan.nodes {
            match n.key.len() {
                1 => assert_eq!(n.decision, PlanDecision::Probe),
                // The query itself is skipped (not TooLong) per PR 1 semantics.
                4 => assert_eq!(n.decision, PlanDecision::Skip),
                _ => assert_eq!(n.decision, PlanDecision::SkipTooLong),
            }
        }
        // max_probe_len = 2: the query is still probed first despite its length.
        let plan = BestEffort.plan(&ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig {
                max_probe_len: 2,
                ..Default::default()
            },
            PlanHints::default(),
        ));
        assert_eq!(plan.nodes[0].key, query);
        assert_eq!(plan.nodes[0].decision, PlanDecision::Probe);
        let too_long = plan
            .nodes
            .iter()
            .filter(|n| n.decision == PlanDecision::SkipTooLong)
            .count();
        assert_eq!(too_long, 4); // the four 3-term subsets
    }

    #[test]
    fn greedy_cost_drops_zero_df_and_unindexable_probes() {
        let query = TermKey::new(["a", "b", "ghost"]);
        let ranking = stats(&[("a", 50), ("b", 2)]); // "ghost" has df 0
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        let plan = GreedyCost::default().plan(&ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig::default(),
            PlanHints {
                max_indexed_len: 2,
                probe_unindexed: false,
                multi_term_prior: 0.5,
            },
        ));
        // Every node containing "ghost" is skipped; the 3-term query is over the
        // indexable length and the strategy is not query-driven, so it is skipped
        // too. Remaining probes: ab, a, b.
        let probed: Vec<String> = plan.probes().map(|n| n.key.canonical()).collect();
        assert_eq!(probed, vec!["a+b", "a", "b"]);
        // The full lattice is still traced.
        assert_eq!(plan.nodes.len(), 7);
        assert_eq!(plan.budget_policy, BudgetPolicy::Reserve);
        // Every scheduled probe is a lattice subset; no duplicates.
        let mut seen = std::collections::BTreeSet::new();
        for n in plan.probes() {
            assert!(n.key.is_subset_of(&query));
            assert!(seen.insert(n.key.clone()), "duplicate probe {}", n.key);
        }
    }

    #[test]
    fn greedy_cost_keeps_activatable_query_probes_for_query_driven_strategies() {
        let query = TermKey::new(["a", "b", "c"]);
        let ranking = stats(&[("a", 50), ("b", 2), ("c", 7)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        // The query exceeds the probe-length bound, but a query-driven strategy
        // could still activate it on demand (max_indexed_len >= 3): the probe
        // must be kept — it feeds the responsible peer's usage statistics.
        let tight_lattice = LatticeConfig {
            max_probe_len: 2,
            ..Default::default()
        };
        let plan = GreedyCost::default().plan(&ctx(
            &query,
            &ranking,
            &global,
            tight_lattice.clone(),
            PlanHints {
                max_indexed_len: 3,
                probe_unindexed: true, // QDI: probes feed activation statistics
                multi_term_prior: 0.3,
            },
        ));
        assert!(plan.probes().any(|n| n.key == query));
        // Once the strategy cannot index or activate the key at all, probing it
        // buys nothing and it is dropped (unlike BestEffort's query-first probe).
        let plan = GreedyCost::default().plan(&ctx(
            &query,
            &ranking,
            &global,
            tight_lattice,
            PlanHints {
                max_indexed_len: 2,
                probe_unindexed: true,
                multi_term_prior: 0.3,
            },
        ));
        assert!(plan.probes().all(|n| n.key != query));
        assert_eq!(
            plan.nodes.iter().find(|n| n.key == query).unwrap().decision,
            PlanDecision::Skip
        );
    }

    #[test]
    fn greedy_cost_orders_within_levels_by_priority() {
        let query = TermKey::new(["rare", "common"]);
        // Similar posting sizes after truncation (9 vs 10 entries at capacity 10),
        // so the rare term's far higher idf dominates the benefit/cost ratio.
        let ranking = stats(&[("rare", 9), ("common", 90)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        let plan = GreedyCost::default().plan(&ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig::default(),
            PlanHints::default(),
        ));
        // Levels stay largest-first; within the singles, the rare (cheap, high-idf)
        // term outranks the common one.
        let order: Vec<String> = plan.probes().map(|n| n.key.canonical()).collect();
        assert_eq!(order[0], "common+rare");
        assert_eq!(order[1], "rare");
        assert_eq!(order[2], "common");
        for pair in plan.nodes.windows(2) {
            assert!(pair[0].key.len() >= pair[1].key.len());
        }
    }

    fn found(key: &TermKey, docs: u32, capacity: usize) -> ProbeResult {
        ProbeResult {
            key: key.clone(),
            postings: Some(TruncatedPostingList::from_refs(
                (0..docs).map(|i| ScoredRef {
                    doc: DocId::new(0, i),
                    score: f64::from(docs - i),
                }),
                capacity,
            )),
            hops: 2,
            responsible: 0,
            served_by: 0,
            replica_set: Vec::new(),
            skipped: false,
            skipped_blocks: 0,
            elided_bytes: 0,
        }
    }

    #[test]
    fn cursor_applies_domination_pruning_like_explore_lattice() {
        let query = TermKey::new(["a", "b", "c"]);
        let ranking = stats(&[("a", 3), ("b", 4), ("c", 4)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        let plan = BestEffort.plan(&ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig::default(),
            PlanHints::default(),
        ));
        let mut cursor = PlanCursor::new(plan, &LatticeConfig::default(), None, None);
        // Figure 1: bc found truncated, a found complete, everything else missing.
        let mut sent = Vec::new();
        loop {
            match cursor.next_key(0) {
                CursorStep::Done => break,
                CursorStep::Probe(key) => {
                    sent.push(key.canonical());
                    if key == TermKey::new(["b", "c"]) {
                        cursor.record(found(&key, 10, 5));
                    } else if key == TermKey::single("a") {
                        cursor.record(found(&key, 3, 5));
                    } else {
                        cursor.record(ProbeResult {
                            key: key.clone(),
                            postings: None,
                            hops: 2,
                            responsible: 0,
                            served_by: 0,
                            replica_set: Vec::new(),
                            skipped: false,
                            skipped_blocks: 0,
                            elided_bytes: 0,
                        });
                    }
                }
            }
        }
        assert_eq!(sent, vec!["a+b+c", "a+b", "a+c", "b+c", "a"]);
        let (result, exhausted) = cursor.finish();
        assert!(!exhausted);
        let skipped: Vec<String> = result
            .trace
            .skipped_keys()
            .iter()
            .map(|k| k.canonical())
            .collect();
        assert_eq!(skipped, vec!["b", "c"]);
        assert_eq!(result.trace.probes, 5);
        assert_eq!(result.trace.hops, 10);
    }

    #[test]
    fn reserve_policy_admits_only_affordable_probes() {
        let query = TermKey::new(["a", "b"]);
        let ranking = stats(&[("a", 8), ("b", 8)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        let plan = GreedyCost::default().plan(&ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig::default(),
            PlanHints::default(),
        ));
        let max_est = plan.probes().map(|n| n.est_bytes).max().unwrap();
        // A budget below every estimate admits nothing and marks truncation.
        let mut cursor = PlanCursor::new(plan.clone(), &LatticeConfig::default(), Some(1), None);
        assert_eq!(cursor.next_key(0), CursorStep::Done);
        let (result, exhausted) = cursor.finish();
        assert!(exhausted);
        assert_eq!(result.trace.probes, 0);
        // A budget covering the worst single probe admits at least one.
        let mut cursor = PlanCursor::new(plan, &LatticeConfig::default(), Some(max_est), None);
        assert!(matches!(cursor.next_key(0), CursorStep::Probe(_)));
    }

    #[test]
    fn exhausting_the_plan_exactly_is_not_budget_truncation() {
        let query = TermKey::single("only");
        let ranking = stats(&[("only", 4)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        let plan = BestEffort.plan(&ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig::default(),
            PlanHints::default(),
        ));
        // Budget exactly equal to the spend after the only probe: the cutoff check
        // never blocks a remaining probe, so the plan is not "truncated".
        let mut cursor = PlanCursor::new(plan, &LatticeConfig::default(), Some(500), None);
        let CursorStep::Probe(key) = cursor.next_key(0) else {
            panic!("first probe admitted")
        };
        cursor.record(found(&key, 4, 10));
        assert_eq!(cursor.next_key(500), CursorStep::Done);
        let (_, exhausted) = cursor.finish();
        assert!(!exhausted);
    }

    /// A 32-peer index with hot-key replication where the single-term key
    /// `term` has been probed hot (live replica holders exist).
    fn replicated_index(term: &str) -> (GlobalIndex, TermKey) {
        let dht_config = DhtConfig {
            replication: std::sync::Arc::new(alvisp2p_dht::HotKeyReplication::new(2)),
            ..Default::default()
        };
        let mut global = GlobalIndex::new(dht_config, 1, 32);
        let key = TermKey::single(term);
        let delta = TruncatedPostingList::from_refs(
            (0..5u32).map(|i| ScoredRef {
                doc: DocId::new(0, i),
                score: f64::from(5 - i),
            }),
            10,
        );
        global.publish_postings(0, &key, &delta, 10).unwrap();
        for seq in 0..24 {
            global.probe(0, &key, seq, 10, None).unwrap();
        }
        assert!(!global.replica_holders_of(&key).is_empty());
        (global, key)
    }

    #[test]
    fn replica_aware_is_a_pure_relabel_without_replicas() {
        let query = TermKey::new(["a", "b"]);
        let ranking = stats(&[("a", 3), ("b", 4)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        let c = ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig::default(),
            PlanHints::default(),
        );
        let plain = GreedyCost::default().plan(&c);
        let wrapped = ReplicaAware::new(GreedyCost::default()).plan(&c);
        assert_eq!(wrapped.planner, "replica-aware+greedy-cost");
        assert_eq!(plain.nodes.len(), wrapped.nodes.len());
        for (a, b) in plain.nodes.iter().zip(&wrapped.nodes) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.decision, b.decision);
            assert_eq!(a.priority, b.priority);
            assert_eq!(a.shed_prefix, 0);
            assert_eq!(b.shed_prefix, 0);
        }
    }

    #[test]
    fn replica_aware_boosts_replicated_keys_but_keeps_budget_bounds() {
        let (global, hot) = replicated_index("rare");
        let query = TermKey::new(["rare", "common"]);
        let ranking = stats(&[("rare", 9), ("common", 90)]);
        // Plan from a replica holder: the nearest holder is zero hops away,
        // while the primary (who the inner planner costs against) is not.
        let origin = global.replica_holders_of(&hot)[0];
        let c = PlanCtx {
            query_key: &query,
            origin,
            lattice: LatticeConfig::default(),
            hints: PlanHints::default(),
            capacity: 10,
            ranking: &ranking,
            global: &global,
            byte_budget: None,
            hop_budget: None,
            sketches: None,
        };
        let plain = GreedyCost::default().plan(&c);
        let wrapped = ReplicaAware::new(GreedyCost::default()).plan(&c);
        let node = |plan: &QueryPlan, key: &TermKey| {
            plan.nodes.iter().find(|n| &n.key == key).cloned().unwrap()
        };
        let common = TermKey::single("common");
        // The replicated key's priority rises; the unreplicated one's does not.
        assert!(node(&wrapped, &hot).priority > node(&plain, &hot).priority);
        assert_eq!(
            node(&wrapped, &common).priority,
            node(&plain, &common).priority
        );
        // Reserve admission bounds are untouched: est_hops/est_bytes stay the
        // inner planner's worst-case estimates, per node and in total.
        for (a, b) in plain.nodes.iter().zip(&wrapped.nodes) {
            assert_eq!(a.est_hops, b.est_hops);
            assert_eq!(a.est_bytes, b.est_bytes);
        }
        assert_eq!(plain.est_total_bytes, wrapped.est_total_bytes);
        assert_eq!(plain.est_total_hops, wrapped.est_total_hops);
    }

    #[test]
    fn sketch_aware_is_a_pure_relabel_without_sketches() {
        let query = TermKey::new(["a", "b"]);
        let ranking = stats(&[("a", 3), ("b", 4)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        let empty_cache = crate::sketch::SketchCache::new();
        for cache in [None, Some(&empty_cache)] {
            let mut c = ctx(
                &query,
                &ranking,
                &global,
                LatticeConfig::default(),
                PlanHints::default(),
            );
            c.sketches = cache;
            let plain = GreedyCost::default().plan(&c);
            let wrapped = SketchAware::new(GreedyCost::default()).plan(&c);
            assert_eq!(wrapped.planner, "sketch-aware+greedy-cost");
            assert_eq!(plain.nodes.len(), wrapped.nodes.len());
            for (a, b) in plain.nodes.iter().zip(&wrapped.nodes) {
                assert_eq!(a.key, b.key);
                assert_eq!(a.decision, b.decision);
                assert_eq!(a.priority, b.priority);
                assert_eq!(a.est_hops, b.est_hops);
                assert_eq!(a.est_bytes, b.est_bytes);
            }
        }
    }

    /// A cache with fresh, complete singleton sketches for `a` (docs 0..4 of
    /// peer 1) and `b` (given docs), built at the keys' current (never
    /// published → 0) versions.
    fn sketch_cache_for(b_docs: &[DocId]) -> crate::sketch::SketchCache {
        use crate::sketch::{KeySketch, SketchKinds};
        let mut cache = crate::sketch::SketchCache::new();
        let a_list = TruncatedPostingList::from_refs(
            (0..4u32).map(|i| ScoredRef {
                doc: DocId::new(1, i),
                score: f64::from(4 - i),
            }),
            10,
        );
        let b_list = TruncatedPostingList::from_refs(
            b_docs.iter().enumerate().map(|(i, d)| ScoredRef {
                doc: *d,
                score: (b_docs.len() - i) as f64 * 0.5,
            }),
            10,
        );
        cache.insert(
            TermKey::single("a"),
            KeySketch::build(0, &a_list, SketchKinds::all()),
        );
        cache.insert(
            TermKey::single("b"),
            KeySketch::build(0, &b_list, SketchKinds::all()),
        );
        cache
    }

    #[test]
    fn sketch_aware_zeroes_provably_empty_intersections() {
        let query = TermKey::new(["a", "b"]);
        let ranking = stats(&[("a", 4), ("b", 4)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        // b's docs live on peer 2: provably disjoint from a's (peer 1).
        let disjoint: Vec<DocId> = (0..4u32).map(|i| DocId::new(2, i)).collect();
        let cache = sketch_cache_for(&disjoint);
        let mut c = ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig::default(),
            PlanHints::default(),
        );
        c.sketches = Some(&cache);
        let plan = SketchAware::new(GreedyCost::default()).plan(&c);
        let pair = plan.nodes.iter().find(|n| n.key == query).unwrap();
        assert_eq!(pair.priority, 0.0, "proven-empty intersection ranks last");
        // The probe is still scheduled (the trace shape never changes) and its
        // admission bounds are untouched.
        assert_eq!(pair.decision, PlanDecision::Probe);
        assert!(pair.est_bytes > 0);
        // Overlapping doc sets are not zeroed.
        let overlapping: Vec<DocId> = (2..6u32).map(|i| DocId::new(1, i)).collect();
        let cache = sketch_cache_for(&overlapping);
        c.sketches = Some(&cache);
        let plan = SketchAware::new(GreedyCost::default()).plan(&c);
        let pair = plan.nodes.iter().find(|n| n.key == query).unwrap();
        assert!(pair.priority > 0.0);
    }

    #[test]
    fn sketch_aware_reranks_budgeted_reserve_plans() {
        let query = TermKey::new(["a", "b"]);
        let ranking = stats(&[("a", 4), ("b", 4)]);
        let global = GlobalIndex::new(DhtConfig::default(), 1, 8);
        let disjoint: Vec<DocId> = (0..4u32).map(|i| DocId::new(2, i)).collect();
        let cache = sketch_cache_for(&disjoint);
        let mut c = ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig::default(),
            PlanHints::default(),
        );
        c.byte_budget = Some(10_000);
        c.sketches = Some(&cache);
        let plan = SketchAware::new(GreedyCost::default()).plan(&c);
        // Under a budget the zeroed pair drops behind the single-term probes,
        // whose priorities now carry real sketch mass.
        let probe_order: Vec<String> = plan.probes().map(|n| n.key.canonical()).collect();
        assert_eq!(probe_order.last().unwrap(), "a+b");
        assert!(plan.probes().take(2).all(|n| n.priority > 0.0));
        // Stale sketches are ignored: at a bumped publish version the wrapper
        // keeps the inner plan untouched.
        let mut bumped = GlobalIndex::new(DhtConfig::default(), 1, 8);
        let delta = TruncatedPostingList::from_refs(
            [ScoredRef {
                doc: DocId::new(1, 0),
                score: 1.0,
            }],
            10,
        );
        bumped
            .publish_postings(0, &TermKey::single("a"), &delta, 10)
            .unwrap();
        bumped
            .publish_postings(0, &TermKey::single("b"), &delta, 10)
            .unwrap();
        c.global = &bumped;
        let plain = GreedyCost::default().plan(&c);
        let wrapped = SketchAware::new(GreedyCost::default()).plan(&c);
        for (a, b) in plain.nodes.iter().zip(&wrapped.nodes) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.priority, b.priority, "stale evidence must not rerank");
        }
    }

    #[test]
    fn replica_aware_sheds_only_when_every_holder_is_saturated() {
        let (global, hot) = replicated_index("rare");
        let query = TermKey::new(["rare", "common"]);
        let ranking = stats(&[("rare", 9), ("common", 90)]);
        let c = ctx(
            &query,
            &ranking,
            &global,
            LatticeConfig::default(),
            PlanHints::default(),
        );
        // Threshold 0: every live peer counts as saturated, so probes degrade
        // to the top-3 prefix.
        let shedding = ReplicaAware::new(BestEffort).with_shedding(0.0, 3);
        let plan = shedding.plan(&c);
        let hot_node = plan.nodes.iter().find(|n| n.key == hot).unwrap();
        assert_eq!(hot_node.shed_prefix, 3);
        // Unreachable threshold: no holder is saturated, nothing is shed.
        let calm = ReplicaAware::new(BestEffort).with_shedding(f64::INFINITY, 3);
        assert!(calm.plan(&c).nodes.iter().all(|n| n.shed_prefix == 0));
        // shed_prefix = 0 disables shedding regardless of the threshold.
        let disabled = ReplicaAware::new(BestEffort).with_shedding(0.0, 0);
        assert!(disabled.plan(&c).nodes.iter().all(|n| n.shed_prefix == 0));
    }
}
