//! The posting-list / key-frame wire codec: the bytes the simulator charges
//! are the bytes this module actually produces.
//!
//! Until this module existed, [`alvisp2p_netsim::WireSize`] for posting lists
//! was hand-written arithmetic (a claimed "quantised score" of 4 bytes that the
//! serde layer shipped as a full `f64`). The paper's headline guarantee is
//! about **bytes on the wire**, so the wire layer is now real: a
//! [`crate::posting::TruncatedPostingList`] is encoded into score-descending
//! blocks of delta-varint document ids with scores quantized to `u16`
//! fixed-point, and `WireSize` for every retrieval frame is defined as the
//! exact length of that encoding.
//!
//! # List frame layout (pinned by a byte-level golden test)
//!
//! ```text
//! version          u8       == FORMAT_VERSION
//! full_df          varint   true document frequency at the responsible peer
//! capacity         varint   truncation capacity of the stored list
//! total_refs       varint   references stored at the responsible peer
//! kept_refs        varint   references actually encoded (≤ total_refs; the
//!                           difference is what a score floor elided)
//! -- present only when kept_refs > 0 --
//! score_hi         f32 LE   quantization range upper end (best score)
//! score_lo         f32 LE   quantization range lower end (worst kept score)
//! n_blocks         varint
//! per block (blocks are in descending score order):
//!   max_q          u16 LE   quantized score of the block's best entry
//!   n_entries      varint
//!   payload_len    varint   byte length of the payload (the skip offset)
//!   payload, entries in descending score order:
//!     first entry: varint peer, varint local, u16 q
//!     later ones:  zigzag-varint Δpeer, zigzag-varint Δlocal, u16 q
//! checksum         u32 LE   [`frame_checksum`] over every preceding byte
//! ```
//!
//! # Frame integrity
//!
//! Every list and key frame ends in a 4-byte checksum trailer
//! ([`frame_checksum`] over the frame body). Decoders verify the trailer
//! before parsing a single body byte, so a corrupted frame — any single-bit
//! flip is guaranteed to be caught — surfaces as a typed
//! [`CodecError::ChecksumMismatch`] instead of a silently wrong (or
//! panicking) decode. The probe path maps that error onto the retryable
//! [`crate::fault::ProbeOutcome::Corrupt`].
//!
//! Because blocks are score-descending and each block leads with `max_q` and
//! its payload length, a decoder given a score floor stops at the first block
//! whose `max_q` falls below the floor **without touching the remaining
//! bytes** — the executor-driven early termination of the probe path.
//!
//! # Quantization
//!
//! Scores are mapped affinely from `[score_lo, score_hi]` onto `0..=65535`.
//! The absolute error of a decoded score is at most one quantization step,
//! `(score_hi - score_lo) / 65535` (see [`quantization_step`]); quantization
//! is monotone, so encoding never introduces a rank inversion between entries
//! whose scores differ by more than one step (entries closer than that may
//! collapse into a tie, which the decoder breaks by ascending document id —
//! the same tie-break the list itself uses). Both properties are proptested
//! in `tests/proptest_codec.rs`.
//!
//! # Score floors
//!
//! [`encode_list`] takes an optional `score_floor`: entries scoring strictly
//! below the floor are elided at the *source*, so they never cross the wire.
//! The decoded list reports `full_df` minus the elided count, which preserves
//! the original truncation status exactly: a complete list stays complete
//! (keeping the query lattice's domination pruning byte-for-byte identical
//! with and without thresholding) and a truncated list stays truncated.

use crate::key::TermKey;
use crate::posting::{ScoredRef, TruncatedPostingList};
use alvisp2p_textindex::DocId;
use std::fmt;

/// Version byte leading every list frame. Version 2 added the checksum
/// trailer ending every list and key frame.
pub const FORMAT_VERSION: u8 = 2;

/// Length of the integrity trailer ending every list and key frame: the
/// [`frame_checksum`] of the frame body as a `u32` LE.
pub const FRAME_TRAILER_LEN: usize = 4;

/// Entries per block. Small enough that a floor rarely pays for more than a
/// fraction of a block, large enough that per-block headers stay under half a
/// byte per entry.
pub const BLOCK_ENTRIES: usize = 16;

/// Number of quantization levels minus one (`u16` fixed-point).
pub const SCORE_LEVELS: u16 = u16::MAX;

/// Worst-case encoded size of one entry: two 32-bit varints (5 bytes each,
/// absolute or zigzag delta) plus the 2-byte quantized score.
pub const MAX_ENTRY_LEN: usize = 5 + 5 + 2;

/// A frame the decoder rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// A structurally malformed frame (truncated buffer, bad version,
    /// overflowing varint, inconsistent headers).
    Malformed(String),
    /// The frame's checksum trailer disagrees with its body: the bytes were
    /// corrupted in flight (or at rest). The probe path treats this as the
    /// retryable [`crate::fault::ProbeOutcome::Corrupt`].
    ChecksumMismatch {
        /// The checksum carried in the frame's trailer.
        stored: u32,
        /// The checksum recomputed over the received frame body.
        computed: u32,
    },
}

impl CodecError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        CodecError::Malformed(msg.into())
    }

    /// Whether this error means the frame failed integrity verification (as
    /// opposed to being structurally malformed).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, CodecError::ChecksumMismatch { .. })
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Malformed(msg) => write!(f, "codec error: {msg}"),
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "codec error: frame checksum mismatch (stored {stored:#010x}, \
                 computed {computed:#010x})"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// Frame integrity trailer
// ---------------------------------------------------------------------------

/// Modulus of the [`frame_checksum`] running sums (the largest prime below
/// `2^16`, as in Adler-32).
const CHECKSUM_MOD: u32 = 65_521;

/// Bytes between modular reductions; keeps the deferred sums below `u32`
/// overflow for any byte values.
const CHECKSUM_BATCH: usize = 3_800;

/// The frame integrity checksum (Adler-32). Both running sums enter the
/// result, and a single-bit flip changes the low sum by a nonzero delta
/// strictly smaller than the modulus, so **any single-bit corruption of a
/// frame body is guaranteed to be detected** — the property the bit-flip
/// fault-injection tests rely on.
pub fn frame_checksum(bytes: &[u8]) -> u32 {
    let mut s1: u32 = 1;
    let mut s2: u32 = 0;
    for chunk in bytes.chunks(CHECKSUM_BATCH) {
        for &b in chunk {
            s1 += u32::from(b);
            s2 += s1;
        }
        s1 %= CHECKSUM_MOD;
        s2 %= CHECKSUM_MOD;
    }
    (s2 << 16) | s1
}

/// Appends the [`frame_checksum`] trailer over `out[start..]`.
fn append_trailer(out: &mut Vec<u8>, start: usize) {
    let sum = frame_checksum(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Splits a frame into its body after verifying the checksum trailer.
fn verify_trailer(buf: &[u8]) -> Result<&[u8], CodecError> {
    if buf.len() < FRAME_TRAILER_LEN {
        return Err(CodecError::new("frame shorter than its checksum trailer"));
    }
    let (body, trailer) = buf.split_at(buf.len() - FRAME_TRAILER_LEN);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    let computed = frame_checksum(body);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// varint / zigzag primitives
// ---------------------------------------------------------------------------

/// Appends `v` as an LEB128 varint.
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Encoded length of `v` as an LEB128 varint.
pub fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Reads an LEB128 varint at `*pos`, advancing it.
pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| CodecError::new("truncated varint"))?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(CodecError::new("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed delta onto an unsigned varint-friendly value.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(buf: &[u8], pos: &mut usize) -> Result<u16, CodecError> {
    let bytes: [u8; 2] = buf
        .get(*pos..*pos + 2)
        .ok_or_else(|| CodecError::new("truncated u16"))?
        .try_into()
        .expect("2-byte slice");
    *pos += 2;
    Ok(u16::from_le_bytes(bytes))
}

pub(crate) fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_f32(buf: &[u8], pos: &mut usize) -> Result<f32, CodecError> {
    let bytes: [u8; 4] = buf
        .get(*pos..*pos + 4)
        .ok_or_else(|| CodecError::new("truncated f32"))?
        .try_into()
        .expect("4-byte slice");
    *pos += 4;
    Ok(f32::from_le_bytes(bytes))
}

// ---------------------------------------------------------------------------
// Score quantization
// ---------------------------------------------------------------------------

/// Maps `score` onto the `u16` fixed-point grid over `[lo, hi]`.
fn quantize(score: f64, lo: f64, hi: f64) -> u16 {
    if hi <= lo {
        return 0;
    }
    let unit = ((score - lo) / (hi - lo)).clamp(0.0, 1.0);
    (unit * f64::from(SCORE_LEVELS)).round() as u16
}

/// Maps a quantized score back into `[lo, hi]`.
pub fn dequantize(q: u16, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    lo + f64::from(q) / f64::from(SCORE_LEVELS) * (hi - lo)
}

/// The quantization grid step over `[lo, hi]`: the absolute score error of a
/// decoded entry is at most this.
pub fn quantization_step(lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        0.0
    } else {
        (hi - lo) / f64::from(SCORE_LEVELS)
    }
}

// ---------------------------------------------------------------------------
// Entry / key frames
// ---------------------------------------------------------------------------

/// Encoded size of one stand-alone [`ScoredRef`]: two absolute doc-id varints
/// plus the 2-byte quantized score. Within a list frame later entries are
/// delta-coded and usually smaller; this is the size of an entry shipped on
/// its own (and the meaning of `ScoredRef::wire_size`).
pub fn entry_wire_size(r: &ScoredRef) -> usize {
    varint_len(u64::from(r.doc.peer)) + varint_len(u64::from(r.doc.local)) + 2
}

/// Appends the key frame: `varint n_terms`, then per term `varint len` +
/// UTF-8 bytes, ending in the [`frame_checksum`] trailer over the appended
/// body. `TermKey::wire_size` equals this frame's length (cached at key
/// construction).
pub fn encode_key(out: &mut Vec<u8>, key: &TermKey) {
    let start = out.len();
    let terms = key.terms();
    put_varint(out, terms.len() as u64);
    for term in terms {
        put_varint(out, term.len() as u64);
        out.extend_from_slice(term.as_bytes());
    }
    append_trailer(out, start);
}

/// Length of the [`encode_key`] frame (checksum trailer included),
/// computable from term lengths alone.
pub fn key_frame_len(term_lens: impl IntoIterator<Item = usize>) -> usize {
    let mut n = 0usize;
    let mut total = 0usize;
    for len in term_lens {
        n += 1;
        total += varint_len(len as u64) + len;
    }
    varint_len(n as u64) + total + FRAME_TRAILER_LEN
}

/// Decodes an [`encode_key`] frame back into its terms, verifying the
/// checksum trailer first.
pub fn decode_key(frame: &[u8]) -> Result<Vec<String>, CodecError> {
    let buf = verify_trailer(frame)?;
    let mut pos = 0usize;
    let n = get_varint(buf, &mut pos)? as usize;
    let mut terms = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let len = get_varint(buf, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|end| *end <= buf.len())
            .ok_or_else(|| CodecError::new("truncated key term"))?;
        let bytes = &buf[pos..end];
        pos = end;
        terms.push(
            std::str::from_utf8(bytes)
                .map_err(|_| CodecError::new("key term is not UTF-8"))?
                .to_string(),
        );
    }
    if pos != buf.len() {
        return Err(CodecError::new("trailing bytes after key frame"));
    }
    Ok(terms)
}

// ---------------------------------------------------------------------------
// List frames
// ---------------------------------------------------------------------------

/// Encoded size of one in-list entry given the previous entry (`None` for the
/// first entry of a block, which is coded with absolute varints).
fn in_list_entry_len(prev: Option<DocId>, doc: DocId) -> usize {
    match prev {
        None => varint_len(u64::from(doc.peer)) + varint_len(u64::from(doc.local)) + 2,
        Some(p) => {
            varint_len(zigzag(i64::from(doc.peer) - i64::from(p.peer)))
                + varint_len(zigzag(i64::from(doc.local) - i64::from(p.local)))
                + 2
        }
    }
}

/// How many of the list's references a floor keeps (the prefix scoring
/// `>= floor`; the refs are stored best-first).
fn kept_under(list: &TruncatedPostingList, floor: Option<f64>) -> usize {
    match floor {
        None => list.len(),
        Some(f) => list.refs().partition_point(|r| r.score >= f),
    }
}

/// Encodes `list` into a fresh frame. With a `score_floor`, only the prefix of
/// references scoring at least the floor is encoded (see the module docs for
/// the exact `full_df` semantics the decoder reconstructs).
pub fn encode_list(list: &TruncatedPostingList, score_floor: Option<f64>) -> Vec<u8> {
    let kept = kept_under(list, score_floor);
    let refs = &list.refs()[..kept];
    // Size by the O(1) worst-case bound rather than the exact-length dry run:
    // the buffer is short-lived and the ~2-3x over-allocation is cheaper than
    // a second pass over every entry on the probe hot path.
    let mut out = Vec::with_capacity(max_encoded_list_len(kept));
    out.push(FORMAT_VERSION);
    put_varint(&mut out, list.full_df());
    put_varint(&mut out, list.capacity() as u64);
    put_varint(&mut out, list.len() as u64);
    put_varint(&mut out, kept as u64);
    if kept == 0 {
        append_trailer(&mut out, 0);
        return out;
    }
    // The quantization range spans the *full* list's scores — not just the
    // kept prefix — so a floored frame quantizes every kept entry on exactly
    // the grid the unfloored frame would use. This is what makes
    // threshold-aware elision rank-exact: the querier decodes byte-identical
    // scores for every entry the floor kept, so merged rankings cannot drift
    // between floored and unfloored executions. `as f32` rounding can land hi
    // slightly below the true best (or lo slightly above the true worst), so
    // widen to the next representable f32 to keep every score inside the
    // range. Scores outside the finite f32 range (or NaN) are clamped first
    // so the frame always stays decodable — quantization of such degenerate
    // scores is then arbitrary, but the probe path can never produce a frame
    // its own querier rejects.
    let all = list.refs();
    let hi = widen_up(sanitize_score(refs[0].score));
    let lo = widen_down(sanitize_score(all[all.len() - 1].score));
    put_f32(&mut out, hi);
    put_f32(&mut out, lo);
    let blocks = refs.chunks(BLOCK_ENTRIES);
    put_varint(&mut out, blocks.len() as u64);
    for block in blocks {
        let max_q = quantize(block[0].score, f64::from(lo), f64::from(hi));
        put_u16(&mut out, max_q);
        put_varint(&mut out, block.len() as u64);
        let mut payload_len = 0usize;
        let mut prev = None;
        for r in block {
            payload_len += in_list_entry_len(prev, r.doc);
            prev = Some(r.doc);
        }
        put_varint(&mut out, payload_len as u64);
        let mut prev: Option<DocId> = None;
        for r in block {
            match prev {
                None => {
                    put_varint(&mut out, u64::from(r.doc.peer));
                    put_varint(&mut out, u64::from(r.doc.local));
                }
                Some(p) => {
                    put_varint(&mut out, zigzag(i64::from(r.doc.peer) - i64::from(p.peer)));
                    put_varint(
                        &mut out,
                        zigzag(i64::from(r.doc.local) - i64::from(p.local)),
                    );
                }
            }
            put_u16(&mut out, quantize(r.score, f64::from(lo), f64::from(hi)));
            prev = Some(r.doc);
        }
    }
    append_trailer(&mut out, 0);
    out
}

/// Maps a score into the finite `f32`-representable range (NaN becomes 0) so
/// the quantization range written to the wire is always finite.
pub(crate) fn sanitize_score(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v.clamp(f64::from(f32::MIN), f64::from(f32::MAX))
    }
}

/// Next representable `f32` at or above `v` (so quantization ranges always
/// contain the `f64` scores they were derived from).
pub(crate) fn widen_up(v: f64) -> f32 {
    let f = v as f32;
    if f64::from(f) < v {
        f32::from_bits(if f >= 0.0 {
            f.to_bits() + 1
        } else {
            f.to_bits() - 1
        })
    } else {
        f
    }
}

/// Next representable `f32` at or below `v`.
pub(crate) fn widen_down(v: f64) -> f32 {
    let f = v as f32;
    if f64::from(f) > v {
        f32::from_bits(if f > 0.0 {
            f.to_bits() - 1
        } else {
            f.to_bits() + 1
        })
    } else {
        f
    }
}

/// Exact length of [`encode_list`]`(list, None)` — pure arithmetic, no
/// allocation. This is what `TruncatedPostingList::wire_size` reports (and
/// what the simulator charges for an unfloored probe response).
pub fn encoded_list_len(list: &TruncatedPostingList) -> usize {
    encoded_list_len_for(list, list.len())
}

fn encoded_list_len_for(list: &TruncatedPostingList, kept: usize) -> usize {
    let mut len = FRAME_TRAILER_LEN
        + 1
        + varint_len(list.full_df())
        + varint_len(list.capacity() as u64)
        + varint_len(list.len() as u64)
        + varint_len(kept as u64);
    if kept == 0 {
        return len;
    }
    len += 8; // score_hi + score_lo
    let refs = &list.refs()[..kept];
    let blocks = refs.chunks(BLOCK_ENTRIES);
    len += varint_len(blocks.len() as u64);
    for block in blocks {
        let mut payload_len = 0usize;
        let mut prev = None;
        for r in block {
            payload_len += in_list_entry_len(prev, r.doc);
            prev = Some(r.doc);
        }
        len += 2 + varint_len(block.len() as u64) + varint_len(payload_len as u64) + payload_len;
    }
    len
}

/// What a score floor elided from one list frame, measured at encode time.
///
/// The encoder drops the sub-floor suffix outright, so "skipped" here means
/// the whole 16-entry blocks that never reach the wire — exactly the blocks
/// whose per-block max-score header would let [`decode_list_above`] skip them
/// without touching their bytes if a full frame were floored at the decoder
/// instead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElisionStats {
    /// Whole [`BLOCK_ENTRIES`]-entry blocks the floor elided end to end. A
    /// partially-kept boundary block counts zero: its bytes still ship.
    pub skipped_blocks: usize,
    /// Bytes the floored frame saves over encoding the full list.
    pub elided_bytes: usize,
}

/// Exact elision accounting for [`encode_list`]`(list, score_floor)` — pure
/// arithmetic, no allocation, consistent with [`encoded_list_len`] to the
/// byte.
pub fn elision_stats(list: &TruncatedPostingList, score_floor: Option<f64>) -> ElisionStats {
    let kept = kept_under(list, score_floor);
    if kept == list.len() {
        return ElisionStats::default();
    }
    ElisionStats {
        skipped_blocks: list.len().div_ceil(BLOCK_ENTRIES) - kept.div_ceil(BLOCK_ENTRIES),
        elided_bytes: encoded_list_len(list) - encoded_list_len_for(list, kept),
    }
}

/// Worst-case length of a list frame carrying at most `entries` references —
/// the sound upper bound [`crate::global_index::GlobalIndex::estimate_probe_bytes`]
/// and the planners reserve against. Holds for any document ids, scores,
/// `full_df` and capacity.
pub fn max_encoded_list_len(entries: usize) -> usize {
    // trailer + version + full_df/capacity varints at their 10-byte u64 worst
    // case + total/kept varints for `entries`.
    let mut len = FRAME_TRAILER_LEN + 1 + 10 + 10 + 2 * varint_len(entries as u64);
    if entries == 0 {
        return len;
    }
    let blocks = entries.div_ceil(BLOCK_ENTRIES);
    len += 8 + varint_len(blocks as u64);
    len += blocks
        * (2 + varint_len(BLOCK_ENTRIES as u64)
            + varint_len((BLOCK_ENTRIES * MAX_ENTRY_LEN) as u64));
    len + entries * MAX_ENTRY_LEN
}

/// Decodes a whole list frame.
pub fn decode_list(buf: &[u8]) -> Result<TruncatedPostingList, CodecError> {
    decode_list_inner(buf, None)
}

/// Decodes only the entries scoring at least `score_floor`, using the
/// per-block max-score headers and skip offsets to stop without touching the
/// bytes of blocks entirely below the floor. Elided entries are accounted
/// exactly like encode-side floor elision (subtracted from `full_df`).
pub fn decode_list_above(buf: &[u8], score_floor: f64) -> Result<TruncatedPostingList, CodecError> {
    decode_list_inner(buf, Some(score_floor))
}

fn decode_list_inner(frame: &[u8], floor: Option<f64>) -> Result<TruncatedPostingList, CodecError> {
    // Integrity first: the whole frame is in hand, so the trailer is verified
    // before a single body byte is parsed — a floored decode's legitimate
    // early block termination never skips the check.
    let buf = verify_trailer(frame)?;
    let mut pos = 0usize;
    let version = *buf
        .get(pos)
        .ok_or_else(|| CodecError::new("empty list frame"))?;
    pos += 1;
    if version != FORMAT_VERSION {
        return Err(CodecError::new(format!("unknown frame version {version}")));
    }
    let full_df = get_varint(buf, &mut pos)?;
    let capacity = usize::try_from(get_varint(buf, &mut pos)?)
        .map_err(|_| CodecError::new("capacity overflows usize"))?;
    let total = get_varint(buf, &mut pos)? as usize;
    let kept = get_varint(buf, &mut pos)? as usize;
    if kept > total {
        return Err(CodecError::new("kept_refs exceeds total_refs"));
    }
    let mut refs: Vec<ScoredRef> = Vec::with_capacity(kept.min(4096));
    if kept > 0 {
        let hi = f64::from(get_f32(buf, &mut pos)?);
        let lo = f64::from(get_f32(buf, &mut pos)?);
        if !hi.is_finite() || !lo.is_finite() {
            return Err(CodecError::new("non-finite quantization range"));
        }
        let n_blocks = get_varint(buf, &mut pos)? as usize;
        'blocks: for _ in 0..n_blocks {
            let max_q = get_u16(buf, &mut pos)?;
            let n_entries = get_varint(buf, &mut pos)? as usize;
            let payload_len = get_varint(buf, &mut pos)? as usize;
            let payload_end = pos
                .checked_add(payload_len)
                .filter(|end| *end <= buf.len())
                .ok_or_else(|| CodecError::new("block payload out of bounds"))?;
            if let Some(f) = floor {
                if dequantize(max_q, lo, hi) < f {
                    // Blocks are score-descending: nothing below this point can
                    // reach the floor. Early termination without reading on.
                    break 'blocks;
                }
            }
            let mut prev: Option<DocId> = None;
            for _ in 0..n_entries {
                let doc = match prev {
                    None => {
                        let peer = u32::try_from(get_varint(buf, &mut pos)?)
                            .map_err(|_| CodecError::new("peer id overflows u32"))?;
                        let local = u32::try_from(get_varint(buf, &mut pos)?)
                            .map_err(|_| CodecError::new("local id overflows u32"))?;
                        DocId::new(peer, local)
                    }
                    Some(p) => {
                        let dp = unzigzag(get_varint(buf, &mut pos)?);
                        let dl = unzigzag(get_varint(buf, &mut pos)?);
                        let peer = i64::from(p.peer)
                            .checked_add(dp)
                            .and_then(|v| u32::try_from(v).ok())
                            .ok_or_else(|| CodecError::new("peer delta out of range"))?;
                        let local = i64::from(p.local)
                            .checked_add(dl)
                            .and_then(|v| u32::try_from(v).ok())
                            .ok_or_else(|| CodecError::new("local delta out of range"))?;
                        DocId::new(peer, local)
                    }
                };
                let q = get_u16(buf, &mut pos)?;
                let score = dequantize(q, lo, hi);
                prev = Some(doc);
                if let Some(f) = floor {
                    if score < f {
                        // Entries within a block are score-descending too.
                        break 'blocks;
                    }
                }
                refs.push(ScoredRef { doc, score });
            }
            if pos != payload_end {
                return Err(CodecError::new("block payload length mismatch"));
            }
        }
    }
    // An unfloored decode consumes the whole frame; leftover bytes mean the
    // buffer was corrupted or mis-framed. (Floored decodes legitimately stop
    // at the first block below the floor.)
    if floor.is_none() && pos != buf.len() {
        return Err(CodecError::new("trailing bytes after list frame"));
    }
    // A well-formed frame's blocks carry exactly kept_refs entries; only a
    // floored decode may legitimately stop short.
    if refs.len() > kept || (floor.is_none() && refs.len() != kept) {
        return Err(CodecError::new("block entries disagree with kept_refs"));
    }
    // Canonical list order: descending score, ties by ascending document id
    // (distinct scores may collapse into quantized ties).
    refs.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
    let elided = (total - kept) + (kept - refs.len());
    let full_df = full_df.saturating_sub(elided as u64);
    Ok(TruncatedPostingList::from_wire_parts(
        refs, capacity, full_df,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(scores: &[(u32, u32, f64)], capacity: usize) -> TruncatedPostingList {
        TruncatedPostingList::from_refs(
            scores.iter().map(|(p, l, s)| ScoredRef {
                doc: DocId::new(*p, *l),
                score: *s,
            }),
            capacity,
        )
    }

    /// Appends the checksum trailer to a hand-built frame body.
    fn seal(mut body: Vec<u8>) -> Vec<u8> {
        let sum = frame_checksum(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        body
    }

    #[test]
    fn frame_checksum_golden_values() {
        // Pins the checksum definition itself (Adler-32): the trailer bytes of
        // every golden frame below derive from these.
        assert_eq!(frame_checksum(b""), 0x0000_0001);
        assert_eq!(frame_checksum(b"Wikipedia"), 0x11E6_0398);
        assert_eq!(frame_checksum(&[0u8]), 0x0001_0001);
    }

    #[test]
    fn single_bit_flips_always_change_the_checksum() {
        let frames = [
            encode_list(&list(&[(1, 5, 3.0), (1, 6, 1.0)], 4), None),
            encode_list(&TruncatedPostingList::new(10), None),
        ];
        for frame in frames {
            for bit in 0..frame.len() * 8 {
                let mut flipped = frame.clone();
                flipped[bit / 8] ^= 1 << (bit % 8);
                assert!(
                    decode_list(&flipped).is_err(),
                    "bit {bit} flip decoded silently"
                );
            }
        }
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len of {v}");
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(u32::MAX),
            -i64::from(u32::MAX),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small on the wire.
        assert_eq!(varint_len(zigzag(0)), 1);
        assert_eq!(varint_len(zigzag(-1)), 1);
        assert_eq!(varint_len(zigzag(63)), 1);
    }

    #[test]
    fn empty_list_is_a_nine_byte_frame() {
        let empty = TruncatedPostingList::new(10);
        let bytes = encode_list(&empty, None);
        assert_eq!(bytes, seal(vec![FORMAT_VERSION, 0, 10, 0, 0]));
        assert_eq!(bytes.len(), 5 + FRAME_TRAILER_LEN);
        assert_eq!(encoded_list_len(&empty), bytes.len());
        let back = decode_list(&bytes).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn golden_list_frame_layout() {
        // Two entries, same peer, adjacent docs, scores 3.0 and 1.0: pins the
        // exact byte layout the simulator charges (the ScoredRef satellite).
        let l = list(&[(1, 5, 3.0), (1, 6, 1.0)], 4);
        let bytes = encode_list(&l, None);
        let hi = 3.0f32.to_le_bytes();
        let lo = 1.0f32.to_le_bytes();
        let expected = vec![
            FORMAT_VERSION, // version
            2,              // full_df
            4,              // capacity
            2,              // total_refs
            2,              // kept_refs
            hi[0],
            hi[1],
            hi[2],
            hi[3], // score_hi = 3.0
            lo[0],
            lo[1],
            lo[2],
            lo[3], // score_lo = 1.0
            1,     // n_blocks
            0xff,
            0xff, // max_q = 65535 (block's best score == score_hi)
            2,    // n_entries
            8,    // payload_len: (1+1+2) absolute + (1+1+2) delta
            1,
            5, // first entry: peer=1, local=5 (absolute varints)
            0xff,
            0xff, // q(3.0) = 65535
            0,
            2, // second entry: Δpeer=0, Δlocal=+1 (zigzag = 2)
            0x00,
            0x00, // q(1.0) = 0
        ];
        assert_eq!(bytes, seal(expected));
        assert_eq!(encoded_list_len(&l), bytes.len());
        let back = decode_list(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.refs()[0].doc, DocId::new(1, 5));
        assert_eq!(back.refs()[0].score, 3.0);
        assert_eq!(back.refs()[1].score, 1.0);
        assert!(!back.is_truncated());
    }

    #[test]
    fn round_trip_preserves_docs_and_bounds_score_error() {
        let l = list(
            &[
                (0, 1, 9.25),
                (3, 7, 8.5),
                (0, 2, 7.125),
                (2, 9, 3.75),
                (1, 1, 0.5),
            ],
            8,
        );
        let bytes = encode_list(&l, None);
        let back = decode_list(&bytes).unwrap();
        assert_eq!(back.len(), l.len());
        assert_eq!(back.full_df(), l.full_df());
        assert_eq!(back.capacity(), l.capacity());
        let step = quantization_step(0.5, 9.25) + 1e-6;
        for (a, b) in l.refs().iter().zip(back.refs()) {
            assert_eq!(a.doc, b.doc);
            assert!(
                (a.score - b.score).abs() <= step,
                "{} vs {}",
                a.score,
                b.score
            );
        }
    }

    #[test]
    fn encode_floor_elides_the_tail_and_preserves_truncation_status() {
        let complete = list(&[(0, 0, 5.0), (0, 1, 4.0), (0, 2, 1.0)], 10);
        assert!(!complete.is_truncated());
        let bytes = encode_list(&complete, Some(3.0));
        assert!(bytes.len() < encode_list(&complete, None).len());
        let back = decode_list(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert!(
            !back.is_truncated(),
            "floor elision must not masquerade as capacity truncation"
        );

        let mut truncated = TruncatedPostingList::new(3);
        for i in 0..10u32 {
            truncated.insert(ScoredRef {
                doc: DocId::new(0, i),
                score: f64::from(10 - i),
            });
        }
        assert!(truncated.is_truncated());
        let back = decode_list(&encode_list(&truncated, Some(9.5))).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.is_truncated());
    }

    #[test]
    fn decode_floor_stops_at_block_boundaries() {
        // 40 entries → 3 blocks; a floor above the second block's best score
        // decodes only the first block's qualifying prefix.
        let mut l = TruncatedPostingList::new(64);
        for i in 0..40u32 {
            l.insert(ScoredRef {
                doc: DocId::new(0, i),
                score: f64::from(1000 - i),
            });
        }
        let bytes = encode_list(&l, None);
        let full = decode_list(&bytes).unwrap();
        assert_eq!(full.len(), 40);
        let floored = decode_list_above(&bytes, 990.5).unwrap();
        assert_eq!(floored.len(), 10);
        assert!(floored.refs().iter().all(|r| r.score >= 990.0));
        // Floor elision mirrors the encode side: the elided tail is subtracted
        // from full_df, so the complete list stays complete.
        assert!(!floored.is_truncated());
        // A floor above everything decodes an empty-but-truncated list.
        let none = decode_list_above(&bytes, 2000.0).unwrap();
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn max_encoded_len_bounds_arbitrary_lists() {
        for n in [0usize, 1, 2, 15, 16, 17, 100] {
            let mut l = TruncatedPostingList::new(n.max(1));
            for i in 0..n as u32 {
                // Adversarial ids: alternate extremes so deltas are worst-case.
                let peer = if i % 2 == 0 { 0 } else { u32::MAX };
                l.insert(ScoredRef {
                    doc: DocId::new(peer, i.wrapping_mul(2_654_435_761)),
                    score: f64::from(n as u32 - i),
                });
            }
            let actual = encode_list(&l, None).len();
            assert!(
                actual <= max_encoded_list_len(l.len()),
                "{n} entries: {actual} > bound {}",
                max_encoded_list_len(l.len())
            );
        }
    }

    #[test]
    fn key_frame_golden_layout_and_round_trip() {
        let key = TermKey::new(["cde", "ab"]);
        let mut buf = Vec::new();
        encode_key(&mut buf, &key);
        assert_eq!(buf, seal(vec![2, 2, b'a', b'b', 3, b'c', b'd', b'e']));
        assert_eq!(key_frame_len([2usize, 3]), buf.len());
        assert_eq!(decode_key(&buf).unwrap(), vec!["ab", "cde"]);
        // A flipped key-frame bit is detected just like a list-frame one.
        let mut flipped = buf.clone();
        flipped[2] ^= 0x01;
        assert!(decode_key(&flipped).unwrap_err().is_corrupt());
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        assert!(decode_list(&[]).is_err());
        assert!(
            decode_list(&seal(vec![99, 0, 0, 0, 0])).is_err(),
            "bad version"
        );
        let l = list(&[(0, 0, 1.0)], 2);
        let bytes = encode_list(&l, None);
        assert!(decode_list(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        // Structural checks still fire behind a *valid* trailer: re-seal the
        // tampered bodies so the failure is the body check, not the checksum.
        let body_of = |frame: &[u8]| frame[..frame.len() - FRAME_TRAILER_LEN].to_vec();
        let mut trailing = body_of(&bytes);
        trailing.push(0xAB);
        assert_eq!(
            decode_list(&seal(trailing)),
            Err(CodecError::new("trailing bytes after list frame"))
        );
        // Blocks declaring more entries than the header's kept_refs must
        // error, not overflow the elided-count arithmetic.
        let two = encode_list(&list(&[(0, 0, 2.0), (0, 1, 1.0)], 4), None);
        let mut lying = body_of(&two);
        lying[4] = 1; // kept_refs: 2 -> 1, blocks still carry 2 entries
        assert!(decode_list(&seal(lying)).is_err(), "over-full blocks");
        // A key frame declaring an absurd term length must error, not overflow.
        assert!(decode_key(&seal(vec![
            1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1
        ]))
        .is_err());
        // A delta entry whose zigzag delta overflows i64 addition must error,
        // not overflow: first entry peer=u32::MAX, then Δpeer = i64::MAX.
        let mut frame = vec![FORMAT_VERSION, 2, 4, 2, 2];
        frame.extend_from_slice(&1.0f32.to_le_bytes()); // score_hi
        frame.extend_from_slice(&0.0f32.to_le_bytes()); // score_lo
        frame.push(1); // n_blocks
        frame.extend_from_slice(&0xffffu16.to_le_bytes()); // max_q
        frame.push(2); // n_entries
        let mut payload = Vec::new();
        put_varint(&mut payload, u64::from(u32::MAX)); // peer
        put_varint(&mut payload, 0); // local
        put_u16(&mut payload, 0xffff);
        put_varint(&mut payload, zigzag(i64::MAX)); // Δpeer overflows
        put_varint(&mut payload, 0); // Δlocal
        put_u16(&mut payload, 0);
        put_varint(&mut frame, payload.len() as u64);
        frame.extend_from_slice(&payload);
        assert!(decode_list(&seal(frame)).is_err(), "delta overflow");
    }

    #[test]
    fn degenerate_scores_still_produce_decodable_frames() {
        // Scores outside the f32 range (and NaN) are clamped at encode time:
        // the probe path must never produce a frame its querier rejects.
        for scores in [
            vec![(0u32, 0u32, 1e300f64), (0, 1, 1.0)],
            vec![(0, 0, f64::NAN), (0, 1, 2.0)],
            vec![(0, 0, f64::INFINITY), (0, 1, f64::NEG_INFINITY)],
        ] {
            let l = list(&scores, 4);
            let bytes = encode_list(&l, None);
            let back = decode_list(&bytes).expect("degenerate scores decode");
            assert_eq!(back.len(), l.len());
            for r in back.refs() {
                assert!(r.score.is_finite(), "decoded score {:?}", r.score);
            }
        }
    }

    #[test]
    fn block_max_equal_to_floor_still_decodes() {
        // Regression: the block skip must use strict `<` — a block whose
        // max-score header *equals* the floor still holds entries at the
        // floor, and skipping it would silently drop them (a rank inversion
        // at the boundary). Floor on the dequantized grid so equality is
        // exact.
        let entries: Vec<(u32, u32, f64)> = (0..40u32)
            .map(|i| (1, i, 10.0 - 0.2 * f64::from(i)))
            .collect();
        let l = list(&entries, 64);
        let frame = encode_list(&l, None);
        let full = decode_list(&frame).unwrap();
        // The second block's max (entry 16) — exactly a block-max boundary.
        let boundary = full.refs()[BLOCK_ENTRIES].score;
        let above = decode_list_above(&frame, boundary).unwrap();
        let expected = full.refs().partition_point(|r| r.score >= boundary);
        assert!(
            expected > BLOCK_ENTRIES,
            "boundary entry itself must qualify"
        );
        assert_eq!(above.len(), expected, "entries at the floor were dropped");
        assert_eq!(
            above.refs()[BLOCK_ENTRIES].doc,
            full.refs()[BLOCK_ENTRIES].doc
        );
        assert_eq!(above.refs()[BLOCK_ENTRIES].score, boundary);
    }

    #[test]
    fn kth_score_on_block_max_boundary_keeps_rank_k() {
        // The k-th best score ties with a block's max: with k = 17 the k-th
        // entry opens the second block, and two more entries tie with it.
        // Every tied entry must survive a floored decode, and the encode-side
        // floor (applied to raw scores) must keep the same set.
        let tie = 6.5f64;
        let entries: Vec<(u32, u32, f64)> = (0..BLOCK_ENTRIES as u32)
            .map(|i| (1, i, 10.0 - 0.1 * f64::from(i)))
            .chain((0..3u32).map(|i| (2, i, tie)))
            .chain((0..13u32).map(|i| (3, i, 2.0 - 0.1 * f64::from(i))))
            .collect();
        let l = list(&entries, 64);
        let frame = encode_list(&l, None);
        let full = decode_list(&frame).unwrap();
        let k = BLOCK_ENTRIES + 1;
        let kth = full.refs()[k - 1].score;
        assert_eq!(
            kth,
            full.refs()[BLOCK_ENTRIES].score,
            "k-th entry must be the second block's max for this regression"
        );
        let above = decode_list_above(&frame, kth).unwrap();
        assert_eq!(
            above.len(),
            BLOCK_ENTRIES + 3,
            "all entries tied with the k-th score must decode"
        );
        for (a, b) in above.refs().iter().zip(full.refs()) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score, b.score);
        }
        // Encode-side elision at the raw tie score keeps the same prefix.
        let floored_frame = encode_list(&l, Some(tie));
        let floored = decode_list(&floored_frame).unwrap();
        assert_eq!(floored.len(), BLOCK_ENTRIES + 3);
        // Encode-side elision subtracts the elided entries from `full_df`.
        assert_eq!(
            floored.full_df() + (l.len() - floored.len()) as u64,
            full.full_df()
        );
    }

    #[test]
    fn quantization_is_monotone() {
        let lo = 0.0;
        let hi = 10.0;
        let mut prev = u16::MAX;
        for i in (0..=1000).rev() {
            let q = quantize(f64::from(i) * 0.01, lo, hi);
            assert!(q <= prev);
            prev = q;
        }
        assert_eq!(quantize(10.0, lo, hi), SCORE_LEVELS);
        assert_eq!(quantize(0.0, lo, hi), 0);
        assert!(
            (dequantize(quantize(5.0, lo, hi), lo, hi) - 5.0).abs() <= quantization_step(lo, hi)
        );
    }
}
