//! The AlvisP2P network: peers + overlay + distributed index, driven as one system.
//!
//! [`AlvisNetwork`] composes every layer of the architecture (Figure 2 of the paper):
//! the simulated transport and DHT overlay (L1–L2, crates `alvisp2p-netsim` /
//! `alvisp2p-dht`), the distributed indexing and retrieval components (L3, modules
//! [`crate::strategy`], [`crate::hdk`], [`crate::qdi`], [`crate::lattice`],
//! [`crate::global_index`]), the distributed ranking component (L4,
//! [`crate::ranking`]) and the per-peer local search engines (L5, [`crate::peer`],
//! crate `alvisp2p-textindex`).
//!
//! It is the entry point used by the examples, the integration tests and the
//! experiment harness: assemble a network with [`AlvisNetworkBuilder`], distribute a
//! corpus, build the distributed index with any [`Strategy`], and execute
//! [`QueryRequest`]s while every byte that would cross the wire is accounted.
//!
//! The indexing policy itself is pluggable: the network never inspects which
//! strategy it runs — construction, lattice bounds and post-query behaviour all go
//! through the [`Strategy`] trait.

use crate::baseline::CentralizedEngine;
use crate::error::AlvisError;
use crate::exec::{ExecutionObserver, QueryExecutor, QueryStream};
use crate::fault::{FaultPlane, ProbeOutcome, RetryPolicy};
use crate::global_index::{GlobalIndex, ProbeResult};
use crate::hdk::HdkLevelReport;
use crate::key::TermKey;
use crate::lattice::{LatticeConfig, LatticeResult};
use crate::peer::{AlvisPeer, FetchOutcome};
use crate::plan::{BestEffort, PlanCtx, Planner, QueryPlan};
use crate::qdi::QdiReport;
use crate::ranking::GlobalRankingStats;
use crate::request::{QueryRequest, QueryResponse};
use crate::sketch::{SketchBuildReport, SketchCache, SketchDecision, SketchPolicy};
use crate::strategy::{Hdk, IndexerCtx, QueryCtx, Strategy};
use alvisp2p_dht::{DhtConfig, DhtError, RepairReport, ReplicationPolicy, RingId};
use alvisp2p_netsim::{TrafficCategory, TrafficStats};
use alvisp2p_textindex::bm25::{Bm25Params, ScoredDoc};
use alvisp2p_textindex::{Analyzer, Credentials, SyntheticCorpus};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of a whole AlvisP2P network.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Number of peers.
    pub peers: usize,
    /// Overlay configuration (routing strategy, identifier distribution, …).
    pub dht: DhtConfig,
    /// Distributed indexing strategy (any [`Strategy`] implementation).
    pub strategy: Arc<dyn Strategy>,
    /// Query planner used by [`AlvisNetwork::plan`] and [`AlvisNetwork::execute`]
    /// (any [`Planner`] implementation). The default, [`BestEffort`], reproduces
    /// the fixed-order cutoff semantics of the pre-planner API.
    pub planner: Arc<dyn Planner>,
    /// BM25 parameters used by every ranking component.
    pub bm25: Bm25Params,
    /// Query-lattice exploration parameters.
    pub lattice: LatticeConfig,
    /// Per-key sketch publication policy (see [`crate::sketch`]). The default,
    /// [`SketchPolicy::NoSketches`], keeps every byte of the query path
    /// identical to a sketch-free network.
    pub sketch_policy: SketchPolicy,
    /// Fault-injection plane for the probe path (see [`crate::fault`]). The
    /// default, [`FaultPlane::NoFaults`], keeps the query path byte-identical
    /// to a fault-free network.
    pub faults: FaultPlane,
    /// How the executor responds to failed probe attempts (retries, backoff,
    /// replica failover). Inert while the fault plane is inactive.
    pub retry_policy: RetryPolicy,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            peers: 32,
            dht: DhtConfig::default(),
            strategy: Arc::new(Hdk::default()),
            planner: Arc::new(BestEffort),
            bm25: Bm25Params::default(),
            lattice: LatticeConfig::default(),
            sketch_policy: SketchPolicy::default(),
            faults: FaultPlane::default(),
            retry_policy: RetryPolicy::default(),
            seed: 42,
        }
    }
}

/// Fluent assembly of an [`AlvisNetwork`].
///
/// ```
/// use alvisp2p_core::network::AlvisNetwork;
/// use alvisp2p_core::strategy::Hdk;
/// use alvisp2p_core::hdk::HdkConfig;
/// use alvisp2p_textindex::demo_corpus;
///
/// let mut net = AlvisNetwork::builder()
///     .peers(4)
///     .strategy(Hdk::new(HdkConfig { df_max: 2, ..Default::default() }))
///     .seed(7)
///     .documents(demo_corpus())
///     .build()
///     .unwrap();
/// let report = net.build_index();
/// assert!(report.activated_keys > 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AlvisNetworkBuilder {
    config: NetworkConfig,
    documents: Vec<(String, String)>,
}

impl AlvisNetworkBuilder {
    /// A builder starting from the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of peers.
    pub fn peers(mut self, peers: usize) -> Self {
        self.config.peers = peers;
        self
    }

    /// Sets the indexing strategy (any [`Strategy`] implementation, including
    /// user-defined ones).
    pub fn strategy(mut self, strategy: impl Strategy + 'static) -> Self {
        self.config.strategy = Arc::new(strategy);
        self
    }

    /// Sets an already-shared strategy.
    pub fn strategy_arc(mut self, strategy: Arc<dyn Strategy>) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Sets the query planner (any [`Planner`] implementation, including
    /// user-defined ones).
    pub fn planner(mut self, planner: impl Planner + 'static) -> Self {
        self.config.planner = Arc::new(planner);
        self
    }

    /// Sets an already-shared planner.
    pub fn planner_arc(mut self, planner: Arc<dyn Planner>) -> Self {
        self.config.planner = planner;
        self
    }

    /// Sets the overlay configuration.
    pub fn dht(mut self, dht: DhtConfig) -> Self {
        self.config.dht = dht;
        self
    }

    /// Sets the overlay's hot-key replication policy (see
    /// [`alvisp2p_dht::replica`]). Defaults to
    /// [`alvisp2p_dht::NoReplication`].
    pub fn replication(mut self, policy: Arc<dyn ReplicationPolicy>) -> Self {
        self.config.dht.replication = policy;
        self
    }

    /// Sets the length of each peer's ring successor list (the candidate set
    /// hot-key replicas are placed on). Defaults to
    /// [`alvisp2p_dht::SUCCESSOR_LIST_LEN`].
    pub fn successor_list_len(mut self, len: usize) -> Self {
        self.config.dht.successor_list_len = len;
        self
    }

    /// Sets the BM25 ranking parameters.
    pub fn bm25(mut self, bm25: Bm25Params) -> Self {
        self.config.bm25 = bm25;
        self
    }

    /// Sets the query-lattice exploration parameters.
    pub fn lattice(mut self, lattice: LatticeConfig) -> Self {
        self.config.lattice = lattice;
        self
    }

    /// Sets the per-key sketch publication policy (see [`crate::sketch`]).
    /// Defaults to [`SketchPolicy::NoSketches`], which keeps the query path
    /// byte-identical to a sketch-free network.
    pub fn sketch_policy(mut self, policy: SketchPolicy) -> Self {
        self.config.sketch_policy = policy;
        self
    }

    /// Sets the fault-injection plane (see [`crate::fault`]). Defaults to
    /// [`FaultPlane::NoFaults`], which keeps the query path byte-identical to
    /// a fault-free network.
    pub fn faults(mut self, plane: FaultPlane) -> Self {
        self.config.faults = plane;
        self
    }

    /// Sets the probe retry policy (see [`crate::fault::RetryPolicy`]).
    /// Defaults to bounded retries with replica failover; inert while the
    /// fault plane is inactive.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.config.retry_policy = policy;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Queues `(title, body)` documents for round-robin distribution when the
    /// network is built.
    pub fn documents(mut self, docs: impl IntoIterator<Item = (String, String)>) -> Self {
        self.documents.extend(docs);
        self
    }

    /// Queues a synthetic corpus for distribution when the network is built.
    pub fn corpus(mut self, corpus: &SyntheticCorpus) -> Self {
        self.documents.extend(
            corpus
                .docs
                .iter()
                .map(|d| (d.title.clone(), d.body.clone())),
        );
        self
    }

    /// Builds the network and distributes any queued documents. The
    /// distributed index is *not* built yet (call
    /// [`AlvisNetwork::build_index`], or use [`AlvisNetworkBuilder::build_indexed`]).
    pub fn build(self) -> Result<AlvisNetwork, AlvisError> {
        if self.config.peers == 0 {
            return Err(AlvisError::InvalidConfig(
                "network needs at least one peer".into(),
            ));
        }
        if self.config.strategy.truncation_k() == 0 {
            return Err(AlvisError::InvalidConfig(
                "strategy truncation bound must be positive".into(),
            ));
        }
        let mut net = AlvisNetwork::new(self.config);
        if !self.documents.is_empty() {
            net.distribute_documents(self.documents);
        }
        Ok(net)
    }

    /// Builds the network, distributes any queued documents and builds the
    /// distributed index in one step.
    pub fn build_indexed(self) -> Result<AlvisNetwork, AlvisError> {
        let mut net = self.build()?;
        net.build_index();
        Ok(net)
    }
}

/// Summary of a distributed index construction run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IndexBuildReport {
    /// Strategy label ("single-term", "hdk", "qdi", or a custom label).
    pub strategy: String,
    /// Number of activated keys in the global index.
    pub activated_keys: usize,
    /// Total posting references stored.
    pub total_postings: usize,
    /// Approximate storage bytes of the global index.
    pub storage_bytes: usize,
    /// Bytes spent on indexing traffic.
    pub indexing_bytes: u64,
    /// Bytes spent publishing/fetching ranking statistics.
    pub ranking_bytes: u64,
    /// Per-level construction summary (single-level for flat strategies).
    pub levels: Vec<HdkLevelReport>,
}

/// A result enriched by the owning peer's local engine (the two-step refinement).
#[derive(Clone, Debug)]
pub struct RefinedResult {
    /// The document.
    pub doc: alvisp2p_textindex::DocId,
    /// The distributed (first-step) score.
    pub global_score: f64,
    /// The owning peer's local score, when its local engine also matched the query.
    pub local_score: Option<f64>,
    /// Result title (if the owner still hosts the document).
    pub title: String,
    /// URL at the hosting peer.
    pub url: String,
    /// Snippet produced by the hosting peer.
    pub snippet: String,
}

/// A complete AlvisP2P network under simulation.
pub struct AlvisNetwork {
    config: NetworkConfig,
    peers: Vec<AlvisPeer>,
    global: GlobalIndex,
    ranking: GlobalRankingStats,
    sketches: SketchCache,
    sketch_report: SketchBuildReport,
    centralized: CentralizedEngine,
    analyzer: Analyzer,
    query_seq: u64,
    control_seq: u64,
    qdi_report: QdiReport,
    level_reports: Vec<HdkLevelReport>,
    index_built: bool,
    last_build: Option<IndexBuildReport>,
}

impl std::fmt::Debug for AlvisNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlvisNetwork")
            .field("peers", &self.peers.len())
            .field("strategy", &self.config.strategy.label())
            .field("documents", &self.total_documents())
            .field("index_built", &self.index_built)
            .field("queries_processed", &self.query_seq)
            .finish_non_exhaustive()
    }
}

impl AlvisNetwork {
    /// Builds a network of `config.peers` peers with an already-stabilised overlay.
    ///
    /// This is the low-level constructor; [`AlvisNetwork::builder`] reports the
    /// same invariant violations as [`AlvisError::InvalidConfig`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `config.peers == 0` or the strategy's truncation bound is 0.
    pub fn new(config: NetworkConfig) -> Self {
        assert!(config.peers > 0, "network needs at least one peer");
        assert!(
            config.strategy.truncation_k() > 0,
            "strategy truncation bound must be positive"
        );
        let global = GlobalIndex::new(config.dht.clone(), config.seed, config.peers);
        let peers = (0..config.peers)
            .map(|i| AlvisPeer::new(i as u32))
            .collect();
        let centralized = CentralizedEngine::new(config.bm25);
        let mut net = AlvisNetwork {
            peers,
            global,
            ranking: GlobalRankingStats::new(),
            sketches: SketchCache::new(),
            sketch_report: SketchBuildReport::default(),
            centralized,
            analyzer: Analyzer::default(),
            query_seq: 0,
            control_seq: 0,
            qdi_report: QdiReport::default(),
            level_reports: Vec::new(),
            index_built: false,
            last_build: None,
            config,
        };
        net.wire_replica_faults();
        net
    }

    /// Starts assembling a network.
    pub fn builder() -> AlvisNetworkBuilder {
        AlvisNetworkBuilder::new()
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The indexing strategy the network runs.
    pub fn strategy(&self) -> &Arc<dyn Strategy> {
        &self.config.strategy
    }

    /// The query planner [`AlvisNetwork::plan`] and [`AlvisNetwork::execute`] use.
    pub fn planner(&self) -> &Arc<dyn Planner> {
        &self.config.planner
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Immutable access to a peer.
    pub fn peer(&self, index: usize) -> &AlvisPeer {
        &self.peers[index]
    }

    /// Mutable access to a peer (e.g. to publish more documents).
    pub fn peer_mut(&mut self, index: usize) -> &mut AlvisPeer {
        &mut self.peers[index]
    }

    /// The global distributed index.
    pub fn global_index(&self) -> &GlobalIndex {
        &self.global
    }

    /// Mutable access to the global distributed index (used by churn experiments and
    /// examples to drive overlay-level events such as joins, departures and failures).
    pub fn global_index_mut(&mut self) -> &mut GlobalIndex {
        &mut self.global
    }

    /// The aggregated global ranking statistics.
    pub fn ranking_stats(&self) -> &GlobalRankingStats {
        &self.ranking
    }

    /// The querier-side cache of per-key sketches published by the most recent
    /// index build (empty under [`SketchPolicy::NoSketches`]).
    pub fn sketch_cache(&self) -> &SketchCache {
        &self.sketches
    }

    /// The cost-based sketch selection report of the most recent index build.
    pub fn sketch_report(&self) -> &SketchBuildReport {
        &self.sketch_report
    }

    /// The centralized reference engine over the same collection.
    pub fn centralized(&self) -> &CentralizedEngine {
        &self.centralized
    }

    /// Accumulated traffic statistics.
    pub fn traffic(&self) -> &TrafficStats {
        self.global.stats()
    }

    /// Snapshot of the traffic statistics.
    pub fn traffic_snapshot(&self) -> TrafficStats {
        self.global.stats_snapshot()
    }

    /// Resets the traffic statistics (e.g. to isolate the retrieval phase).
    pub fn reset_traffic(&mut self) {
        self.global.reset_stats();
    }

    /// The QDI behaviour counters accumulated so far.
    pub fn qdi_report(&self) -> QdiReport {
        self.qdi_report
    }

    /// The global query sequence number (number of queries processed).
    pub fn queries_processed(&self) -> u64 {
        self.query_seq
    }

    /// The fault-injection plane (see [`crate::fault`]).
    pub fn fault_plane(&self) -> &FaultPlane {
        &self.config.faults
    }

    /// Mutable access to the fault plane — lets tests and experiments crash,
    /// stall or restore peers between (or during) queries.
    ///
    /// Use [`AlvisNetwork::set_fault_plane`] to *replace* the plane: replacing
    /// it through this accessor does not re-wire the overlay's replica
    /// sync-loss knobs.
    pub fn fault_plane_mut(&mut self) -> &mut FaultPlane {
        &mut self.config.faults
    }

    /// Replaces the fault plane and pushes its control-plane knobs (the
    /// replica sync-loss seed and rate) down into the overlay's replication
    /// subsystem, so replica synchronisation messages start failing under the
    /// same deterministic plane as probes and publications.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.config.faults = plane;
        self.wire_replica_faults();
    }

    /// Pushes the current plane's seed and sync-loss rate into the DHT's
    /// replication subsystem (the DHT crate cannot depend on this crate, so
    /// the plane itself cannot cross the boundary).
    fn wire_replica_faults(&mut self) {
        let (seed, rate) = match self.config.faults.seed() {
            Some(seed) => (seed, self.config.faults.sync_loss_rate()),
            None => (0, 0.0),
        };
        self.global.dht_mut().set_replica_faults(seed, rate);
    }

    /// Enables or disables anti-entropy replica repair in the overlay (see
    /// [`alvisp2p_dht::ReplicaManager`]). Disabled by default — the default
    /// network stays byte-identical to a repair-free one.
    pub fn set_repair_enabled(&mut self, enabled: bool) {
        self.global.dht_mut().set_repair_enabled(enabled);
    }

    /// One anti-entropy repair round over every replicated key, skipping
    /// peers the fault plane has crashed (they cannot answer digest
    /// requests). Digest exchanges and repair pulls are charged to
    /// [`TrafficCategory::Overlay`].
    pub fn repair_round(&mut self) -> RepairReport {
        let crashed = self.config.faults.crashed().cloned().unwrap_or_default();
        self.global.dht_mut().repair_round_excluding(&crashed)
    }

    /// Fraction of replica copies on live, un-crashed holders that are
    /// byte-consistent with their key's canonical content (`1.0` when nothing
    /// is replicated). The convergence metric of the chaos experiments.
    pub fn replica_consistency(&self) -> f64 {
        let crashed = self.config.faults.crashed().cloned().unwrap_or_default();
        self.global.dht().replica_consistency_excluding(&crashed)
    }

    /// Number of publications whose acknowledgement is still outstanding
    /// (they were dropped by the plane and await re-publication). Always `0`
    /// under [`FaultPlane::NoFaults`].
    pub fn pending_publishes(&self) -> usize {
        self.global.pending_publishes()
    }

    /// One round of the publisher-side re-publication schedule: every pending
    /// (un-acked) publication whose backoff has elapsed is re-sent, charged to
    /// [`TrafficCategory::Overlay`]. Returns `(resent, applied)`.
    pub fn republish_round(&mut self) -> (usize, usize) {
        self.global.republish_round(&self.config.faults)
    }

    /// The probe retry policy the executor applies under an active fault
    /// plane.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.config.retry_policy
    }

    // ------------------------------------------------------------------
    // Corpus distribution
    // ------------------------------------------------------------------

    /// Distributes `(title, body)` documents round-robin over the peers and indexes
    /// them locally (layer 5). The centralized reference engine indexes the same
    /// documents.
    pub fn distribute_documents(
        &mut self,
        docs: impl IntoIterator<Item = (String, String)>,
    ) -> usize {
        let mut count = 0usize;
        let n = self.peers.len();
        for (i, (title, body)) in docs.into_iter().enumerate() {
            let peer_index = i % n;
            let text = format!("{title} {body}");
            let id = self.peers[peer_index].publish(title, body);
            self.centralized.index_text(id, &text);
            count += 1;
        }
        count
    }

    /// Distributes a synthetic corpus round-robin over the peers.
    pub fn distribute_corpus(&mut self, corpus: &SyntheticCorpus) -> usize {
        self.distribute_documents(
            corpus
                .docs
                .iter()
                .map(|d| (d.title.clone(), d.body.clone())),
        )
    }

    /// Total number of documents published across all peers.
    pub fn total_documents(&self) -> usize {
        self.peers.iter().map(|p| p.indexed_documents()).sum()
    }

    // ------------------------------------------------------------------
    // Distributed index construction
    // ------------------------------------------------------------------

    /// How many times a lost control-plane publication (a ranking-statistics
    /// fragment or a sketch frame) is immediately re-sent before the publisher
    /// gives up for this build. With a per-message loss rate `p` the chance of
    /// losing all sends is `p^3` — negligible at realistic rates, but honest:
    /// a fragment or sketch that loses every send is genuinely absent.
    const CONTROL_PUBLISH_ATTEMPTS: u32 = 3;

    /// Publishes every peer's collection statistics to the ranking layer (L4) and
    /// aggregates them into the global statistics used for scoring.
    ///
    /// Under an active fault plane each fragment publication is subject to
    /// the plane's sync-loss rate: a dropped send is still charged (the bytes
    /// crossed the wire before vanishing) and immediately re-sent up to
    /// [`AlvisNetwork::CONTROL_PUBLISH_ATTEMPTS`] times; a fragment that loses
    /// every send is left out of the aggregate. Inactive planes keep the path
    /// byte-identical to the fault-free one.
    fn publish_ranking_stats(&mut self) {
        self.ranking = GlobalRankingStats::new();
        let plane = self.config.faults.clone();
        for (i, peer) in self.peers.iter().enumerate() {
            let fragment = peer.collection_stats();
            let bytes = GlobalRankingStats::fragment_wire_size(&fragment);
            let delivered = if plane.is_active() {
                self.control_seq += 1;
                let seq = self.control_seq;
                let mut delivered = false;
                for attempt in 0..Self::CONTROL_PUBLISH_ATTEMPTS {
                    self.global.charge(TrafficCategory::Ranking, bytes);
                    if !plane.sync_lost(RingId(i as u64), seq, attempt) {
                        delivered = true;
                        break;
                    }
                }
                delivered
            } else {
                self.global.charge(TrafficCategory::Ranking, bytes);
                true
            };
            if delivered {
                self.ranking.merge_fragment(&fragment);
            }
        }
        // Every peer fetches the aggregated summary (doc count + average length).
        for _ in &self.peers {
            self.global.charge(TrafficCategory::Ranking, 24);
        }
    }

    /// Builds the distributed index with the configured [`Strategy`] and returns a
    /// construction report.
    pub fn build_index(&mut self) -> IndexBuildReport {
        let before = self.traffic_snapshot();
        self.publish_ranking_stats();
        let strategy = Arc::clone(&self.config.strategy);
        let mut ctx = IndexerCtx::new(
            &self.peers,
            &mut self.global,
            &self.ranking,
            self.config.bm25,
        )
        .with_faults(self.config.faults.clone());
        self.level_reports = strategy.build_index(&mut ctx);
        self.publish_key_evidence();
        self.index_built = true;

        let after = self.traffic_snapshot();
        let delta = after.since(&before);
        let report = IndexBuildReport {
            strategy: strategy.label().to_string(),
            activated_keys: self.global.activated_keys(),
            total_postings: self.global.total_postings(),
            storage_bytes: self.global.total_storage_bytes(),
            indexing_bytes: delta.category(TrafficCategory::Indexing).bytes,
            ranking_bytes: delta.category(TrafficCategory::Ranking).bytes,
            levels: self.level_reports.clone(),
        };
        self.last_build = Some(report.clone());
        report
    }

    /// Publishes the querier-facing evidence derived from the freshly built
    /// index: per-key maximum scores into the ranking statistics (the
    /// rank-safety bound shared by `ThresholdMode` floors and sketch score
    /// pruning, charged to [`TrafficCategory::Ranking`]) and — under a
    /// cost-based [`SketchPolicy`] — the per-key sketches whose modeled
    /// probe-byte savings cover their measured upkeep (charged to
    /// [`TrafficCategory::Overlay`], cached at the querier).
    fn publish_key_evidence(&mut self) {
        let capacity = self.config.strategy.truncation_k();
        let model = match self.config.sketch_policy {
            SketchPolicy::NoSketches => None,
            SketchPolicy::CostBased(model) => Some(model),
        };
        // Demand estimate: on a cold index (no probe ever observed) every key
        // gets the model's uniform prior; once usage statistics exist, each
        // key's own observed probe count is projected forward instead, so
        // sketch upkeep concentrates on the keys queries actually hit.
        let demand_known = self.global.entries().any(|e| e.usage.probes > 0);
        let mut maxima: Vec<(TermKey, f64, u64)> = Vec::new();
        let mut planned = Vec::new();
        let mut considered = 0usize;
        for entry in self.global.entries().filter(|e| e.activated) {
            let version = self.global.publish_version(&entry.key);
            if let Some(best) = entry.postings.best_score() {
                // Stamped with the key's publish version at recording time:
                // the bound is only sound while the stored list is still at
                // this version (later mutations — re-publications recovering
                // lost updates, post-query indexing — leave it stale, and the
                // rank-safe floor path checks exactly that before trusting it).
                maxima.push((entry.key.clone(), best, version));
            }
            let Some(model) = model else { continue };
            considered += 1;
            let hops = self.global.estimate_hops(0, &entry.key).unwrap_or(0);
            let bound = entry.postings.len().min(capacity);
            let probe_cost = self.global.estimate_probe_bytes(&entry.key, hops, bound);
            let expected = if demand_known {
                entry.usage.probes as f64
            } else {
                model.expected_probes
            };
            if let Some(p) = model.plan(version, &entry.postings, probe_cost, expected) {
                planned.push((entry.key.clone(), p));
            }
        }
        maxima.sort_by(|a, b| a.0.cmp(&b.0));
        for (key, best, version) in maxima {
            self.global.charge(
                TrafficCategory::Ranking,
                GlobalRankingStats::key_max_wire_size(&key),
            );
            self.ranking.record_key_max(&key, best, version);
        }
        planned.sort_by(|a, b| a.0.cmp(&b.0));
        let mut report = SketchBuildReport {
            considered_keys: considered,
            ..SketchBuildReport::default()
        };
        self.sketches.clear();
        let plane = self.config.faults.clone();
        for (key, p) in planned {
            // Sketch frames are control-plane traffic too: under an active
            // plane each send may be lost (charged, then re-sent up to the
            // bound); a sketch losing every send never reaches the querier's
            // cache.
            if plane.is_active() {
                self.control_seq += 1;
                let seq = self.control_seq;
                let mut delivered = false;
                for attempt in 0..Self::CONTROL_PUBLISH_ATTEMPTS {
                    self.global.charge(TrafficCategory::Overlay, p.frame.len());
                    if !plane.sync_lost(key.ring_id(), seq, attempt) {
                        delivered = true;
                        break;
                    }
                }
                if !delivered {
                    continue;
                }
            } else {
                // `charge` adds the wire envelope, so the recorded Overlay
                // bytes equal the measured `upkeep_bytes` (frame + envelope).
                self.global.charge(TrafficCategory::Overlay, p.frame.len());
            }
            report.sketched_keys += 1;
            report.upkeep_bytes += p.upkeep_bytes as u64;
            report.modeled_savings += p.modeled_savings;
            report.decisions.push(SketchDecision {
                key: key.canonical(),
                scores: p.sketch.scores().is_some(),
                membership: p.sketch.membership().is_some(),
                upkeep_bytes: p.upkeep_bytes as u64,
                modeled_savings: p.modeled_savings,
            });
            self.sketches.insert(key, p.sketch);
        }
        self.sketch_report = report;
    }

    /// Whether [`AlvisNetwork::build_index`] has run.
    pub fn index_built(&self) -> bool {
        self.index_built
    }

    /// The report of the most recent [`AlvisNetwork::build_index`] run, if any.
    pub fn last_build_report(&self) -> Option<&IndexBuildReport> {
        self.last_build.as_ref()
    }

    // ------------------------------------------------------------------
    // Retrieval: the plan → execute pipeline
    // ------------------------------------------------------------------

    /// Validates a request against this network. Guards every entry point of the
    /// query pipeline so an out-of-range origin is always a typed [`AlvisError`],
    /// never a peer-indexing panic.
    fn validate_request(&self, request: &QueryRequest) -> Result<(), AlvisError> {
        if request.top_k == 0 {
            return Err(AlvisError::InvalidRequest("top_k must be positive".into()));
        }
        if request.origin >= self.peers.len() {
            return Err(AlvisError::NoSuchPeer {
                origin: request.origin,
                peers: self.peers.len(),
            });
        }
        Ok(())
    }

    /// Plans one [`QueryRequest`] with the configured [`Planner`]: analyzes the
    /// query, consults the strategy's [`Strategy::plan_hints`] and lattice bounds,
    /// and returns the cost-annotated probe schedule. Planning is free — no
    /// traffic is charged and no network state changes.
    pub fn plan(&self, request: &QueryRequest) -> Result<QueryPlan, AlvisError> {
        let planner = Arc::clone(&self.config.planner);
        self.plan_with(planner.as_ref(), request)
    }

    /// Like [`AlvisNetwork::plan`] but with an explicit planner (e.g. to compare
    /// [`BestEffort`] and [`crate::plan::GreedyCost`] schedules side by side).
    pub fn plan_with(
        &self,
        planner: &dyn Planner,
        request: &QueryRequest,
    ) -> Result<QueryPlan, AlvisError> {
        self.validate_request(request)?;
        let terms = self.analyzer.analyze_query_ids(&request.text);
        if terms.is_empty() {
            return Ok(QueryPlan::empty(planner.label(), request.origin));
        }
        let query_key = TermKey::from_term_ids(terms);
        let strategy = &self.config.strategy;
        let ctx = PlanCtx {
            query_key: &query_key,
            origin: request.origin,
            lattice: strategy.lattice_config(&self.config.lattice),
            hints: strategy.plan_hints(),
            capacity: strategy.truncation_k(),
            ranking: &self.ranking,
            global: &self.global,
            sketches: self
                .config
                .sketch_policy
                .enabled()
                .then_some(&self.sketches),
            byte_budget: request.byte_budget,
            hop_budget: request.hop_budget,
        };
        Ok(planner.plan(&ctx))
    }

    /// Runs a [`QueryPlan`] to completion and returns the assembled
    /// [`QueryResponse`]. Budgets are enforced per the plan's
    /// [`crate::plan::BudgetPolicy`].
    pub fn run(
        &mut self,
        plan: &QueryPlan,
        request: &QueryRequest,
    ) -> Result<QueryResponse, AlvisError> {
        self.stream(plan.clone(), request.clone())?.finish()
    }

    /// Runs a plan under an [`ExecutionObserver`] that receives one event per
    /// sent probe (key, outcome, bytes, running top-k) and may early-terminate
    /// the execution once the top-k has stabilised.
    pub fn run_observed(
        &mut self,
        plan: &QueryPlan,
        request: &QueryRequest,
        observer: &mut dyn ExecutionObserver,
    ) -> Result<QueryResponse, AlvisError> {
        let mut stream = self.stream(plan.clone(), request.clone())?;
        while let Some(event) = stream.next_event() {
            let event = event?;
            if matches!(
                observer.on_probe(&event),
                crate::exec::ExecutionControl::Stop
            ) {
                stream.stop();
            }
        }
        let response = stream.finish()?;
        observer.on_complete(&response);
        Ok(response)
    }

    /// Starts a pull-style [`QueryStream`] over the plan: the caller drains
    /// [`crate::exec::ProbeEvent`]s at its own pace and then finishes the stream
    /// into the response.
    ///
    /// The request must originate from the peer the plan was made for: the
    /// plan's cost annotations (and therefore the Reserve policy's
    /// never-exceed-the-budget guarantee) are origin-specific, so a mismatch is
    /// an [`AlvisError::InvalidRequest`].
    pub fn stream(
        &mut self,
        plan: QueryPlan,
        request: QueryRequest,
    ) -> Result<QueryStream<'_>, AlvisError> {
        self.validate_request(&request)?;
        if plan.query_key.is_some() && plan.origin != request.origin {
            return Err(AlvisError::InvalidRequest(format!(
                "plan was made for origin {} but the request originates from {}; \
                 re-plan for the new origin (cost annotations are origin-specific)",
                plan.origin, request.origin
            )));
        }
        Ok(QueryStream::new(self, plan, request))
    }

    /// An explicit [`QueryExecutor`] handle over this network.
    pub fn executor(&mut self) -> QueryExecutor<'_> {
        QueryExecutor::new(self)
    }

    /// Executes one [`QueryRequest`] and returns the ranked results together with
    /// the exploration trace and the traffic the query consumed.
    ///
    /// Thin wrapper over [`AlvisNetwork::plan`] + [`AlvisNetwork::run`] with the
    /// configured planner (default: [`BestEffort`], which keeps the pre-planner
    /// fixed-order budget-cutoff semantics).
    pub fn execute(&mut self, request: &QueryRequest) -> Result<QueryResponse, AlvisError> {
        let plan = self.plan(request)?;
        self.run(&plan, request)
    }

    /// Executes a batch of requests in order, stopping at the first error. Each
    /// request is planned with the configured planner and run like
    /// [`AlvisNetwork::execute`].
    pub fn query_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<QueryResponse>, AlvisError> {
        requests.iter().map(|r| self.execute(r)).collect()
    }

    // ------------------------------------------------------------------
    // Crate-internal execution hooks (used by exec::QueryStream)
    // ------------------------------------------------------------------

    /// Current retrieval-category `(bytes, messages)` totals.
    pub(crate) fn retrieval_totals(&self) -> (u64, u64) {
        let c = self.global.stats().category(TrafficCategory::Retrieval);
        (c.bytes, c.messages)
    }

    /// Registers the start of one query and returns its global sequence number.
    pub(crate) fn begin_query(&mut self) -> u64 {
        self.query_seq += 1;
        self.qdi_report.queries += 1;
        self.query_seq
    }

    /// Sends one planned probe through the global index. `score_floor` is the
    /// executor's threshold feedback: responsible peers encode only the
    /// posting prefix at or above it (see [`GlobalIndex::probe`]); a non-zero
    /// `shed_prefix` is the planner's shedding instruction — the serving peer
    /// degrades to the top-`shed_prefix` posting entries (see
    /// [`crate::plan::ReplicaAware`]).
    pub(crate) fn probe_planned(
        &mut self,
        origin: usize,
        key: &TermKey,
        seq: u64,
        score_floor: Option<f64>,
        shed_prefix: usize,
    ) -> Result<ProbeResult, DhtError> {
        let capacity = self.config.strategy.truncation_k();
        let shed = if shed_prefix > 0 {
            Some(shed_prefix)
        } else {
            None
        };
        self.global
            .probe_with(origin, key, seq, capacity, score_floor, shed)
    }

    /// One attempt of a fault-aware planned probe (see
    /// [`GlobalIndex::probe_attempt`]). Only called by the executor when the
    /// fault plane is active — the inactive-plane fast path stays on
    /// [`AlvisNetwork::probe_planned`], keeping the default byte-identical.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_attempt(
        &mut self,
        origin: usize,
        key: &TermKey,
        seq: u64,
        score_floor: Option<f64>,
        shed_prefix: usize,
        attempt: u32,
        serve_override: Option<usize>,
    ) -> Result<ProbeOutcome, DhtError> {
        let capacity = self.config.strategy.truncation_k();
        let shed = if shed_prefix > 0 {
            Some(shed_prefix)
        } else {
            None
        };
        self.global.probe_attempt(
            origin,
            key,
            seq,
            capacity,
            score_floor,
            shed,
            &self.config.faults,
            attempt,
            serve_override,
        )
    }

    /// Attempts to answer one planned probe from the querier's sketch cache
    /// instead of the network: when a fresh sketch for `key` proves every
    /// stored posting scores below `score_floor`, the wire response is known
    /// in advance (the all-elided frame), so the probe is synthesized locally
    /// for **zero traffic**. Interest still reaches the responsible peer's
    /// usage statistics via [`GlobalIndex::note_interest`] so QDI keeps
    /// observing demand. Returns the synthesized result plus the exact bytes
    /// the probe would have charged — the executor admits those *virtual*
    /// bytes against byte budgets so probe scheduling stays identical with and
    /// without pruning.
    pub(crate) fn sketch_prune(
        &mut self,
        origin: usize,
        key: &TermKey,
        seq: u64,
        score_floor: Option<f64>,
    ) -> Option<(ProbeResult, u64)> {
        if !self.config.sketch_policy.enabled() {
            return None;
        }
        let version = self.global.publish_version(key);
        let sketch = self.sketches.fresh(key, version)?;
        if !sketch.prunes_all_below(score_floor) {
            return None;
        }
        let postings = sketch.pruned_response();
        let response_len = sketch.pruned_response_len();
        let hops = self.global.estimate_hops(origin, key).ok()?;
        let responsible = self.global.responsible_for(key).ok()?;
        let virtual_bytes = self.global.virtual_probe_bytes(key, hops, response_len);
        let capacity = self.config.strategy.truncation_k();
        self.global.note_interest(key, seq, capacity);
        Some((
            ProbeResult {
                key: key.clone(),
                postings: Some(postings),
                hops,
                responsible,
                served_by: responsible,
                replica_set: Vec::new(),
                skipped: false,
                // A pruned probe's savings are already captured whole by
                // `virtual_bytes`; attributing elision here too would
                // double-count against byte budgets.
                skipped_blocks: 0,
                elided_bytes: 0,
            },
            virtual_bytes,
        ))
    }

    /// Lets the strategy observe a finished query (QDI activation/eviction) and
    /// updates the behaviour counters.
    pub(crate) fn post_query_hook(
        &mut self,
        query_key: &TermKey,
        result: &LatticeResult,
        seq: u64,
    ) {
        let strategy = Arc::clone(&self.config.strategy);
        let mut ctx = QueryCtx::new(
            &self.peers,
            &mut self.global,
            &self.ranking,
            self.config.bm25,
            seq,
            &mut self.qdi_report,
        );
        strategy.post_query(&mut ctx, query_key, result);
        let multi_hits = result
            .retrieved
            .iter()
            .filter(|(key, _)| key.len() > 1)
            .count() as u64;
        self.qdi_report.multi_term_hits += multi_hits;
    }

    /// Runs the query against the centralized reference engine (quality baseline).
    pub fn reference_search(&self, text: &str, k: usize) -> Vec<ScoredDoc> {
        self.centralized.search(text, k)
    }

    // ------------------------------------------------------------------
    // Two-step refinement and document access
    // ------------------------------------------------------------------

    /// Second retrieval step: forwards the query to the local engines of the peers
    /// hosting the first-step results and enriches each result with the owner's local
    /// score, title, URL and snippet. Runs automatically for requests built with
    /// [`QueryRequest::with_refinement`].
    pub fn refine(&mut self, query: &str, results: &[ScoredDoc], k: usize) -> Vec<RefinedResult> {
        let mut owners: BTreeSet<u32> = results.iter().take(k).map(|r| r.doc.peer).collect();
        owners.retain(|p| (*p as usize) < self.peers.len());
        // Forward the query to each owner and receive its local ranking.
        for owner in &owners {
            let request = 32 + query.len();
            self.global.charge(TrafficCategory::Retrieval, request);
            let response = 64
                * results
                    .iter()
                    .take(k)
                    .filter(|r| r.doc.peer == *owner)
                    .count();
            self.global.charge(TrafficCategory::Retrieval, response);
        }
        results
            .iter()
            .take(k)
            .map(|r| {
                let owner = r.doc.peer as usize;
                let (local_score, title, url, snippet) = if owner < self.peers.len() {
                    let peer = &self.peers[owner];
                    let local = peer
                        .local_search(query, k.max(20))
                        .into_iter()
                        .find(|s| s.doc == r.doc)
                        .map(|s| s.score);
                    let (title, url) = peer
                        .documents()
                        .get(r.doc)
                        .map(|d| (d.title.clone(), d.url.clone()))
                        .unwrap_or_else(|| (String::new(), String::new()));
                    (local, title, url, peer.snippet(r.doc))
                } else {
                    (None, String::new(), String::new(), String::new())
                };
                RefinedResult {
                    doc: r.doc,
                    global_score: r.score,
                    local_score,
                    title,
                    url,
                    snippet,
                }
            })
            .collect()
    }

    /// Fetches a result document from its hosting peer, enforcing access rights. The
    /// request and response are charged to [`TrafficCategory::Retrieval`].
    pub fn fetch_document(
        &mut self,
        doc: alvisp2p_textindex::DocId,
        credentials: &Credentials,
    ) -> FetchOutcome {
        let owner = doc.peer as usize;
        if owner >= self.peers.len() {
            return FetchOutcome::NotFound;
        }
        self.global.charge(TrafficCategory::Retrieval, 48);
        let outcome = self.peers[owner].fetch(doc, credentials);
        let response_bytes = match &outcome {
            FetchOutcome::Full(d) => d.body.len() + d.title.len() + 32,
            FetchOutcome::Metadata {
                snippet,
                title,
                url,
            } => snippet.len() + title.len() + url.len(),
            _ => 8,
        };
        self.global
            .charge(TrafficCategory::Retrieval, response_bytes);
        outcome
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Per-peer `(activated keys, storage bytes)` of the global index.
    pub fn index_load_distribution(&self) -> Vec<(usize, usize)> {
        self.global.per_peer_load()
    }

    /// The per-level construction reports of the most recent build (one level
    /// for flat strategies, one per expansion level for HDK).
    pub fn level_reports(&self) -> &[HdkLevelReport] {
        &self.level_reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdk::HdkConfig;
    use crate::qdi::QdiConfig;
    use crate::request::ThresholdMode;
    use crate::strategy::{Qdi, SingleTermFull};
    use alvisp2p_textindex::demo_corpus;

    fn demo_network(strategy: impl Strategy + 'static, peers: usize) -> AlvisNetwork {
        AlvisNetwork::builder()
            .peers(peers)
            .strategy(strategy)
            .seed(7)
            .documents(demo_corpus())
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn distribute_spreads_documents_round_robin() {
        let net = {
            let mut n = demo_network(Hdk::default(), 4);
            assert_eq!(n.total_documents(), 12);
            n.build_index();
            n
        };
        for i in 0..4 {
            assert_eq!(net.peer(i).indexed_documents(), 3);
        }
        assert_eq!(net.centralized().doc_count(), 12);
        assert!(net.index_built());
    }

    #[test]
    fn builder_rejects_invalid_configurations() {
        let err = AlvisNetwork::builder().peers(0).build().unwrap_err();
        assert!(matches!(err, AlvisError::InvalidConfig(_)));
        let err = AlvisNetwork::builder()
            .strategy(Hdk::new(HdkConfig {
                truncation_k: 0,
                ..Default::default()
            }))
            .build()
            .unwrap_err();
        assert!(matches!(err, AlvisError::InvalidConfig(_)));
    }

    #[test]
    fn hdk_query_finds_relevant_documents() {
        let mut net = demo_network(
            Hdk::new(HdkConfig {
                df_max: 2,
                truncation_k: 5,
                ..Default::default()
            }),
            4,
        );
        let report = net.build_index();
        assert!(report.activated_keys > 10);
        assert!(report.indexing_bytes > 0);
        assert!(report.ranking_bytes > 0);
        assert_eq!(report.strategy, "hdk");
        assert!(!report.levels.is_empty());

        let outcome = net
            .execute(&QueryRequest::new("posting list truncated"))
            .unwrap();
        assert!(!outcome.results.is_empty());
        assert!(outcome.bytes > 0);
        assert!(outcome.trace.probes > 0);
        // The top result should also be in the centralized reference's top results.
        let reference = net.reference_search("posting list truncated", 10);
        let ref_docs: Vec<_> = reference.iter().map(|r| r.doc).collect();
        assert!(ref_docs.contains(&outcome.results[0].doc));
    }

    #[test]
    fn single_term_baseline_reaches_reference_quality_with_more_bytes() {
        let mut baseline = demo_network(SingleTermFull, 4);
        baseline.build_index();
        let mut hdk = demo_network(
            Hdk::new(HdkConfig {
                df_max: 2,
                truncation_k: 3,
                ..Default::default()
            }),
            4,
        );
        hdk.build_index();

        let request = QueryRequest::new("peer retrieval index").from_peer(1);
        let b = baseline.execute(&request).unwrap();
        let h = hdk.execute(&request).unwrap();
        let reference = baseline.reference_search(&request.text, 10);
        assert!(!b.results.is_empty());
        // The untruncated baseline reproduces the reference ranking's document set.
        let ref_set: std::collections::HashSet<_> = reference.iter().map(|r| r.doc).collect();
        let base_set: std::collections::HashSet<_> = b.results.iter().map(|r| r.doc).collect();
        assert_eq!(ref_set, base_set);
        // Both answered the query; the HDK network used bounded posting lists.
        assert!(h.bytes > 0 && b.bytes > 0);
    }

    #[test]
    fn qdi_activates_popular_keys_and_improves_hits() {
        // A very small truncation bound forces even the tiny demo corpus to produce
        // truncated single-term lists, so multi-term keys are non-redundant and can be
        // activated on demand.
        let mut net = demo_network(
            Qdi::new(QdiConfig {
                activation_threshold: 2,
                truncation_k: 2,
                ..Default::default()
            }),
            4,
        );
        net.build_index();
        let query = "query driven indexing";
        // Initially the multi-term key is not indexed.
        let first = net.execute(&QueryRequest::new(query)).unwrap();
        assert!(!first.results.is_empty());
        assert_eq!(net.qdi_report().activations, 0);
        // After enough repetitions the popular combination gets activated.
        let batch: Vec<QueryRequest> = (1..3)
            .map(|origin| QueryRequest::new(query).from_peer(origin))
            .collect();
        let responses = net.query_batch(&batch).unwrap();
        assert_eq!(responses.len(), 2);
        assert!(net.qdi_report().activations >= 1, "{:?}", net.qdi_report());
        // Subsequent queries hit the activated multi-term key.
        let later = net.execute(&QueryRequest::new(query).from_peer(3)).unwrap();
        let multi_found = later.trace.found_keys().iter().any(|k| k.len() > 1);
        assert!(multi_found, "trace: {:?}", later.trace.nodes);
        assert!(net.qdi_report().multi_term_hits >= 1);
    }

    #[test]
    fn empty_query_and_bad_requests_are_handled() {
        let mut net = demo_network(Hdk::default(), 2);
        net.build_index();
        let empty = net.execute(&QueryRequest::new("the of and")).unwrap();
        assert!(empty.results.is_empty());
        assert_eq!(empty.bytes, 0);
        assert!(matches!(
            net.execute(&QueryRequest::new("peer").from_peer(99)),
            Err(AlvisError::NoSuchPeer {
                origin: 99,
                peers: 2
            })
        ));
        assert!(matches!(
            net.execute(&QueryRequest::new("peer").top_k(0)),
            Err(AlvisError::InvalidRequest(_))
        ));
    }

    #[test]
    fn refinement_enriches_results_with_owner_metadata() {
        let mut net = demo_network(Hdk::default(), 3);
        net.build_index();
        let outcome = net
            .execute(
                &QueryRequest::new("congestion control overlay")
                    .top_k(5)
                    .with_refinement(),
            )
            .unwrap();
        assert!(!outcome.results.is_empty());
        let refined = &outcome.refined;
        assert_eq!(refined.len(), outcome.results.len().min(5));
        let top = &refined[0];
        assert!(!top.title.is_empty());
        assert!(top.url.starts_with("http://peer"));
        assert!(!top.snippet.is_empty());
        assert!(top.local_score.is_some());
        assert!(top.global_score > 0.0);
    }

    #[test]
    fn fetch_document_respects_access_rights_through_the_network() {
        let mut net = demo_network(Hdk::default(), 2);
        net.build_index();
        let outcome = net
            .execute(&QueryRequest::new("access rights shared documents").top_k(5))
            .unwrap();
        assert!(!outcome.results.is_empty());
        let doc = outcome.results[0].doc;
        match net.fetch_document(doc, &Credentials::anonymous()) {
            FetchOutcome::Full(d) => assert!(!d.body.is_empty()),
            other => panic!("expected full document, got {other:?}"),
        }
        assert!(matches!(
            net.fetch_document(
                alvisp2p_textindex::DocId::new(99, 0),
                &Credentials::anonymous()
            ),
            FetchOutcome::NotFound
        ));
    }

    #[test]
    fn index_load_is_distributed_over_peers() {
        let mut net = demo_network(
            Hdk::new(HdkConfig {
                df_max: 2,
                ..Default::default()
            }),
            6,
        );
        net.build_index();
        let load = net.index_load_distribution();
        assert_eq!(load.len(), 6);
        let peers_with_keys = load.iter().filter(|(k, _)| *k > 0).count();
        assert!(peers_with_keys >= 3, "load: {load:?}");
    }

    #[test]
    fn budgets_bound_exploration_and_are_reported() {
        let mut net = demo_network(Hdk::default(), 4);
        net.build_index();
        // A tiny byte budget stops probing almost immediately.
        let tight = net
            .execute(&QueryRequest::new("peer to peer retrieval").byte_budget(1))
            .unwrap();
        assert!(tight.budget_exhausted);
        // A generous budget changes nothing.
        let loose = net
            .execute(&QueryRequest::new("peer to peer retrieval").byte_budget(u64::MAX))
            .unwrap();
        assert!(!loose.budget_exhausted);
        assert!(!loose.results.is_empty());
        // Hop budgets behave the same way.
        let hops = net
            .execute(&QueryRequest::new("peer to peer retrieval").hop_budget(usize::MAX))
            .unwrap();
        assert!(!hops.budget_exhausted);
    }

    #[test]
    fn exhausting_the_lattice_exactly_at_the_budget_is_not_truncation() {
        // budget_exhausted means "a budget withheld a probe", not "the budget
        // happened to be fully spent": a budget equal to the query's exact
        // budget-free spend must not be reported as truncation.
        let mut reference = demo_network(Hdk::default(), 4);
        reference.build_index();
        let free = reference
            .execute(&QueryRequest::new("peer to peer retrieval"))
            .unwrap();

        let mut net = demo_network(Hdk::default(), 4);
        net.build_index();
        let exact = net
            .execute(&QueryRequest::new("peer to peer retrieval").byte_budget(free.bytes))
            .unwrap();
        assert_eq!(exact.bytes, free.bytes);
        assert!(!exact.budget_exhausted);

        let mut net = demo_network(Hdk::default(), 4);
        net.build_index();
        let exact_hops = net
            .execute(&QueryRequest::new("peer to peer retrieval").hop_budget(free.hops))
            .unwrap();
        assert_eq!(exact_hops.hops, free.hops);
        assert!(!exact_hops.budget_exhausted);
    }

    // ------------------------------------------------------------------
    // The plan → execute pipeline
    // ------------------------------------------------------------------

    #[test]
    fn plan_then_run_matches_execute_exactly() {
        let mut planned = demo_network(Hdk::default(), 4);
        planned.build_index();
        let mut direct = demo_network(Hdk::default(), 4);
        direct.build_index();

        let request = QueryRequest::new("peer to peer retrieval").from_peer(2);
        let plan = planned.plan(&request).unwrap();
        assert_eq!(plan.planner, "best-effort");
        assert!(plan.est_total_bytes > 0);
        let via_plan = planned.run(&plan, &request).unwrap();
        let via_execute = direct.execute(&request).unwrap();

        assert_eq!(via_plan.trace.nodes, via_execute.trace.nodes);
        assert_eq!(via_plan.bytes, via_execute.bytes);
        assert_eq!(via_plan.hops, via_execute.hops);
        let plan_docs: Vec<_> = via_plan.results.iter().map(|r| r.doc).collect();
        let exec_docs: Vec<_> = via_execute.results.iter().map(|r| r.doc).collect();
        assert_eq!(plan_docs, exec_docs);
    }

    #[test]
    fn planning_is_free_and_annotates_costs() {
        let mut net = demo_network(Hdk::default(), 4);
        net.build_index();
        net.reset_traffic();
        let request = QueryRequest::new("peer to peer retrieval");
        let plan = net.plan(&request).unwrap();
        let greedy = net
            .plan_with(&crate::plan::GreedyCost::default(), &request)
            .unwrap();
        assert_eq!(net.traffic_snapshot().bytes_sent(), 0, "planning is free");
        assert!(plan.scheduled_probes() > 0);
        assert!(greedy.scheduled_probes() > 0);
        for node in greedy.probes() {
            assert!(node.est_bytes > 0);
        }
        // The schedules cover the same lattice.
        assert_eq!(plan.nodes.len(), greedy.nodes.len());
    }

    #[test]
    fn greedy_cost_reserve_policy_never_exceeds_budgets() {
        for budget in [1u64, 300, 800, 2_000, 10_000] {
            let mut net = demo_network(Hdk::default(), 4);
            net.build_index();
            net.reset_traffic();
            let request =
                QueryRequest::new("peer to peer retrieval overlay network").byte_budget(budget);
            let plan = net
                .plan_with(&crate::plan::GreedyCost::default(), &request)
                .unwrap();
            let response = net.run(&plan, &request).unwrap();
            assert!(
                response.bytes <= budget,
                "spent {} with byte budget {budget}",
                response.bytes
            );
        }
        for hop_budget in [0usize, 2, 5, 20] {
            let mut net = demo_network(Hdk::default(), 4);
            net.build_index();
            let request =
                QueryRequest::new("peer to peer retrieval overlay network").hop_budget(hop_budget);
            let plan = net
                .plan_with(&crate::plan::GreedyCost::default(), &request)
                .unwrap();
            let response = net.run(&plan, &request).unwrap();
            assert!(
                response.hops <= hop_budget,
                "spent {} hops with budget {hop_budget}",
                response.hops
            );
        }
    }

    #[test]
    fn stream_yields_per_probe_events_with_running_top_k() {
        let mut net = demo_network(Hdk::default(), 4);
        net.build_index();
        let request = QueryRequest::new("peer to peer retrieval").top_k(5);
        let plan = net.plan(&request).unwrap();
        let scheduled = plan.scheduled_probes();
        let mut stream = net.stream(plan, request).unwrap();
        let mut events = Vec::new();
        while let Some(event) = stream.next_event() {
            events.push(event.unwrap());
        }
        let response = stream.finish().unwrap();
        assert!(!events.is_empty());
        assert!(events.len() <= scheduled);
        assert_eq!(events.len(), response.trace.probes);
        for (i, event) in events.iter().enumerate() {
            assert_eq!(event.index, i);
            assert_eq!(event.planned, scheduled);
            assert!(event.bytes > 0);
            assert!(event.spent_bytes >= event.bytes);
            assert!(event.top_k.len() <= 5);
        }
        // The last event's running top-k equals the final ranking.
        let last_docs: Vec<_> = events.last().unwrap().top_k.iter().map(|r| r.doc).collect();
        let final_docs: Vec<_> = response.results.iter().map(|r| r.doc).collect();
        assert_eq!(last_docs, final_docs);
        // Cumulative spend adds up to the response's first-step bytes.
        assert_eq!(events.last().unwrap().spent_bytes, response.bytes);
    }

    #[test]
    fn observer_can_stop_once_the_top_k_stabilises() {
        struct StopAfter {
            probes: usize,
            seen: usize,
        }
        impl crate::exec::ExecutionObserver for StopAfter {
            fn on_probe(
                &mut self,
                _event: &crate::exec::ProbeEvent,
            ) -> crate::exec::ExecutionControl {
                self.seen += 1;
                if self.seen >= self.probes {
                    crate::exec::ExecutionControl::Stop
                } else {
                    crate::exec::ExecutionControl::Continue
                }
            }
        }

        let mut full = demo_network(Hdk::default(), 4);
        full.build_index();
        let request = QueryRequest::new("peer to peer retrieval");
        let plan = full.plan(&request).unwrap();
        let unbounded = full.run(&plan, &request).unwrap();
        assert!(unbounded.trace.probes > 1);

        let mut net = demo_network(Hdk::default(), 4);
        net.build_index();
        let plan = net.plan(&request).unwrap();
        let mut observer = StopAfter { probes: 1, seen: 0 };
        let stopped = net.run_observed(&plan, &request, &mut observer).unwrap();
        assert_eq!(stopped.trace.probes, 1);
        assert!(stopped.bytes < unbounded.bytes);

        // The built-in stabilisation observer terminates too (possibly at the
        // natural end of the plan) and never changes the result set ordering
        // rules.
        let mut net = demo_network(Hdk::default(), 4);
        net.build_index();
        let plan = net.plan(&request).unwrap();
        let mut stable = crate::exec::StableTopK::new(2);
        let observed = net.run_observed(&plan, &request, &mut stable).unwrap();
        assert!(!observed.results.is_empty());
        assert!(observed.trace.probes <= unbounded.trace.probes);
    }

    #[test]
    fn lost_publications_are_republished_until_the_index_converges() {
        let mut reference = demo_network(Hdk::default(), 4);
        reference.build_index();
        let request = QueryRequest::new("peer to peer retrieval");
        let want: Vec<_> = reference
            .execute(&request)
            .unwrap()
            .results
            .iter()
            .map(|r| r.doc)
            .collect();

        let mut net = demo_network(Hdk::default(), 4);
        net.set_fault_plane(FaultPlane::seeded(9).with_publish_loss(0.4));
        net.build_index();
        let dropped = net.pending_publishes();
        assert!(dropped > 0, "a 40% publish-loss build should drop some");
        // The bounded-backoff re-publication schedule drains the pending set.
        let mut rounds = 0;
        while net.pending_publishes() > 0 {
            net.republish_round();
            rounds += 1;
            assert!(rounds < 200, "re-publication did not converge");
        }
        // Re-publication traffic is Overlay, never Retrieval.
        assert!(
            net.traffic_snapshot()
                .category(TrafficCategory::Overlay)
                .bytes
                > 0
        );
        // Once every publication landed, the index answers like the
        // fault-free build.
        let got: Vec<_> = net
            .execute(&request)
            .unwrap()
            .results
            .iter()
            .map(|r| r.doc)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn stale_key_maxima_fall_back_to_conservative_floors() {
        // Lossy build: key-max evidence is recorded against the partially
        // published lists, then re-publication completes the lists and bumps
        // their versions — leaving the cached maxima stale (the true maximum
        // may now exceed them). Rank-safe execution must refuse to build
        // floors from those caps and fall back per probe, counted in
        // `rank_safe_fallbacks`.
        let mut net = demo_network(Hdk::default(), 4);
        net.set_fault_plane(FaultPlane::seeded(9).with_publish_loss(0.4));
        net.build_index();
        while net.pending_publishes() > 0 {
            net.republish_round();
        }
        let stale: Vec<TermKey> = net
            .global
            .entries()
            .filter(|e| e.activated)
            .map(|e| e.key.clone())
            .filter(|key| {
                let version = net.global.publish_version(key);
                net.ranking.key_max_score(key).is_some()
                    && net.ranking.key_max_fresh(key, version).is_none()
            })
            .collect();
        assert!(
            !stale.is_empty(),
            "drained re-publication should leave some cached maxima stale"
        );

        // The same lossy build is deterministic, so a second network is an
        // exact replica to run the Off reference against.
        let mut off_net = demo_network(Hdk::default(), 4);
        off_net.set_fault_plane(FaultPlane::seeded(9).with_publish_loss(0.4));
        off_net.build_index();
        while off_net.pending_publishes() > 0 {
            off_net.republish_round();
        }

        let queries = [
            "peer to peer retrieval",
            "distributed hash table",
            "posting list index",
            "query driven indexing",
            "network peers index",
        ];
        let mut fallbacks = 0usize;
        for (i, text) in queries.iter().enumerate() {
            let base = QueryRequest::new(*text).from_peer(i % 4).top_k(3);
            let safe = net
                .execute(&base.clone().threshold_mode(ThresholdMode::RankSafe))
                .unwrap();
            let off = off_net.execute(&base.threshold_probes(false)).unwrap();
            let safe_docs: Vec<_> = safe.results.iter().map(|r| r.doc).collect();
            let off_docs: Vec<_> = off.results.iter().map(|r| r.doc).collect();
            assert_eq!(safe_docs, off_docs, "query {text:?} diverged");
            fallbacks += safe.rank_safe_fallbacks;
        }
        assert!(
            fallbacks > 0,
            "no probe took the stale-cap Conservative fallback"
        );
    }

    #[test]
    fn repair_api_is_inert_without_replication() {
        let mut net = demo_network(Hdk::default(), 4);
        net.build_index();
        assert_eq!(net.replica_consistency(), 1.0);
        net.set_repair_enabled(true);
        let report = net.repair_round();
        assert_eq!(report.keys_checked, 0);
        assert_eq!(report.digests_exchanged, 0);
        assert_eq!(net.pending_publishes(), 0);
    }

    #[test]
    fn invalid_requests_fail_identically_across_entry_points() {
        let mut net = demo_network(Hdk::default(), 2);
        net.build_index();
        let bad_origin = QueryRequest::new("peer").from_peer(99);
        assert!(matches!(
            net.plan(&bad_origin),
            Err(AlvisError::NoSuchPeer {
                origin: 99,
                peers: 2
            })
        ));
        let ok_plan = net.plan(&QueryRequest::new("peer")).unwrap();
        assert!(matches!(
            net.stream(ok_plan.clone(), bad_origin.clone()),
            Err(AlvisError::NoSuchPeer { .. })
        ));
        assert!(matches!(
            net.run(&ok_plan, &bad_origin),
            Err(AlvisError::NoSuchPeer { .. })
        ));
        assert!(matches!(
            net.plan(&QueryRequest::new("peer").top_k(0)),
            Err(AlvisError::InvalidRequest(_))
        ));
        // A plan is origin-specific: running it for a different (valid) origin
        // would void its cost annotations, so it is rejected.
        assert!(matches!(
            net.run(&ok_plan, &QueryRequest::new("peer").from_peer(1)),
            Err(AlvisError::InvalidRequest(_))
        ));
        // Empty queries plan to an empty schedule and run to an empty response.
        let empty_plan = net.plan(&QueryRequest::new("the of and")).unwrap();
        assert!(empty_plan.is_empty());
        let response = net
            .run(&empty_plan, &QueryRequest::new("the of and"))
            .unwrap();
        assert!(response.is_empty());
        assert_eq!(response.bytes, 0);
    }
}
