//! The AlvisP2P network: peers + overlay + distributed index, driven as one system.
//!
//! [`AlvisNetwork`] composes every layer of the architecture (Figure 2 of the paper):
//! the simulated transport and DHT overlay (L1–L2, crates `alvisp2p-netsim` /
//! `alvisp2p-dht`), the distributed indexing and retrieval components (L3, modules
//! [`crate::hdk`], [`crate::qdi`], [`crate::lattice`], [`crate::global_index`]), the
//! distributed ranking component (L4, [`crate::ranking`]) and the per-peer local
//! search engines (L5, [`crate::peer`], crate `alvisp2p-textindex`).
//!
//! It is the entry point used by the examples, the integration tests and the
//! experiment harness: build a network, distribute a corpus, build the distributed
//! index with one of the three strategies, and run queries while every byte that would
//! cross the wire is accounted.

use crate::baseline::CentralizedEngine;
use crate::global_index::{GlobalIndex, ProbeResult};
use crate::hdk::{self, HdkConfig, HdkLevelReport};
use crate::key::TermKey;
use crate::lattice::{explore_lattice, LatticeConfig, LatticeResult, LatticeTrace};
use crate::peer::{AlvisPeer, FetchOutcome};
use crate::posting::TruncatedPostingList;
use crate::qdi::{activation_decision, is_obsolete, QdiConfig, QdiReport};
use crate::ranking::{score_local_postings, GlobalRankingStats};
use alvisp2p_dht::{DhtConfig, DhtError};
use alvisp2p_netsim::{TrafficCategory, TrafficStats, WireSize};
use alvisp2p_textindex::bm25::{Bm25Params, ScoredDoc};
use alvisp2p_textindex::{Analyzer, Credentials, SyntheticCorpus};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Which distributed indexing strategy the network runs.
#[derive(Clone, Debug)]
pub enum IndexingStrategy {
    /// The single-term baseline of Zhang & Suel (reference [11] of the paper): every
    /// term's **complete** posting list is stored in the DHT and shipped to the
    /// querying peer. Does not scale in bandwidth — that is the point of comparing
    /// against it.
    SingleTermFull,
    /// Highly Discriminative Keys: document-frequency-driven key expansion with
    /// truncated posting lists.
    Hdk(HdkConfig),
    /// Query-Driven Indexing: single-term truncated index plus on-demand activation of
    /// popular term combinations.
    Qdi(QdiConfig),
}

impl IndexingStrategy {
    /// A short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            IndexingStrategy::SingleTermFull => "single-term",
            IndexingStrategy::Hdk(_) => "hdk",
            IndexingStrategy::Qdi(_) => "qdi",
        }
    }

    /// The posting-list truncation bound used when storing entries in the global
    /// index (effectively unbounded for the single-term baseline).
    pub fn truncation_k(&self) -> usize {
        match self {
            IndexingStrategy::SingleTermFull => usize::MAX / 4,
            IndexingStrategy::Hdk(c) => c.truncation_k,
            IndexingStrategy::Qdi(c) => c.truncation_k,
        }
    }
}

/// Configuration of a whole AlvisP2P network.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Number of peers.
    pub peers: usize,
    /// Overlay configuration (routing strategy, identifier distribution, …).
    pub dht: DhtConfig,
    /// Distributed indexing strategy.
    pub strategy: IndexingStrategy,
    /// BM25 parameters used by every ranking component.
    pub bm25: Bm25Params,
    /// Query-lattice exploration parameters.
    pub lattice: LatticeConfig,
    /// Master seed for all randomness.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            peers: 32,
            dht: DhtConfig::default(),
            strategy: IndexingStrategy::Hdk(HdkConfig::default()),
            bm25: Bm25Params::default(),
            lattice: LatticeConfig::default(),
            seed: 42,
        }
    }
}

/// Summary of a distributed index construction run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IndexBuildReport {
    /// Strategy label ("single-term", "hdk", "qdi").
    pub strategy: String,
    /// Number of activated keys in the global index.
    pub activated_keys: usize,
    /// Total posting references stored.
    pub total_postings: usize,
    /// Approximate storage bytes of the global index.
    pub storage_bytes: usize,
    /// Bytes spent on indexing traffic.
    pub indexing_bytes: u64,
    /// Bytes spent publishing/fetching ranking statistics.
    pub ranking_bytes: u64,
    /// Per-level HDK construction summary (empty for the other strategies).
    pub levels: Vec<HdkLevelReport>,
}

/// The outcome of one query.
#[derive(Clone, Debug, Default)]
pub struct QueryOutcome {
    /// Final ranked results (top-k).
    pub results: Vec<ScoredDoc>,
    /// The lattice-exploration trace (what was probed, found, skipped).
    pub trace: LatticeTrace,
    /// Retrieval bytes this query consumed (requests, routing, posting-list
    /// responses).
    pub bytes: u64,
    /// Retrieval messages this query consumed.
    pub messages: u64,
    /// Total overlay hops across all probes.
    pub hops: usize,
}

/// A result enriched by the owning peer's local engine (the two-step refinement).
#[derive(Clone, Debug)]
pub struct RefinedResult {
    /// The document.
    pub doc: alvisp2p_textindex::DocId,
    /// The distributed (first-step) score.
    pub global_score: f64,
    /// The owning peer's local score, when its local engine also matched the query.
    pub local_score: Option<f64>,
    /// Result title (if the owner still hosts the document).
    pub title: String,
    /// URL at the hosting peer.
    pub url: String,
    /// Snippet produced by the hosting peer.
    pub snippet: String,
}

/// Errors surfaced by network-level operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// The underlying overlay failed (bad origin, lookup failure, empty network).
    Dht(DhtError),
    /// The originating peer index is out of range.
    NoSuchPeer(usize),
}

impl From<DhtError> for NetworkError {
    fn from(e: DhtError) -> Self {
        NetworkError::Dht(e)
    }
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Dht(e) => write!(f, "overlay error: {e}"),
            NetworkError::NoSuchPeer(i) => write!(f, "no such peer: {i}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A complete AlvisP2P network under simulation.
pub struct AlvisNetwork {
    config: NetworkConfig,
    peers: Vec<AlvisPeer>,
    global: GlobalIndex,
    ranking: GlobalRankingStats,
    centralized: CentralizedEngine,
    analyzer: Analyzer,
    query_seq: u64,
    qdi_report: QdiReport,
    hdk_levels: Vec<HdkLevelReport>,
    index_built: bool,
    last_build: Option<IndexBuildReport>,
}

impl AlvisNetwork {
    /// Builds a network of `config.peers` peers with an already-stabilised overlay.
    pub fn new(config: NetworkConfig) -> Self {
        let global = GlobalIndex::new(config.dht.clone(), config.seed, config.peers);
        let peers = (0..config.peers).map(|i| AlvisPeer::new(i as u32)).collect();
        let centralized = CentralizedEngine::new(config.bm25);
        AlvisNetwork {
            peers,
            global,
            ranking: GlobalRankingStats::new(),
            centralized,
            analyzer: Analyzer::default(),
            query_seq: 0,
            qdi_report: QdiReport::default(),
            hdk_levels: Vec::new(),
            index_built: false,
            last_build: None,
            config,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Immutable access to a peer.
    pub fn peer(&self, index: usize) -> &AlvisPeer {
        &self.peers[index]
    }

    /// Mutable access to a peer (e.g. to publish more documents).
    pub fn peer_mut(&mut self, index: usize) -> &mut AlvisPeer {
        &mut self.peers[index]
    }

    /// The global distributed index.
    pub fn global_index(&self) -> &GlobalIndex {
        &self.global
    }

    /// Mutable access to the global distributed index (used by churn experiments and
    /// examples to drive overlay-level events such as joins, departures and failures).
    pub fn global_index_mut(&mut self) -> &mut GlobalIndex {
        &mut self.global
    }

    /// The aggregated global ranking statistics.
    pub fn ranking_stats(&self) -> &GlobalRankingStats {
        &self.ranking
    }

    /// The centralized reference engine over the same collection.
    pub fn centralized(&self) -> &CentralizedEngine {
        &self.centralized
    }

    /// Accumulated traffic statistics.
    pub fn traffic(&self) -> &TrafficStats {
        self.global.stats()
    }

    /// Snapshot of the traffic statistics.
    pub fn traffic_snapshot(&self) -> TrafficStats {
        self.global.stats_snapshot()
    }

    /// Resets the traffic statistics (e.g. to isolate the retrieval phase).
    pub fn reset_traffic(&mut self) {
        self.global.reset_stats();
    }

    /// The QDI behaviour counters accumulated so far.
    pub fn qdi_report(&self) -> QdiReport {
        self.qdi_report
    }

    /// The global query sequence number (number of queries processed).
    pub fn queries_processed(&self) -> u64 {
        self.query_seq
    }

    // ------------------------------------------------------------------
    // Corpus distribution
    // ------------------------------------------------------------------

    /// Distributes `(title, body)` documents round-robin over the peers and indexes
    /// them locally (layer 5). The centralized reference engine indexes the same
    /// documents.
    pub fn distribute_documents(
        &mut self,
        docs: impl IntoIterator<Item = (String, String)>,
    ) -> usize {
        let mut count = 0usize;
        let n = self.peers.len();
        for (i, (title, body)) in docs.into_iter().enumerate() {
            let peer_index = i % n;
            let text = format!("{title} {body}");
            let id = self.peers[peer_index].publish(title, body);
            self.centralized.index_text(id, &text);
            count += 1;
        }
        count
    }

    /// Distributes a synthetic corpus round-robin over the peers.
    pub fn distribute_corpus(&mut self, corpus: &SyntheticCorpus) -> usize {
        self.distribute_documents(
            corpus
                .docs
                .iter()
                .map(|d| (d.title.clone(), d.body.clone())),
        )
    }

    /// Total number of documents published across all peers.
    pub fn total_documents(&self) -> usize {
        self.peers.iter().map(|p| p.indexed_documents()).sum()
    }

    // ------------------------------------------------------------------
    // Distributed index construction
    // ------------------------------------------------------------------

    /// Publishes every peer's collection statistics to the ranking layer (L4) and
    /// aggregates them into the global statistics used for scoring.
    fn publish_ranking_stats(&mut self) {
        self.ranking = GlobalRankingStats::new();
        for peer in &self.peers {
            let fragment = peer.collection_stats();
            let bytes = GlobalRankingStats::fragment_wire_size(&fragment);
            self.global.charge(TrafficCategory::Ranking, bytes);
            self.ranking.merge_fragment(&fragment);
        }
        // Every peer fetches the aggregated summary (doc count + average length).
        for _ in &self.peers {
            self.global.charge(TrafficCategory::Ranking, 24);
        }
    }

    /// Builds the distributed index according to the configured strategy and returns a
    /// construction report.
    pub fn build_index(&mut self) -> IndexBuildReport {
        let before = self.traffic_snapshot();
        self.publish_ranking_stats();
        let strategy = self.config.strategy.clone();
        match &strategy {
            IndexingStrategy::SingleTermFull => self.build_single_term(usize::MAX / 4),
            IndexingStrategy::Qdi(config) => self.build_single_term(config.truncation_k),
            IndexingStrategy::Hdk(config) => self.build_hdk(config),
        }
        self.index_built = true;

        let after = self.traffic_snapshot();
        let delta = after.since(&before);
        let report = IndexBuildReport {
            strategy: strategy.label().to_string(),
            activated_keys: self.global.activated_keys(),
            total_postings: self.global.total_postings(),
            storage_bytes: self.global.total_storage_bytes(),
            indexing_bytes: delta.category(TrafficCategory::Indexing).bytes,
            ranking_bytes: delta.category(TrafficCategory::Ranking).bytes,
            levels: self.hdk_levels.clone(),
        };
        self.last_build = Some(report.clone());
        report
    }

    /// Whether [`AlvisNetwork::build_index`] has run.
    pub fn index_built(&self) -> bool {
        self.index_built
    }

    /// The report of the most recent [`AlvisNetwork::build_index`] run, if any.
    pub fn last_build_report(&self) -> Option<&IndexBuildReport> {
        self.last_build.as_ref()
    }

    /// Level 1 of every strategy: each peer publishes a posting-list contribution for
    /// every term of its local vocabulary, truncated to `capacity`.
    fn build_single_term(&mut self, capacity: usize) {
        let params = self.config.bm25;
        let mut candidates = 0usize;
        for peer_index in 0..self.peers.len() {
            let vocabulary: Vec<String> = self.peers[peer_index]
                .index()
                .vocabulary()
                .map(str::to_string)
                .collect();
            for term in vocabulary {
                let key = TermKey::single(&term);
                let list = score_local_postings(
                    self.peers[peer_index].index(),
                    &key,
                    &self.ranking,
                    params,
                    capacity,
                );
                if list.is_empty() {
                    continue;
                }
                candidates += 1;
                // A peer publishes from its own overlay node.
                let _ = self.global.publish_postings(peer_index, &key, &list, capacity);
            }
        }
        let (discriminative, frequent) = self.count_level_keys(1, capacity);
        self.hdk_levels = vec![HdkLevelReport {
            level: 1,
            candidates,
            discriminative,
            frequent,
        }];
    }

    /// Full HDK construction: single-term level plus expansion levels.
    fn build_hdk(&mut self, config: &HdkConfig) {
        self.build_single_term(config.truncation_k);
        let params = self.config.bm25;

        // Globally frequent single terms (observed by the responsible peers).
        let frequent_terms: BTreeSet<String> = self
            .global
            .entries()
            .filter(|e| e.activated && e.key.is_single() && e.postings.full_df() > config.df_max as u64)
            .map(|e| e.key.terms()[0].clone())
            .collect();
        // Every peer learns which of its local terms are frequent (a small notification
        // from each responsible peer, piggybacked on the publication acknowledgement).
        for peer in &self.peers {
            let local_frequent = peer
                .index()
                .vocabulary()
                .filter(|t| frequent_terms.contains(*t))
                .count();
            self.global
                .charge(TrafficCategory::Indexing, 9 * local_frequent + 16);
        }

        let mut frequent_parents: BTreeSet<TermKey> = hdk::single_term_keys(&frequent_terms);

        for level in 2..=config.max_key_len {
            if frequent_parents.is_empty() {
                break;
            }
            let mut level_candidates: BTreeSet<TermKey> = BTreeSet::new();
            for peer_index in 0..self.peers.len() {
                // Candidates this peer generates from its local documents.
                let docs = self.peers[peer_index].index().documents();
                let mut peer_candidates: BTreeSet<TermKey> = BTreeSet::new();
                for doc in docs {
                    let doc_terms = self.peers[peer_index].index().doc_term_positions(doc);
                    for cand in hdk::generate_doc_candidates(
                        &doc_terms,
                        &frequent_parents,
                        &frequent_terms,
                        level,
                        config,
                    ) {
                        peer_candidates.insert(cand);
                    }
                }
                // Publish this peer's contribution for each of its candidates.
                for key in &peer_candidates {
                    let list = score_local_postings(
                        self.peers[peer_index].index(),
                        key,
                        &self.ranking,
                        params,
                        config.truncation_k,
                    );
                    if list.is_empty() {
                        continue;
                    }
                    let _ = self.global.publish_postings(
                        peer_index,
                        key,
                        &list,
                        config.truncation_k,
                    );
                    level_candidates.insert(key.clone());
                }
            }

            let (discriminative, frequent) = self.count_level_keys(level, config.truncation_k);
            self.hdk_levels.push(HdkLevelReport {
                level,
                candidates: level_candidates.len(),
                discriminative,
                frequent,
            });

            // The frequent keys of this level seed the next level's expansions.
            frequent_parents = self
                .global
                .entries()
                .filter(|e| {
                    e.activated
                        && e.key.len() == level
                        && e.postings.full_df() > config.df_max as u64
                })
                .map(|e| e.key.clone())
                .collect();
        }
    }

    fn count_level_keys(&self, level: usize, _capacity: usize) -> (usize, usize) {
        let df_max = match &self.config.strategy {
            IndexingStrategy::Hdk(c) => c.df_max as u64,
            IndexingStrategy::Qdi(c) => c.truncation_k as u64,
            IndexingStrategy::SingleTermFull => u64::MAX,
        };
        let mut discriminative = 0usize;
        let mut frequent = 0usize;
        for e in self.global.entries() {
            if e.activated && e.key.len() == level {
                if e.postings.full_df() > df_max {
                    frequent += 1;
                } else {
                    discriminative += 1;
                }
            }
        }
        (discriminative, frequent)
    }

    // ------------------------------------------------------------------
    // Retrieval
    // ------------------------------------------------------------------

    /// Runs a query from peer `origin` and returns the top-`k` results together with
    /// the exploration trace and the traffic the query consumed.
    pub fn query(&mut self, origin: usize, text: &str, k: usize) -> Result<QueryOutcome, NetworkError> {
        if origin >= self.peers.len() {
            return Err(NetworkError::NoSuchPeer(origin));
        }
        let terms = self.analyzer.analyze_query(text);
        if terms.is_empty() {
            return Ok(QueryOutcome::default());
        }
        self.query_seq += 1;
        self.qdi_report.queries += 1;
        let seq = self.query_seq;
        let before = self.traffic_snapshot();

        let query_key = TermKey::new(terms);
        let capacity = self.config.strategy.truncation_k();
        let lattice_config = match &self.config.strategy {
            IndexingStrategy::SingleTermFull => LatticeConfig {
                // The baseline has no multi-term keys: only the single terms are
                // fetched, each with its complete posting list.
                prune_below_truncated: false,
                max_probe_len: 1,
                max_probes: self.config.lattice.max_probes,
            },
            _ => self.config.lattice.clone(),
        };

        let lattice_result = self.run_lattice(origin, &query_key, &lattice_config, seq, capacity)?;

        // Query-Driven Indexing: popular missing combinations are activated on demand.
        if let IndexingStrategy::Qdi(qdi_config) = self.config.strategy.clone() {
            self.qdi_activation_pass(&query_key, &lattice_result, &qdi_config);
            self.qdi_eviction_pass(seq, &qdi_config);
        }

        let results = crate::ranking::merge_retrieved(&lattice_result.retrieved, k);
        let multi_hits = lattice_result
            .retrieved
            .iter()
            .filter(|(key, _)| key.len() > 1)
            .count() as u64;
        self.qdi_report.multi_term_hits += multi_hits;

        let delta = self.traffic_snapshot().since(&before);
        let retrieval = delta.category(TrafficCategory::Retrieval);
        Ok(QueryOutcome {
            results,
            hops: lattice_result.trace.hops,
            trace: lattice_result.trace,
            bytes: retrieval.bytes,
            messages: retrieval.messages,
        })
    }

    fn run_lattice(
        &mut self,
        origin: usize,
        query_key: &TermKey,
        lattice_config: &LatticeConfig,
        seq: u64,
        capacity: usize,
    ) -> Result<LatticeResult, NetworkError> {
        // For the single-term baseline, the full query key itself must not be probed
        // (only singles exist); max_probe_len=1 already ensures only singles and the
        // query itself are candidates, so explicitly skip the multi-term query key by
        // probing it only when it is a single term.
        let single_term_only = lattice_config.max_probe_len == 1;
        let global = &mut self.global;
        let result = explore_lattice(query_key, lattice_config, |key| {
            if single_term_only && key.len() > 1 {
                return Ok::<ProbeResult, DhtError>(ProbeResult {
                    key: key.clone(),
                    postings: None,
                    hops: 0,
                    responsible: 0,
                });
            }
            global.probe(origin, key, seq, capacity)
        })?;
        Ok(result)
    }

    /// Checks every probed-but-missing multi-term key for QDI activation.
    fn qdi_activation_pass(
        &mut self,
        _query_key: &TermKey,
        lattice_result: &LatticeResult,
        config: &QdiConfig,
    ) {
        let missing_keys: Vec<TermKey> = lattice_result
            .trace
            .nodes
            .iter()
            .filter(|(k, o)| {
                matches!(o, crate::lattice::NodeOutcome::Missing) && k.len() >= 2
            })
            .map(|(k, _)| k.clone())
            .collect();
        for key in missing_keys {
            let Some(usage) = self.global.usage(&key) else { continue };
            // Redundancy: are complete results for this key already available from a
            // retrieved subset key?
            let redundant = lattice_result
                .retrieved
                .iter()
                .any(|(k2, list)| k2.is_subset_of(&key) && !list.is_truncated());
            let decision = activation_decision(
                &usage,
                false,
                key.len(),
                Some(!redundant),
                config,
            );
            if !decision.should_activate() {
                continue;
            }
            self.activate_key(&key, config);
        }
    }

    /// The on-demand indexing step: the responsible peer acquires a bounded top-k
    /// posting list for the key from the peers holding matching documents.
    fn activate_key(&mut self, key: &TermKey, config: &QdiConfig) {
        let params = self.config.bm25;
        let mut merged = TruncatedPostingList::new(config.truncation_k);
        let mut acquisition_bytes = 0usize;
        for peer in &self.peers {
            let list = score_local_postings(
                peer.index(),
                key,
                &self.ranking,
                params,
                config.truncation_k,
            );
            if list.is_empty() {
                continue;
            }
            // Request to the contributing peer + its response carrying the local top-k.
            acquisition_bytes += 48 + key.wire_size() + list.wire_size();
            merged.merge(&list);
        }
        self.global
            .charge(TrafficCategory::Indexing, acquisition_bytes);
        if let Ok(responsible) = self.global.dht().responsible_for(key.ring_id()) {
            self.global.store_acquired(responsible, key, merged);
            self.qdi_report.activations += 1;
            self.qdi_report.acquisition_bytes += acquisition_bytes as u64;
        }
    }

    /// Periodically deactivates keys that have not been queried within the
    /// obsolescence window.
    fn qdi_eviction_pass(&mut self, seq: u64, config: &QdiConfig) {
        if config.eviction_period == 0 || seq % config.eviction_period != 0 {
            return;
        }
        let obsolete: Vec<TermKey> = self
            .global
            .entries()
            .filter(|e| e.activated && e.key.len() >= 2 && is_obsolete(&e.usage, seq, config))
            .map(|e| e.key.clone())
            .collect();
        for key in obsolete {
            if self.global.deactivate(&key) {
                self.qdi_report.evictions += 1;
            }
        }
    }

    /// Runs the query against the centralized reference engine (quality baseline).
    pub fn reference_search(&self, text: &str, k: usize) -> Vec<ScoredDoc> {
        self.centralized.search(text, k)
    }

    // ------------------------------------------------------------------
    // Two-step refinement and document access
    // ------------------------------------------------------------------

    /// Second retrieval step: forwards the query to the local engines of the peers
    /// hosting the first-step results and enriches each result with the owner's local
    /// score, title, URL and snippet.
    pub fn refine(&mut self, query: &str, results: &[ScoredDoc], k: usize) -> Vec<RefinedResult> {
        let mut owners: BTreeSet<u32> = results.iter().take(k).map(|r| r.doc.peer).collect();
        owners.retain(|p| (*p as usize) < self.peers.len());
        // Forward the query to each owner and receive its local ranking.
        for owner in &owners {
            let request = 32 + query.len();
            self.global.charge(TrafficCategory::Retrieval, request);
            let response = 64 * results.iter().take(k).filter(|r| r.doc.peer == *owner).count();
            self.global.charge(TrafficCategory::Retrieval, response);
        }
        results
            .iter()
            .take(k)
            .map(|r| {
                let owner = r.doc.peer as usize;
                let (local_score, title, url, snippet) = if owner < self.peers.len() {
                    let peer = &self.peers[owner];
                    let local = peer
                        .local_search(query, k.max(20))
                        .into_iter()
                        .find(|s| s.doc == r.doc)
                        .map(|s| s.score);
                    let (title, url) = peer
                        .documents()
                        .get(r.doc)
                        .map(|d| (d.title.clone(), d.url.clone()))
                        .unwrap_or_else(|| (String::new(), String::new()));
                    (local, title, url, peer.snippet(r.doc))
                } else {
                    (None, String::new(), String::new(), String::new())
                };
                RefinedResult {
                    doc: r.doc,
                    global_score: r.score,
                    local_score,
                    title,
                    url,
                    snippet,
                }
            })
            .collect()
    }

    /// Fetches a result document from its hosting peer, enforcing access rights. The
    /// request and response are charged to [`TrafficCategory::Retrieval`].
    pub fn fetch_document(
        &mut self,
        doc: alvisp2p_textindex::DocId,
        credentials: &Credentials,
    ) -> FetchOutcome {
        let owner = doc.peer as usize;
        if owner >= self.peers.len() {
            return FetchOutcome::NotFound;
        }
        self.global.charge(TrafficCategory::Retrieval, 48);
        let outcome = self.peers[owner].fetch(doc, credentials);
        let response_bytes = match &outcome {
            FetchOutcome::Full(d) => d.body.len() + d.title.len() + 32,
            FetchOutcome::Metadata { snippet, title, url } => snippet.len() + title.len() + url.len(),
            _ => 8,
        };
        self.global.charge(TrafficCategory::Retrieval, response_bytes);
        outcome
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Per-peer `(activated keys, storage bytes)` of the global index.
    pub fn index_load_distribution(&self) -> Vec<(usize, usize)> {
        self.global.per_peer_load()
    }

    /// The HDK per-level construction reports (empty for other strategies).
    pub fn hdk_level_reports(&self) -> &[HdkLevelReport] {
        &self.hdk_levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alvisp2p_textindex::demo_corpus;

    fn demo_network(strategy: IndexingStrategy, peers: usize) -> AlvisNetwork {
        let config = NetworkConfig {
            peers,
            strategy,
            seed: 7,
            ..Default::default()
        };
        let mut net = AlvisNetwork::new(config);
        net.distribute_documents(demo_corpus());
        net
    }

    #[test]
    fn distribute_spreads_documents_round_robin() {
        let net = {
            let mut n = demo_network(IndexingStrategy::Hdk(HdkConfig::default()), 4);
            assert_eq!(n.total_documents(), 12);
            n.build_index();
            n
        };
        for i in 0..4 {
            assert_eq!(net.peer(i).indexed_documents(), 3);
        }
        assert_eq!(net.centralized().doc_count(), 12);
        assert!(net.index_built());
    }

    #[test]
    fn hdk_query_finds_relevant_documents() {
        let mut net = demo_network(
            IndexingStrategy::Hdk(HdkConfig {
                df_max: 2,
                truncation_k: 5,
                ..Default::default()
            }),
            4,
        );
        let report = net.build_index();
        assert!(report.activated_keys > 10);
        assert!(report.indexing_bytes > 0);
        assert!(report.ranking_bytes > 0);
        assert_eq!(report.strategy, "hdk");
        assert!(!report.levels.is_empty());

        let outcome = net.query(0, "posting list truncated", 10).unwrap();
        assert!(!outcome.results.is_empty());
        assert!(outcome.bytes > 0);
        assert!(outcome.trace.probes > 0);
        // The top result should also be in the centralized reference's top results.
        let reference = net.reference_search("posting list truncated", 10);
        let ref_docs: Vec<_> = reference.iter().map(|r| r.doc).collect();
        assert!(ref_docs.contains(&outcome.results[0].doc));
    }

    #[test]
    fn single_term_baseline_reaches_reference_quality_with_more_bytes() {
        let mut baseline = demo_network(IndexingStrategy::SingleTermFull, 4);
        baseline.build_index();
        let mut hdk = demo_network(
            IndexingStrategy::Hdk(HdkConfig {
                df_max: 2,
                truncation_k: 3,
                ..Default::default()
            }),
            4,
        );
        hdk.build_index();

        let query = "peer retrieval index";
        let b = baseline.query(1, query, 10).unwrap();
        let h = hdk.query(1, query, 10).unwrap();
        let reference = baseline.reference_search(query, 10);
        assert!(!b.results.is_empty());
        // The untruncated baseline reproduces the reference ranking's document set.
        let ref_set: std::collections::HashSet<_> = reference.iter().map(|r| r.doc).collect();
        let base_set: std::collections::HashSet<_> = b.results.iter().map(|r| r.doc).collect();
        assert_eq!(ref_set, base_set);
        // Both answered the query; the HDK network used bounded posting lists.
        assert!(h.bytes > 0 && b.bytes > 0);
    }

    #[test]
    fn qdi_activates_popular_keys_and_improves_hits() {
        // A very small truncation bound forces even the tiny demo corpus to produce
        // truncated single-term lists, so multi-term keys are non-redundant and can be
        // activated on demand.
        let mut net = demo_network(
            IndexingStrategy::Qdi(QdiConfig {
                activation_threshold: 2,
                truncation_k: 2,
                ..Default::default()
            }),
            4,
        );
        net.build_index();
        let query = "query driven indexing";
        // Initially the multi-term key is not indexed.
        let first = net.query(0, query, 10).unwrap();
        assert!(!first.results.is_empty());
        assert_eq!(net.qdi_report().activations, 0);
        // After enough repetitions the popular combination gets activated.
        let _ = net.query(1, query, 10).unwrap();
        let _ = net.query(2, query, 10).unwrap();
        assert!(net.qdi_report().activations >= 1, "{:?}", net.qdi_report());
        // Subsequent queries hit the activated multi-term key.
        let later = net.query(3, query, 10).unwrap();
        let multi_found = later
            .trace
            .found_keys()
            .iter()
            .any(|k| k.len() > 1);
        assert!(multi_found, "trace: {:?}", later.trace.nodes);
        assert!(net.qdi_report().multi_term_hits >= 1);
    }

    #[test]
    fn empty_query_and_bad_origin_are_handled() {
        let mut net = demo_network(IndexingStrategy::Hdk(HdkConfig::default()), 2);
        net.build_index();
        let empty = net.query(0, "the of and", 10).unwrap();
        assert!(empty.results.is_empty());
        assert_eq!(empty.bytes, 0);
        assert!(matches!(
            net.query(99, "peer", 10),
            Err(NetworkError::NoSuchPeer(99))
        ));
    }

    #[test]
    fn refinement_enriches_results_with_owner_metadata() {
        let mut net = demo_network(IndexingStrategy::Hdk(HdkConfig::default()), 3);
        net.build_index();
        let outcome = net.query(0, "congestion control overlay", 5).unwrap();
        assert!(!outcome.results.is_empty());
        let refined = net.refine("congestion control overlay", &outcome.results, 5);
        assert_eq!(refined.len(), outcome.results.len().min(5));
        let top = &refined[0];
        assert!(!top.title.is_empty());
        assert!(top.url.starts_with("http://peer"));
        assert!(!top.snippet.is_empty());
        assert!(top.local_score.is_some());
        assert!(top.global_score > 0.0);
    }

    #[test]
    fn fetch_document_respects_access_rights_through_the_network() {
        let mut net = demo_network(IndexingStrategy::Hdk(HdkConfig::default()), 2);
        net.build_index();
        let outcome = net.query(0, "access rights shared documents", 5).unwrap();
        assert!(!outcome.results.is_empty());
        let doc = outcome.results[0].doc;
        match net.fetch_document(doc, &Credentials::anonymous()) {
            FetchOutcome::Full(d) => assert!(!d.body.is_empty()),
            other => panic!("expected full document, got {other:?}"),
        }
        assert!(matches!(
            net.fetch_document(alvisp2p_textindex::DocId::new(99, 0), &Credentials::anonymous()),
            FetchOutcome::NotFound
        ));
    }

    #[test]
    fn index_load_is_distributed_over_peers() {
        let mut net = demo_network(
            IndexingStrategy::Hdk(HdkConfig {
                df_max: 2,
                ..Default::default()
            }),
            6,
        );
        net.build_index();
        let load = net.index_load_distribution();
        assert_eq!(load.len(), 6);
        let peers_with_keys = load.iter().filter(|(k, _)| *k > 0).count();
        assert!(peers_with_keys >= 3, "load: {load:?}");
    }
}
