//! The session-oriented query API: [`QueryRequest`] in, [`QueryResponse`] out.
//!
//! Replaces the earlier positional `query(origin, text, k)` calls with a
//! self-describing request value: where the query originates, how many results
//! to return, whether the two-step refinement runs, and optional byte/hop
//! budgets bounding how much the exploration may spend. Requests compose into
//! batches via [`crate::network::AlvisNetwork::query_batch`].

use crate::fault::Completeness;
use crate::lattice::LatticeTrace;
use crate::network::RefinedResult;
use alvisp2p_textindex::bm25::ScoredDoc;

/// How aggressively the executor feeds the running k-th merged score back into
/// subsequent probes as a score floor (threshold-aware probes; the policy
/// itself lives in [`crate::exec::QueryStream`]).
///
/// The modes form a three-way safety ladder. With `m` query terms and running
/// k-th merged score `θ`:
///
/// * [`ThresholdMode::Off`] never sends a floor (the PR 3 byte baseline).
/// * [`ThresholdMode::RankSafe`] is the Block-Max-WAND-style operating point:
///   the floor sent to key *i* is `θ_LB − Σ_{j≠i} max_score(j)` (see
///   [`rank_safe_floor`]), derived from per-key maximum scores that ride
///   every publication into [`crate::ranking::GlobalRankingStats`] and from a
///   *monotone lower bound* on `θ` (per-document first-list scores, immune to
///   the coverage-weighted merge's non-monotonicity). A document elided under
///   such a floor provably could not have entered the final top-k, so this
///   mode returns the exact documents *and ranks* of `Off` at strictly fewer
///   posting bytes — the proptest-pinned headline invariant. Keys whose
///   cached maximum is stale (older than the list's current publish version,
///   possible under lossy publications) fall back to the `Conservative`
///   floor; [`QueryResponse::rank_safe_fallbacks`] counts those probes.
/// * [`ThresholdMode::Aggressive`] floors at `θ / m`: the bandwidth-first
///   operating point. A document elided everywhere still cannot aggregate to
///   `θ`, but merged scores of retrieved documents may lose sub-floor
///   components, so boundary ranks are approximate — the same trade
///   posting-list truncation itself makes, measured (bytes saved vs. result
///   overlap) by the bench arms instead of asserted equal.
///
/// [`ThresholdMode::Conservative`] (floor `θ / (2m)`; still the default for
/// compatibility) is a deprecated alias rung: rank-exactness was only ever
/// pinned empirically, and `RankSafe` now dominates it — provably exact *and*
/// at least as much elision wherever fresh maxima are available. It remains
/// as the documented fallback `RankSafe` degrades to per-key under staleness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ThresholdMode {
    /// No score floor is ever sent.
    Off,
    /// Floor at `θ / (2m)`: a fully-elided document cannot reach the running
    /// k-th score as of the probe that elided it. Deprecated alias rung of
    /// the ladder — prefer [`ThresholdMode::RankSafe`], which is provably
    /// rank-exact instead of empirically so; `Conservative` survives as the
    /// per-key fallback floor under stale maxima (and as the default, for
    /// compatibility with pre-`RankSafe` callers).
    #[default]
    Conservative,
    /// Provably rank-safe per-probe floors from published per-key max scores:
    /// byte-identical top-k documents and ranks to [`ThresholdMode::Off`] at
    /// strictly fewer posting bytes.
    RankSafe,
    /// Floor at `θ / m`: maximal safe-membership elision, approximate
    /// boundary ranks.
    Aggressive,
}

/// The rank-safe floor for one probe: `θ_LB − Σ_{j≠i} cap(j)`, widened down
/// by one quantization step, clamped to `None` when non-positive.
///
/// `theta` must be a *monotone lower bound* on the final k-th merged score
/// (the running k-th merged score is one over a laminar key family — see
/// [`crate::ranking::keys_are_laminar`]), `cap_sum` the sum of
/// per-term score caps over all query terms, and `own_cap` the cap of the
/// probed key's own cheapest term. A document elided by the returned floor
/// contributes `< floor` from this key and at most `cap_sum − own_cap` from
/// every other term combined, hence merges to `< θ_LB ≤ θ_final` — it could
/// never have displaced a top-k member.
///
/// The widening mirrors `prunes_all_below`: encode-side elision compares raw
/// `f64` scores but the querier ranks *decoded* (quantized) scores, which sit
/// within one grid step of raw. Subtracting one step of a grid spanning
/// `[0, max(θ, cap_sum)]` — at least as coarse as any single frame's grid,
/// since every frame's score range is bounded by one term's cap — keeps the
/// floor safe against that rounding, and never costs more than one step of
/// floor height (pinned by the edge-case tests).
pub fn rank_safe_floor(theta: f64, cap_sum: f64, own_cap: f64) -> Option<f64> {
    if !(theta.is_finite() && cap_sum.is_finite() && own_cap.is_finite()) {
        return None;
    }
    let margin = crate::codec::quantization_step(0.0, theta.max(cap_sum));
    let floor = theta - (cap_sum - own_cap) - margin;
    (floor > 0.0).then_some(floor)
}

/// One query, fully described.
///
/// ```
/// use alvisp2p_core::request::QueryRequest;
///
/// let request = QueryRequest::new("peer to peer retrieval")
///     .from_peer(3)
///     .top_k(5)
///     .with_refinement()
///     .byte_budget(64 * 1024);
/// assert_eq!(request.origin, 3);
/// assert_eq!(request.top_k, 5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// The raw query text (analyzed by the network's analyzer).
    pub text: String,
    /// Index of the peer the query originates from.
    pub origin: usize,
    /// Number of ranked results to return.
    pub top_k: usize,
    /// Whether to run the two-step refinement (forwarding the query to the
    /// owners of the first-step results for local re-scoring and snippets).
    pub refine: bool,
    /// Optional bound on the retrieval bytes the exploration may spend; once
    /// exceeded, no further probes are sent and the response is marked
    /// [`QueryResponse::budget_exhausted`].
    pub byte_budget: Option<u64>,
    /// Optional bound on the total overlay hops of the exploration.
    pub hop_budget: Option<usize>,
    /// Threshold-aware probing mode: whether (and how aggressively) the
    /// executor feeds the running k-th merged score back into subsequent
    /// probes as a score floor, letting responsible peers elide posting
    /// entries the running top-k already dominates. Defaults to
    /// [`ThresholdMode::Conservative`].
    pub threshold: ThresholdMode,
}

impl QueryRequest {
    /// A request for `text` with the defaults: origin peer 0, top-10 results,
    /// no refinement, no budgets.
    pub fn new(text: impl Into<String>) -> Self {
        QueryRequest {
            text: text.into(),
            origin: 0,
            top_k: 10,
            refine: false,
            byte_budget: None,
            hop_budget: None,
            threshold: ThresholdMode::default(),
        }
    }

    /// Sets the originating peer.
    pub fn from_peer(mut self, origin: usize) -> Self {
        self.origin = origin;
        self
    }

    /// Sets the number of results to return.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Enables the two-step refinement.
    pub fn with_refinement(mut self) -> Self {
        self.refine = true;
        self
    }

    /// Bounds the retrieval bytes the exploration may spend.
    pub fn byte_budget(mut self, bytes: u64) -> Self {
        self.byte_budget = Some(bytes);
        self
    }

    /// Bounds the total overlay hops of the exploration.
    pub fn hop_budget(mut self, hops: usize) -> Self {
        self.hop_budget = Some(hops);
        self
    }

    /// Enables or disables threshold-aware probes (shorthand for
    /// [`ThresholdMode::Conservative`] / [`ThresholdMode::Off`]).
    pub fn threshold_probes(mut self, enabled: bool) -> Self {
        self.threshold = if enabled {
            ThresholdMode::Conservative
        } else {
            ThresholdMode::Off
        };
        self
    }

    /// Sets the threshold-aware probing mode explicitly.
    pub fn threshold_mode(mut self, mode: ThresholdMode) -> Self {
        self.threshold = mode;
        self
    }
}

/// The outcome of one query.
#[derive(Clone, Debug, Default)]
pub struct QueryResponse {
    /// Final ranked results (top-k).
    pub results: Vec<ScoredDoc>,
    /// Refined results (owner-local scores, titles, URLs, snippets); empty
    /// unless the request asked for refinement.
    pub refined: Vec<RefinedResult>,
    /// The lattice-exploration trace (what was probed, found, skipped).
    pub trace: LatticeTrace,
    /// First-step retrieval bytes this query consumed (requests, routing,
    /// posting-list responses). Refinement traffic is charged to the network's
    /// traffic statistics but not included here, so the field is comparable
    /// across requests with and without refinement.
    pub bytes: u64,
    /// Retrieval messages this query consumed.
    pub messages: u64,
    /// Total overlay hops across all probes.
    pub hops: usize,
    /// Whether a byte/hop budget **truncated the probe schedule**: `true` iff at
    /// least one probe that would otherwise have been sent was withheld because
    /// a budget blocked it. Exhausting the lattice exactly at the budget
    /// boundary (nothing left to probe) does *not* set this flag. When set, the
    /// results are best-effort over what was retrieved within the budget; how
    /// strictly the budget bounds the actual spend depends on the plan's
    /// [`crate::plan::BudgetPolicy`] (`Cutoff` may overshoot by one probe,
    /// `Reserve` never exceeds the budget).
    pub budget_exhausted: bool,
    /// Number of scheduled probes answered from the querier's sketch cache
    /// instead of the network: a fresh [`crate::sketch::KeySketch`] proved the
    /// response useless before it was sent, so the probe charged zero traffic
    /// (its would-have-been bytes were still admitted against any byte budget,
    /// keeping the schedule identical with and without sketches). Always `0`
    /// under [`crate::sketch::SketchPolicy::NoSketches`].
    pub pruned_probes: usize,
    /// Total probe re-sends across the query (each failed attempt that the
    /// [`crate::fault::RetryPolicy`] followed up on counts once). Always `0`
    /// under [`crate::fault::FaultPlane::NoFaults`].
    pub retries: usize,
    /// Number of scheduled probes that exhausted the retry policy and were
    /// recorded as failed instead of aborting the query. Always `0` under
    /// [`crate::fault::FaultPlane::NoFaults`].
    pub failed_probes: usize,
    /// Number of probe responses discarded because their frame failed the
    /// codec's checksum verification (a bit-flip in flight). Each corrupt
    /// response also counts as a failed attempt the retry policy may follow
    /// up on. Always `0` under [`crate::fault::FaultPlane::NoFaults`].
    pub corrupt_probes: usize,
    /// Number of probes whose serve was failed over to a non-primary replica
    /// holder after the primary proved unresponsive. Always `0` under
    /// [`crate::fault::FaultPlane::NoFaults`].
    pub hedged: usize,
    /// Under [`ThresholdMode::RankSafe`] only: the number of probes that fell
    /// back to the `Conservative` floor because some query term had no fresh
    /// published maximum — either never published, or cached at a version
    /// older than the key's current publish version (possible under lossy
    /// publications). Rank-safety is preserved either way; fallbacks only
    /// cost elision depth. Always `0` in every other mode.
    pub rank_safe_fallbacks: usize,
    /// How much of the planned document-frequency mass the answer actually
    /// covers, with per-key failure causes — the "gracefully degraded answer"
    /// report. [`Completeness::fraction`] is `1.0` on a fault-free run.
    pub completeness: Completeness,
}

impl QueryResponse {
    /// Whether any results were returned.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters_compose() {
        let r = QueryRequest::new("alpha beta")
            .from_peer(7)
            .top_k(3)
            .with_refinement()
            .byte_budget(1024)
            .hop_budget(16);
        assert_eq!(r.text, "alpha beta");
        assert_eq!(r.origin, 7);
        assert_eq!(r.top_k, 3);
        assert!(r.refine);
        assert_eq!(r.byte_budget, Some(1024));
        assert_eq!(r.hop_budget, Some(16));
    }

    #[test]
    fn defaults_are_sensible() {
        let r = QueryRequest::new("x");
        assert_eq!(r.origin, 0);
        assert_eq!(r.top_k, 10);
        assert!(!r.refine);
        assert_eq!(r.byte_budget, None);
        assert_eq!(r.hop_budget, None);
        assert_eq!(r.threshold, ThresholdMode::Conservative);
        assert_eq!(
            QueryRequest::new("x").threshold_probes(false).threshold,
            ThresholdMode::Off
        );
        assert_eq!(
            QueryRequest::new("x")
                .threshold_mode(ThresholdMode::Aggressive)
                .threshold,
            ThresholdMode::Aggressive
        );
    }

    /// Single-term query: every term's cap is the probe's own cap, so the
    /// floor is θ itself — less the one-step quantization widening, and never
    /// more than θ.
    #[test]
    fn single_term_floor_is_theta_within_one_widening_step() {
        let theta = 7.25;
        let cap = 9.0;
        let step = crate::codec::quantization_step(0.0, cap);
        let floor = rank_safe_floor(theta, cap, cap).expect("positive floor");
        assert!(
            floor <= theta,
            "widening must never raise the floor above θ"
        );
        assert!(
            theta - floor <= step * (1.0 + 1e-12),
            "single-term floor {floor} sits more than one step {step} below θ {theta}"
        );
    }

    /// When every other term's cap already covers θ, the margin is negative
    /// for this key and the floor clamps to `None`: the probe ships the full
    /// list rather than a floor that could elide a top-k contender.
    #[test]
    fn all_negative_margins_clamp_to_none() {
        // θ = 3, other caps sum to 10: 3 - 10 < 0.
        assert_eq!(rank_safe_floor(3.0, 12.0, 2.0), None);
        // Exactly zero margin also clamps (the floor must be strictly
        // positive to elide anything soundly).
        assert_eq!(rank_safe_floor(10.0, 10.0, 0.0), None);
        // Degenerate inputs never produce a floor.
        assert_eq!(rank_safe_floor(f64::NAN, 1.0, 1.0), None);
        assert_eq!(rank_safe_floor(1.0, f64::INFINITY, 1.0), None);
    }

    /// The quantization widening is exactly one step of the caps-scale grid:
    /// the ideal floor minus the returned floor equals
    /// `quantization_step(0, max(θ, Σcaps))`, never more.
    #[test]
    fn widening_never_exceeds_one_step() {
        for &(theta, cap_sum, own_cap) in &[
            (5.0f64, 6.0, 2.5),
            (5.0, 4.0, 1.0),
            (0.75, 0.8, 0.4),
            (123.0, 400.0, 300.0),
        ] {
            let ideal = theta - (cap_sum - own_cap);
            let step = crate::codec::quantization_step(0.0, theta.max(cap_sum));
            match rank_safe_floor(theta, cap_sum, own_cap) {
                Some(floor) => {
                    assert!(floor < ideal, "floor must widen strictly downward");
                    assert!(
                        ideal - floor <= step * (1.0 + 1e-9),
                        "widening {} exceeds one step {} for θ={theta}",
                        ideal - floor,
                        step
                    );
                }
                None => assert!(
                    ideal <= step,
                    "clamping is only allowed within one step of zero (ideal {ideal}, step {step})"
                ),
            }
        }
    }
}
