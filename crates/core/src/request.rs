//! The session-oriented query API: [`QueryRequest`] in, [`QueryResponse`] out.
//!
//! Replaces the earlier positional `query(origin, text, k)` calls with a
//! self-describing request value: where the query originates, how many results
//! to return, whether the two-step refinement runs, and optional byte/hop
//! budgets bounding how much the exploration may spend. Requests compose into
//! batches via [`crate::network::AlvisNetwork::query_batch`].

use crate::fault::Completeness;
use crate::lattice::LatticeTrace;
use crate::network::RefinedResult;
use alvisp2p_textindex::bm25::ScoredDoc;

/// How aggressively the executor feeds the running k-th merged score back into
/// subsequent probes as a score floor (threshold-aware probes; the policy
/// itself lives in [`crate::exec::QueryStream`]).
///
/// With `m` query terms and running k-th merged score `θ`:
///
/// * [`ThresholdMode::Conservative`] (the default) floors at `θ / (2m)`. A
///   document whose every posting entry scores below that floor aggregates to
///   strictly less than `θ / 2` across the at most `m` keys that can
///   contribute to it, so elision can never lift it past the running k-th
///   score *as of the probe that elided it*. Two gaps keep even this mode
///   heuristic rather than proven: partial elision (a retrieved document
///   losing a sub-floor component of its merged score), and the
///   coverage-weighted merge being non-monotone (`θ` can later drop below
///   the level an earlier floor assumed; past elision is irreversible).
///   Exactness is therefore pinned empirically — the deterministic equality
///   tests assert the returned top-k is *identical* to unthresholded
///   execution across the tested corpora and budgets — and the ROADMAP
///   tracks the WAND-style per-term upper bounds a provably rank-safe floor
///   would need.
/// * [`ThresholdMode::Aggressive`] floors at `θ / m`: the bandwidth-first
///   operating point. A document elided everywhere still cannot aggregate to
///   `θ`, but merged scores of retrieved documents may lose sub-floor
///   components, so boundary ranks are approximate — the same trade
///   posting-list truncation itself makes, measured (bytes saved vs. result
///   overlap) by the bench arms instead of asserted equal.
/// * [`ThresholdMode::Off`] never sends a floor (the PR 3 byte baseline).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ThresholdMode {
    /// No score floor is ever sent.
    Off,
    /// Floor at `θ / (2m)`: a fully-elided document cannot reach the running
    /// k-th score as of the probe that elided it; empirically exact on the
    /// tested workloads (see the type-level docs for the two caveats).
    #[default]
    Conservative,
    /// Floor at `θ / m`: maximal safe-membership elision, approximate
    /// boundary ranks.
    Aggressive,
}

/// One query, fully described.
///
/// ```
/// use alvisp2p_core::request::QueryRequest;
///
/// let request = QueryRequest::new("peer to peer retrieval")
///     .from_peer(3)
///     .top_k(5)
///     .with_refinement()
///     .byte_budget(64 * 1024);
/// assert_eq!(request.origin, 3);
/// assert_eq!(request.top_k, 5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// The raw query text (analyzed by the network's analyzer).
    pub text: String,
    /// Index of the peer the query originates from.
    pub origin: usize,
    /// Number of ranked results to return.
    pub top_k: usize,
    /// Whether to run the two-step refinement (forwarding the query to the
    /// owners of the first-step results for local re-scoring and snippets).
    pub refine: bool,
    /// Optional bound on the retrieval bytes the exploration may spend; once
    /// exceeded, no further probes are sent and the response is marked
    /// [`QueryResponse::budget_exhausted`].
    pub byte_budget: Option<u64>,
    /// Optional bound on the total overlay hops of the exploration.
    pub hop_budget: Option<usize>,
    /// Threshold-aware probing mode: whether (and how aggressively) the
    /// executor feeds the running k-th merged score back into subsequent
    /// probes as a score floor, letting responsible peers elide posting
    /// entries the running top-k already dominates. Defaults to
    /// [`ThresholdMode::Conservative`].
    pub threshold: ThresholdMode,
}

impl QueryRequest {
    /// A request for `text` with the defaults: origin peer 0, top-10 results,
    /// no refinement, no budgets.
    pub fn new(text: impl Into<String>) -> Self {
        QueryRequest {
            text: text.into(),
            origin: 0,
            top_k: 10,
            refine: false,
            byte_budget: None,
            hop_budget: None,
            threshold: ThresholdMode::default(),
        }
    }

    /// Sets the originating peer.
    pub fn from_peer(mut self, origin: usize) -> Self {
        self.origin = origin;
        self
    }

    /// Sets the number of results to return.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Enables the two-step refinement.
    pub fn with_refinement(mut self) -> Self {
        self.refine = true;
        self
    }

    /// Bounds the retrieval bytes the exploration may spend.
    pub fn byte_budget(mut self, bytes: u64) -> Self {
        self.byte_budget = Some(bytes);
        self
    }

    /// Bounds the total overlay hops of the exploration.
    pub fn hop_budget(mut self, hops: usize) -> Self {
        self.hop_budget = Some(hops);
        self
    }

    /// Enables or disables threshold-aware probes (shorthand for
    /// [`ThresholdMode::Conservative`] / [`ThresholdMode::Off`]).
    pub fn threshold_probes(mut self, enabled: bool) -> Self {
        self.threshold = if enabled {
            ThresholdMode::Conservative
        } else {
            ThresholdMode::Off
        };
        self
    }

    /// Sets the threshold-aware probing mode explicitly.
    pub fn threshold_mode(mut self, mode: ThresholdMode) -> Self {
        self.threshold = mode;
        self
    }
}

/// The outcome of one query.
#[derive(Clone, Debug, Default)]
pub struct QueryResponse {
    /// Final ranked results (top-k).
    pub results: Vec<ScoredDoc>,
    /// Refined results (owner-local scores, titles, URLs, snippets); empty
    /// unless the request asked for refinement.
    pub refined: Vec<RefinedResult>,
    /// The lattice-exploration trace (what was probed, found, skipped).
    pub trace: LatticeTrace,
    /// First-step retrieval bytes this query consumed (requests, routing,
    /// posting-list responses). Refinement traffic is charged to the network's
    /// traffic statistics but not included here, so the field is comparable
    /// across requests with and without refinement.
    pub bytes: u64,
    /// Retrieval messages this query consumed.
    pub messages: u64,
    /// Total overlay hops across all probes.
    pub hops: usize,
    /// Whether a byte/hop budget **truncated the probe schedule**: `true` iff at
    /// least one probe that would otherwise have been sent was withheld because
    /// a budget blocked it. Exhausting the lattice exactly at the budget
    /// boundary (nothing left to probe) does *not* set this flag. When set, the
    /// results are best-effort over what was retrieved within the budget; how
    /// strictly the budget bounds the actual spend depends on the plan's
    /// [`crate::plan::BudgetPolicy`] (`Cutoff` may overshoot by one probe,
    /// `Reserve` never exceeds the budget).
    pub budget_exhausted: bool,
    /// Number of scheduled probes answered from the querier's sketch cache
    /// instead of the network: a fresh [`crate::sketch::KeySketch`] proved the
    /// response useless before it was sent, so the probe charged zero traffic
    /// (its would-have-been bytes were still admitted against any byte budget,
    /// keeping the schedule identical with and without sketches). Always `0`
    /// under [`crate::sketch::SketchPolicy::NoSketches`].
    pub pruned_probes: usize,
    /// Total probe re-sends across the query (each failed attempt that the
    /// [`crate::fault::RetryPolicy`] followed up on counts once). Always `0`
    /// under [`crate::fault::FaultPlane::NoFaults`].
    pub retries: usize,
    /// Number of scheduled probes that exhausted the retry policy and were
    /// recorded as failed instead of aborting the query. Always `0` under
    /// [`crate::fault::FaultPlane::NoFaults`].
    pub failed_probes: usize,
    /// Number of probe responses discarded because their frame failed the
    /// codec's checksum verification (a bit-flip in flight). Each corrupt
    /// response also counts as a failed attempt the retry policy may follow
    /// up on. Always `0` under [`crate::fault::FaultPlane::NoFaults`].
    pub corrupt_probes: usize,
    /// Number of probes whose serve was failed over to a non-primary replica
    /// holder after the primary proved unresponsive. Always `0` under
    /// [`crate::fault::FaultPlane::NoFaults`].
    pub hedged: usize,
    /// How much of the planned document-frequency mass the answer actually
    /// covers, with per-key failure causes — the "gracefully degraded answer"
    /// report. [`Completeness::fraction`] is `1.0` on a fault-free run.
    pub completeness: Completeness,
}

impl QueryResponse {
    /// Whether any results were returned.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters_compose() {
        let r = QueryRequest::new("alpha beta")
            .from_peer(7)
            .top_k(3)
            .with_refinement()
            .byte_budget(1024)
            .hop_budget(16);
        assert_eq!(r.text, "alpha beta");
        assert_eq!(r.origin, 7);
        assert_eq!(r.top_k, 3);
        assert!(r.refine);
        assert_eq!(r.byte_budget, Some(1024));
        assert_eq!(r.hop_budget, Some(16));
    }

    #[test]
    fn defaults_are_sensible() {
        let r = QueryRequest::new("x");
        assert_eq!(r.origin, 0);
        assert_eq!(r.top_k, 10);
        assert!(!r.refine);
        assert_eq!(r.byte_budget, None);
        assert_eq!(r.hop_budget, None);
        assert_eq!(r.threshold, ThresholdMode::Conservative);
        assert_eq!(
            QueryRequest::new("x").threshold_probes(false).threshold,
            ThresholdMode::Off
        );
        assert_eq!(
            QueryRequest::new("x")
                .threshold_mode(ThresholdMode::Aggressive)
                .threshold,
            ThresholdMode::Aggressive
        );
    }
}
