//! The session-oriented query API: [`QueryRequest`] in, [`QueryResponse`] out.
//!
//! Replaces the earlier positional `query(origin, text, k)` calls with a
//! self-describing request value: where the query originates, how many results
//! to return, whether the two-step refinement runs, and optional byte/hop
//! budgets bounding how much the exploration may spend. Requests compose into
//! batches via [`crate::network::AlvisNetwork::query_batch`].

use crate::lattice::LatticeTrace;
use crate::network::RefinedResult;
use alvisp2p_textindex::bm25::ScoredDoc;

/// One query, fully described.
///
/// ```
/// use alvisp2p_core::request::QueryRequest;
///
/// let request = QueryRequest::new("peer to peer retrieval")
///     .from_peer(3)
///     .top_k(5)
///     .with_refinement()
///     .byte_budget(64 * 1024);
/// assert_eq!(request.origin, 3);
/// assert_eq!(request.top_k, 5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// The raw query text (analyzed by the network's analyzer).
    pub text: String,
    /// Index of the peer the query originates from.
    pub origin: usize,
    /// Number of ranked results to return.
    pub top_k: usize,
    /// Whether to run the two-step refinement (forwarding the query to the
    /// owners of the first-step results for local re-scoring and snippets).
    pub refine: bool,
    /// Optional bound on the retrieval bytes the exploration may spend; once
    /// exceeded, no further probes are sent and the response is marked
    /// [`QueryResponse::budget_exhausted`].
    pub byte_budget: Option<u64>,
    /// Optional bound on the total overlay hops of the exploration.
    pub hop_budget: Option<usize>,
}

impl QueryRequest {
    /// A request for `text` with the defaults: origin peer 0, top-10 results,
    /// no refinement, no budgets.
    pub fn new(text: impl Into<String>) -> Self {
        QueryRequest {
            text: text.into(),
            origin: 0,
            top_k: 10,
            refine: false,
            byte_budget: None,
            hop_budget: None,
        }
    }

    /// Sets the originating peer.
    pub fn from_peer(mut self, origin: usize) -> Self {
        self.origin = origin;
        self
    }

    /// Sets the number of results to return.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Enables the two-step refinement.
    pub fn with_refinement(mut self) -> Self {
        self.refine = true;
        self
    }

    /// Bounds the retrieval bytes the exploration may spend.
    pub fn byte_budget(mut self, bytes: u64) -> Self {
        self.byte_budget = Some(bytes);
        self
    }

    /// Bounds the total overlay hops of the exploration.
    pub fn hop_budget(mut self, hops: usize) -> Self {
        self.hop_budget = Some(hops);
        self
    }
}

/// The outcome of one query.
#[derive(Clone, Debug, Default)]
pub struct QueryResponse {
    /// Final ranked results (top-k).
    pub results: Vec<ScoredDoc>,
    /// Refined results (owner-local scores, titles, URLs, snippets); empty
    /// unless the request asked for refinement.
    pub refined: Vec<RefinedResult>,
    /// The lattice-exploration trace (what was probed, found, skipped).
    pub trace: LatticeTrace,
    /// First-step retrieval bytes this query consumed (requests, routing,
    /// posting-list responses). Refinement traffic is charged to the network's
    /// traffic statistics but not included here, so the field is comparable
    /// across requests with and without refinement.
    pub bytes: u64,
    /// Retrieval messages this query consumed.
    pub messages: u64,
    /// Total overlay hops across all probes.
    pub hops: usize,
    /// Whether a byte/hop budget **truncated the probe schedule**: `true` iff at
    /// least one probe that would otherwise have been sent was withheld because
    /// a budget blocked it. Exhausting the lattice exactly at the budget
    /// boundary (nothing left to probe) does *not* set this flag. When set, the
    /// results are best-effort over what was retrieved within the budget; how
    /// strictly the budget bounds the actual spend depends on the plan's
    /// [`crate::plan::BudgetPolicy`] (`Cutoff` may overshoot by one probe,
    /// `Reserve` never exceeds the budget).
    pub budget_exhausted: bool,
}

impl QueryResponse {
    /// Whether any results were returned.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters_compose() {
        let r = QueryRequest::new("alpha beta")
            .from_peer(7)
            .top_k(3)
            .with_refinement()
            .byte_budget(1024)
            .hop_budget(16);
        assert_eq!(r.text, "alpha beta");
        assert_eq!(r.origin, 7);
        assert_eq!(r.top_k, 3);
        assert!(r.refine);
        assert_eq!(r.byte_budget, Some(1024));
        assert_eq!(r.hop_budget, Some(16));
    }

    #[test]
    fn defaults_are_sensible() {
        let r = QueryRequest::new("x");
        assert_eq!(r.origin, 0);
        assert_eq!(r.top_k, 10);
        assert!(!r.refine);
        assert_eq!(r.byte_budget, None);
        assert_eq!(r.hop_budget, None);
    }
}
