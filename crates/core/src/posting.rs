//! Truncated posting lists.
//!
//! The second pillar of the AlvisP2P indexing strategy (besides choosing good keys) is
//! that posting lists shipped through the network are **truncated to a bounded number
//! of top-ranked document references**. This caps both the storage at the responsible
//! peer and — crucially — the bytes transferred when a querying peer fetches the list,
//! which is what makes retrieval bandwidth independent of collection size.

use alvisp2p_netsim::WireSize;
use alvisp2p_textindex::DocId;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashSet;

/// One entry of a (truncated) posting list: a document reference with the relevance
/// score the publisher computed from global collection statistics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoredRef {
    /// The referenced document.
    pub doc: DocId,
    /// BM25 score of the document with respect to the key's terms, computed with
    /// global collection statistics at publication time.
    pub score: f64,
}

impl WireSize for ScoredRef {
    /// Actual encoded length of a stand-alone entry under [`crate::codec`]:
    /// two doc-id varints plus the 2-byte quantized score. (The seed claimed a
    /// fixed "packed doc id (8) + quantised score (4)" while serde shipped a
    /// full `f64`; the codec makes the quantized bytes real, and in-list
    /// entries are delta-coded smaller still.)
    fn wire_size(&self) -> usize {
        crate::codec::entry_wire_size(self)
    }
}

/// A posting list bounded to the top-`capacity` highest-scoring document references.
///
/// The list also remembers the *true* number of matching documents (`full_df`), which
/// may exceed the number of stored references; `is_truncated()` is how the retrieval
/// algorithm decides whether a result is complete (allowing it to prune the dominated
/// part of the query lattice) or merely a top-k approximation.
///
/// A membership set over the stored documents makes the common-case insert — a
/// document not yet in the list — O(log n) instead of the former O(n) linear
/// duplicate scan, so bulk [`TruncatedPostingList::merge`] /
/// [`TruncatedPostingList::from_refs`] are no longer quadratic in list capacity.
#[derive(Clone, Debug, Default)]
pub struct TruncatedPostingList {
    /// Stored references, best score first.
    refs: Vec<ScoredRef>,
    capacity: usize,
    full_df: u64,
    /// Documents currently present in `refs` (derived; not serialized).
    members: HashSet<DocId>,
}

impl PartialEq for TruncatedPostingList {
    fn eq(&self, other: &Self) -> bool {
        // `members` is derived from `refs`; comparing it would be redundant.
        self.refs == other.refs && self.capacity == other.capacity && self.full_df == other.full_df
    }
}

impl TruncatedPostingList {
    /// Creates an empty list with the given capacity bound.
    pub fn new(capacity: usize) -> Self {
        TruncatedPostingList {
            refs: Vec::new(),
            capacity: capacity.max(1),
            full_df: 0,
            members: HashSet::new(),
        }
    }

    /// Builds a list from an iterator of scored references, keeping the top
    /// `capacity` by score.
    pub fn from_refs(refs: impl IntoIterator<Item = ScoredRef>, capacity: usize) -> Self {
        let mut list = TruncatedPostingList::new(capacity);
        for r in refs {
            list.insert(r);
        }
        list
    }

    /// The stored (top-ranked) references, best first.
    pub fn refs(&self) -> &[ScoredRef] {
        &self.refs
    }

    /// Number of stored references.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether no references are stored.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The true number of matching documents seen so far (≥ `len()`).
    pub fn full_df(&self) -> u64 {
        self.full_df
    }

    /// Whether the list had to drop references because of the capacity bound.
    pub fn is_truncated(&self) -> bool {
        self.full_df > self.refs.len() as u64
    }

    /// Inserts a reference, keeping the list sorted by descending score (ties broken by
    /// ascending document id) and bounded by the capacity. A reference for a document
    /// that is already present replaces the old entry if its score is higher.
    ///
    /// The common case — a document not yet stored — is a hash-set membership
    /// check plus a sorted insert; only re-publications of an already-stored
    /// document fall back to scanning for the old entry.
    pub fn insert(&mut self, r: ScoredRef) {
        if self.members.contains(&r.doc) {
            // Same document published again (e.g. re-indexing): keep the best score.
            let i = self
                .refs
                .iter()
                .position(|x| x.doc == r.doc)
                .expect("membership set out of sync with refs");
            if r.score > self.refs[i].score {
                self.refs.remove(i);
                self.insert_sorted(r);
            }
        } else {
            self.full_df += 1;
            if self.refs.len() < self.capacity {
                self.insert_sorted(r);
                self.members.insert(r.doc);
            } else if let Some(last) = self.refs.last() {
                if r.score > last.score || (r.score == last.score && r.doc < last.doc) {
                    let evicted = self.refs.pop().expect("non-empty at capacity");
                    self.members.remove(&evicted.doc);
                    self.insert_sorted(r);
                    self.members.insert(r.doc);
                }
            }
        }
    }

    fn insert_sorted(&mut self, r: ScoredRef) {
        let pos = self
            .refs
            .partition_point(|x| x.score > r.score || (x.score == r.score && x.doc < r.doc));
        self.refs.insert(pos, r);
    }

    /// Merges another list into this one (used by a responsible peer aggregating the
    /// contributions of many publishing peers). The true document frequency is the sum
    /// of distinct contributions; duplicate documents keep their best score.
    pub fn merge(&mut self, other: &TruncatedPostingList) {
        for r in &other.refs {
            self.insert(*r);
        }
        // `insert` counted the refs it actually saw; add the part of `other` that was
        // already truncated away and therefore invisible to us.
        self.full_df += other.full_df - other.refs.len() as u64;
    }

    /// Removes references owned by the given peer (used when a peer un-publishes its
    /// collection). Returns how many references were removed.
    pub fn remove_peer_docs(&mut self, peer: u32) -> usize {
        let before = self.refs.len();
        self.refs.retain(|r| r.doc.peer != peer);
        self.members.retain(|d| d.peer != peer);
        let removed = before - self.refs.len();
        self.full_df = self.full_df.saturating_sub(removed as u64);
        removed
    }

    /// The best (highest) score in the list, if any.
    pub fn best_score(&self) -> Option<f64> {
        self.refs.first().map(|r| r.score)
    }

    /// The worst stored score (the truncation threshold), if any.
    pub fn worst_score(&self) -> Option<f64> {
        self.refs.last().map(|r| r.score)
    }

    /// Builds a list directly from wire-decoded parts: `refs` already in
    /// canonical order (descending score, ties by ascending doc id), with the
    /// membership set derived. Used by [`crate::codec`] and the serde path.
    pub(crate) fn from_wire_parts(refs: Vec<ScoredRef>, capacity: usize, full_df: u64) -> Self {
        let members = refs.iter().map(|r| r.doc).collect();
        TruncatedPostingList {
            refs,
            capacity: capacity.max(1),
            full_df,
            members,
        }
    }
}

impl WireSize for TruncatedPostingList {
    /// Exact length of the [`crate::codec`] list frame for this list — the
    /// bytes a probe response actually ships (pure arithmetic, no allocation).
    fn wire_size(&self) -> usize {
        crate::codec::encoded_list_len(self)
    }
}

impl Serialize for TruncatedPostingList {
    fn to_value(&self) -> Value {
        // Same shape the former derive produced; the membership set is derived
        // state and never crosses the wire.
        Value::Obj(vec![
            ("refs".to_string(), self.refs.to_value()),
            ("capacity".to_string(), self.capacity.to_value()),
            ("full_df".to_string(), self.full_df.to_value()),
        ])
    }
}

impl Deserialize for TruncatedPostingList {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let refs: Vec<ScoredRef> = serde::field(v, "refs")?;
        let capacity: usize = serde::field(v, "capacity")?;
        let full_df: u64 = serde::field(v, "full_df")?;
        Ok(TruncatedPostingList::from_wire_parts(
            refs, capacity, full_df,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(doc: u32, score: f64) -> ScoredRef {
        ScoredRef {
            doc: DocId::new(0, doc),
            score,
        }
    }

    #[test]
    fn keeps_top_k_by_score() {
        let mut list = TruncatedPostingList::new(3);
        for (i, s) in [(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0), (4, 0.5)] {
            list.insert(r(i, s));
        }
        assert_eq!(list.len(), 3);
        assert_eq!(list.full_df(), 5);
        assert!(list.is_truncated());
        let docs: Vec<u32> = list.refs().iter().map(|x| x.doc.local).collect();
        assert_eq!(docs, vec![1, 3, 2]);
        assert_eq!(list.best_score(), Some(5.0));
        assert_eq!(list.worst_score(), Some(3.0));
    }

    #[test]
    fn untruncated_when_under_capacity() {
        let list = TruncatedPostingList::from_refs([r(0, 1.0), r(1, 2.0)], 10);
        assert_eq!(list.len(), 2);
        assert!(!list.is_truncated());
        assert_eq!(list.full_df(), 2);
    }

    #[test]
    fn duplicate_documents_keep_best_score() {
        let mut list = TruncatedPostingList::new(5);
        list.insert(r(7, 1.0));
        list.insert(r(7, 3.0));
        list.insert(r(7, 2.0));
        assert_eq!(list.len(), 1);
        assert_eq!(list.full_df(), 1);
        assert_eq!(list.refs()[0].score, 3.0);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let refs = [
            r(0, 1.0),
            r(1, 9.0),
            r(2, 5.0),
            r(3, 7.0),
            r(4, 3.0),
            r(5, 8.0),
        ];
        let mut shuffled = refs;
        shuffled.reverse();
        let a = TruncatedPostingList::from_refs(refs, 4);
        let b = TruncatedPostingList::from_refs(shuffled, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn ties_break_by_doc_id() {
        let mut list = TruncatedPostingList::new(2);
        list.insert(r(5, 1.0));
        list.insert(r(1, 1.0));
        list.insert(r(3, 1.0));
        let docs: Vec<u32> = list.refs().iter().map(|x| x.doc.local).collect();
        assert_eq!(docs, vec![1, 3]);
    }

    #[test]
    fn merge_aggregates_contributions() {
        let a = TruncatedPostingList::from_refs([r(0, 1.0), r(1, 2.0)], 3);
        let mut big = TruncatedPostingList::new(3);
        for i in 0..10 {
            big.insert(r(100 + i, f64::from(i)));
        }
        let mut merged = a;
        merged.merge(&big);
        assert_eq!(merged.len(), 3);
        // 2 distinct from a + 10 distinct from big.
        assert_eq!(merged.full_df(), 12);
        assert!(merged.is_truncated());
        // Best scores come from `big`.
        assert_eq!(merged.best_score(), Some(9.0));
    }

    #[test]
    fn remove_peer_docs_filters_by_owner() {
        let mut list = TruncatedPostingList::new(10);
        list.insert(ScoredRef {
            doc: DocId::new(1, 0),
            score: 1.0,
        });
        list.insert(ScoredRef {
            doc: DocId::new(2, 0),
            score: 2.0,
        });
        list.insert(ScoredRef {
            doc: DocId::new(1, 1),
            score: 3.0,
        });
        let removed = list.remove_peer_docs(1);
        assert_eq!(removed, 2);
        assert_eq!(list.len(), 1);
        assert_eq!(list.full_df(), 1);
        assert_eq!(list.refs()[0].doc.peer, 2);
    }

    #[test]
    fn wire_size_is_bounded_by_capacity() {
        let mut list = TruncatedPostingList::new(50);
        for i in 0..1000 {
            list.insert(r(i, f64::from(i)));
        }
        // The wire size is the exact codec frame length, bounded by the
        // codec's worst case for 50 entries — and far below the seed's
        // 12-bytes-per-ref accounting for these clustered doc ids.
        assert_eq!(
            list.wire_size(),
            crate::codec::encode_list(&list, None).len()
        );
        assert!(list.wire_size() <= crate::codec::max_encoded_list_len(50));
        assert!(list.wire_size() < 50 * 12 + 16);
        assert_eq!(list.full_df(), 1000);
    }

    #[test]
    fn serde_round_trip_rebuilds_membership() {
        let mut list = TruncatedPostingList::new(3);
        for i in 0..10 {
            list.insert(r(i, f64::from(i)));
        }
        let back = TruncatedPostingList::from_value(&list.to_value()).unwrap();
        assert_eq!(back, list);
        // The rebuilt membership set keeps duplicate suppression working.
        let mut back = back;
        let stored_doc = back.refs()[0];
        back.insert(stored_doc);
        assert_eq!(back.full_df(), list.full_df());
    }

    #[test]
    fn duplicate_suppression_survives_eviction() {
        // A document evicted by the capacity bound is no longer "present": a
        // later reference to it counts as a fresh distinct document.
        let mut list = TruncatedPostingList::new(1);
        list.insert(r(1, 1.0));
        list.insert(r(2, 5.0)); // evicts doc 1
        assert_eq!(list.refs()[0].doc.local, 2);
        list.insert(r(1, 9.0)); // doc 1 returns, evicting doc 2
        assert_eq!(list.refs()[0].doc.local, 1);
        assert_eq!(list.full_df(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut list = TruncatedPostingList::new(0);
        list.insert(r(0, 1.0));
        list.insert(r(1, 2.0));
        assert_eq!(list.capacity(), 1);
        assert_eq!(list.len(), 1);
        assert_eq!(list.refs()[0].doc.local, 1);
    }
}
