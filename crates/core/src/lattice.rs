//! Query-lattice retrieval (Figure 1 of the paper).
//!
//! To answer a multi-keyword query, the querying peer explores the lattice of query
//! term combinations **in decreasing combination-size order**, starting with the query
//! itself. For every lattice node it probes the global index; when a probe returns a
//! posting list that is **not truncated**, the part of the lattice dominated by that
//! key is excluded from further exploration (its results would be redundant). As an
//! additional approximation — the one Figure 1 illustrates with the skipped keys `b`
//! and `c` — the lattice below a key with a *truncated* posting list can be pruned
//! too, trading a marginal loss of precision for fewer probes and better load balance.

use crate::global_index::ProbeResult;
use crate::key::TermKey;
use crate::posting::TruncatedPostingList;
use serde::{Deserialize, Serialize};

/// Configuration of the lattice exploration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatticeConfig {
    /// Prune the lattice below keys whose posting list is truncated (the Figure 1
    /// approximation). When `false` only complete (non-truncated) results prune.
    pub prune_below_truncated: bool,
    /// Upper bound on the number of probes per query (safety valve for very long
    /// queries; the lattice of a q-term query has `2^q - 1` nodes).
    pub max_probes: usize,
    /// Maximum key length ever probed (longer combinations cannot be indexed, so
    /// probing them would be wasted traffic). `0` disables the bound.
    pub max_probe_len: usize,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        LatticeConfig {
            prune_below_truncated: true,
            max_probes: 64,
            max_probe_len: 3,
        }
    }
}

/// What happened to one lattice node during exploration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NodeOutcome {
    /// The key was probed and an activated posting list was returned.
    Found {
        /// Whether the returned list was truncated.
        truncated: bool,
    },
    /// The key was probed but is not indexed.
    Missing,
    /// The key was skipped because a previously retrieved key dominates it.
    Skipped,
    /// The key was not probed because it exceeds the probe-length bound.
    TooLong,
    /// The key was probed but every attempt failed (loss, timeout or an
    /// unresponsive peer — see [`crate::fault`]); the retry policy was
    /// exhausted and the schedule continued without it. Never recorded under
    /// [`crate::fault::FaultPlane::NoFaults`].
    Failed {
        /// Why the final attempt failed.
        cause: crate::fault::FailureCause,
    },
}

/// The trace of a lattice exploration: every node of the query lattice together with
/// its outcome, in exploration order. This is what experiment E1 prints to reproduce
/// Figure 1.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatticeTrace {
    /// `(key, outcome)` in exploration order.
    pub nodes: Vec<(TermKey, NodeOutcome)>,
    /// Number of probes actually sent.
    pub probes: usize,
    /// Total overlay hops across all probes.
    pub hops: usize,
    /// Whole codec blocks score floors elided from response frames across all
    /// probes (see [`crate::codec::ElisionStats`]); `0` when no floors were
    /// sent. Absent in traces serialized before floor accounting existed.
    #[serde(default)]
    pub skipped_blocks: usize,
    /// Response-frame bytes score floors saved across all probes versus
    /// shipping the full stored lists.
    #[serde(default)]
    pub elided_bytes: u64,
}

impl LatticeTrace {
    /// Keys that were probed (sent to the network).
    pub fn probed_keys(&self) -> Vec<&TermKey> {
        self.nodes
            .iter()
            .filter(|(_, o)| !matches!(o, NodeOutcome::Skipped | NodeOutcome::TooLong))
            .map(|(k, _)| k)
            .collect()
    }

    /// Keys that were skipped thanks to lattice pruning.
    pub fn skipped_keys(&self) -> Vec<&TermKey> {
        self.nodes
            .iter()
            .filter(|(_, o)| matches!(o, NodeOutcome::Skipped))
            .map(|(k, _)| k)
            .collect()
    }

    /// Keys for which a posting list was retrieved.
    pub fn found_keys(&self) -> Vec<&TermKey> {
        self.nodes
            .iter()
            .filter(|(_, o)| matches!(o, NodeOutcome::Found { .. }))
            .map(|(k, _)| k)
            .collect()
    }

    /// Keys whose probe was exhausted by faults, with the final failure
    /// cause (empty under [`crate::fault::FaultPlane::NoFaults`]).
    pub fn failed_probes(&self) -> Vec<(&TermKey, crate::fault::FailureCause)> {
        self.nodes
            .iter()
            .filter_map(|(k, o)| match o {
                NodeOutcome::Failed { cause } => Some((k, *cause)),
                _ => None,
            })
            .collect()
    }

    /// The outcome recorded for a specific key, if it is part of the trace.
    pub fn outcome_of(&self, key: &TermKey) -> Option<&NodeOutcome> {
        self.nodes.iter().find(|(k, _)| k == key).map(|(_, o)| o)
    }
}

/// The result of exploring the lattice for one query: the retrieved posting lists
/// (with the key they came from) plus the exploration trace.
#[derive(Clone, Debug, Default)]
pub struct LatticeResult {
    /// Retrieved `(key, posting list)` pairs in exploration order (largest keys first).
    pub retrieved: Vec<(TermKey, TruncatedPostingList)>,
    /// The exploration trace.
    pub trace: LatticeTrace,
}

/// Explores the query lattice for `query`, probing the global index through the
/// `probe` callback (which performs the routed network request and returns the
/// outcome). The callback is only invoked for keys that are not pruned.
pub fn explore_lattice<E>(
    query: &TermKey,
    config: &LatticeConfig,
    mut probe: impl FnMut(&TermKey) -> Result<ProbeResult, E>,
) -> Result<LatticeResult, E> {
    let mut result = LatticeResult::default();
    // Keys whose dominated sub-lattice is excluded from further exploration.
    let mut excluders: Vec<TermKey> = Vec::new();

    for node in query.all_subsets_desc() {
        if config.max_probe_len > 0 && node.len() > config.max_probe_len && node != *query {
            // Never probe over-long combinations — except the query itself, which is
            // always tried first per the paper ("starting with the query itself").
            result.trace.nodes.push((node, NodeOutcome::TooLong));
            continue;
        }
        if excluders.iter().any(|e| e.dominates(&node)) {
            result.trace.nodes.push((node, NodeOutcome::Skipped));
            continue;
        }
        if result.trace.probes >= config.max_probes {
            result.trace.nodes.push((node, NodeOutcome::Skipped));
            continue;
        }

        let probe_result = probe(&node)?;
        if probe_result.skipped {
            result.trace.nodes.push((node, NodeOutcome::Skipped));
            continue;
        }
        result.trace.probes += 1;
        result.trace.hops += probe_result.hops;
        result.trace.skipped_blocks += probe_result.skipped_blocks;
        result.trace.elided_bytes += probe_result.elided_bytes as u64;
        match probe_result.postings {
            Some(list) => {
                let truncated = list.is_truncated();
                if !truncated || config.prune_below_truncated {
                    excluders.push(node.clone());
                }
                result
                    .trace
                    .nodes
                    .push((node.clone(), NodeOutcome::Found { truncated }));
                result.retrieved.push((node, list));
            }
            None => {
                result.trace.nodes.push((node, NodeOutcome::Missing));
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posting::ScoredRef;
    use alvisp2p_textindex::DocId;
    use std::collections::HashMap;
    use std::convert::Infallible;

    /// A fake global index for exercising the exploration logic in isolation.
    struct FakeIndex {
        lists: HashMap<TermKey, TruncatedPostingList>,
        probes: Vec<TermKey>,
    }

    impl FakeIndex {
        fn new() -> Self {
            FakeIndex {
                lists: HashMap::new(),
                probes: Vec::new(),
            }
        }

        fn with_key(mut self, key: TermKey, docs: u32, capacity: usize) -> Self {
            let list = TruncatedPostingList::from_refs(
                (0..docs).map(|i| ScoredRef {
                    doc: DocId::new(0, i),
                    score: f64::from(docs - i),
                }),
                capacity,
            );
            self.lists.insert(key, list);
            self
        }

        fn probe(&mut self, key: &TermKey) -> Result<ProbeResult, Infallible> {
            self.probes.push(key.clone());
            Ok(ProbeResult {
                key: key.clone(),
                postings: self.lists.get(key).cloned(),
                hops: 2,
                responsible: 0,
                served_by: 0,
                replica_set: Vec::new(),
                skipped: false,
                skipped_blocks: 0,
                elided_bytes: 0,
            })
        }
    }

    fn abc() -> TermKey {
        TermKey::new(["a", "b", "c"])
    }

    #[test]
    fn figure_1_scenario() {
        // Keys bc (truncated) and the singles a, b, c are indexed; ab, ac, abc are not.
        let mut index = FakeIndex::new()
            .with_key(TermKey::new(["b", "c"]), 10, 5) // truncated
            .with_key(TermKey::single("a"), 3, 5)
            .with_key(TermKey::single("b"), 4, 5)
            .with_key(TermKey::single("c"), 4, 5);
        let config = LatticeConfig::default();
        let result = explore_lattice(&abc(), &config, |k| index.probe(k)).unwrap();

        // Probed: abc, ab, ac, bc, a. Skipped: b, c (dominated by truncated bc).
        let probed: Vec<String> = result
            .trace
            .probed_keys()
            .iter()
            .map(|k| k.canonical())
            .collect();
        assert_eq!(probed, vec!["a+b+c", "a+b", "a+c", "b+c", "a"]);
        let skipped: Vec<String> = result
            .trace
            .skipped_keys()
            .iter()
            .map(|k| k.canonical())
            .collect();
        assert_eq!(skipped, vec!["b", "c"]);
        // Retrieved: bc and a (the union the paper describes).
        let found: Vec<String> = result
            .retrieved
            .iter()
            .map(|(k, _)| k.canonical())
            .collect();
        assert_eq!(found, vec!["b+c", "a"]);
        assert_eq!(result.trace.probes, 5);
        assert_eq!(result.trace.hops, 10);
        assert_eq!(
            result.trace.outcome_of(&TermKey::new(["b", "c"])),
            Some(&NodeOutcome::Found { truncated: true })
        );
    }

    #[test]
    fn complete_result_for_the_full_query_prunes_everything_else() {
        let mut index = FakeIndex::new().with_key(abc(), 5, 100); // complete
        let result =
            explore_lattice(&abc(), &LatticeConfig::default(), |k| index.probe(k)).unwrap();
        assert_eq!(result.trace.probes, 1);
        assert_eq!(result.retrieved.len(), 1);
        // All six remaining nodes are skipped.
        assert_eq!(result.trace.skipped_keys().len(), 6);
    }

    #[test]
    fn without_pruning_truncated_keys_do_not_exclude_their_sublattice() {
        let mut index = FakeIndex::new()
            .with_key(TermKey::new(["b", "c"]), 10, 5) // truncated
            .with_key(TermKey::single("b"), 4, 5)
            .with_key(TermKey::single("c"), 4, 5);
        let config = LatticeConfig {
            prune_below_truncated: false,
            ..Default::default()
        };
        let result = explore_lattice(&abc(), &config, |k| index.probe(k)).unwrap();
        // b and c are now probed (and found).
        let found: Vec<String> = result
            .retrieved
            .iter()
            .map(|(k, _)| k.canonical())
            .collect();
        assert_eq!(found, vec!["b+c", "b", "c"]);
        assert_eq!(result.trace.probes, 7);
        assert!(result.trace.skipped_keys().is_empty());
    }

    #[test]
    fn single_term_query_probes_once() {
        let mut index = FakeIndex::new().with_key(TermKey::single("databas"), 2, 10);
        let q = TermKey::single("databas");
        let result = explore_lattice(&q, &LatticeConfig::default(), |k| index.probe(k)).unwrap();
        assert_eq!(result.trace.probes, 1);
        assert_eq!(result.retrieved.len(), 1);
    }

    #[test]
    fn nothing_indexed_probes_everything_and_finds_nothing() {
        let mut index = FakeIndex::new();
        let result =
            explore_lattice(&abc(), &LatticeConfig::default(), |k| index.probe(k)).unwrap();
        assert!(result.retrieved.is_empty());
        assert_eq!(result.trace.probes, 7);
        assert!(result
            .trace
            .nodes
            .iter()
            .all(|(_, o)| matches!(o, NodeOutcome::Missing)));
    }

    #[test]
    fn max_probe_len_skips_long_combinations_but_not_the_query() {
        let q = TermKey::new(["a", "b", "c", "d", "e"]);
        let mut index = FakeIndex::new();
        let config = LatticeConfig {
            max_probe_len: 3,
            max_probes: 1000,
            ..Default::default()
        };
        let result = explore_lattice(&q, &config, |k| index.probe(k)).unwrap();
        // The query itself (5 terms) is probed, 4-term combinations are not.
        assert!(index.probes.contains(&q));
        assert!(index.probes.iter().all(|k| k.len() <= 3 || *k == q));
        let too_long = result
            .trace
            .nodes
            .iter()
            .filter(|(_, o)| matches!(o, NodeOutcome::TooLong))
            .count();
        assert_eq!(too_long, 5); // the five 4-term subsets
    }

    #[test]
    fn probe_budget_is_respected() {
        let q = TermKey::new(["a", "b", "c", "d"]);
        let mut index = FakeIndex::new();
        let config = LatticeConfig {
            max_probes: 3,
            max_probe_len: 0,
            ..Default::default()
        };
        let result = explore_lattice(&q, &config, |k| index.probe(k)).unwrap();
        assert_eq!(result.trace.probes, 3);
        assert_eq!(index.probes.len(), 3);
    }

    #[test]
    fn probe_errors_propagate() {
        let q = TermKey::new(["a", "b"]);
        let result: Result<LatticeResult, &str> =
            explore_lattice(&q, &LatticeConfig::default(), |_| Err("network down"));
        assert_eq!(result.unwrap_err(), "network down");
    }
}
